//! A zero-copy pull (streaming) XML parser.
//!
//! Yields borrowed [`PullEvent`]s one at a time with O(depth) memory — the
//! substrate for streaming schema-cast validation, which realizes the
//! paper's claim that "the memory requirement of our algorithm does not vary
//! with the size of the document, but depends solely on the sizes of the
//! schemas".
//!
//! Three properties make this the hot-path tokenizer:
//!
//! * **Borrowed events.** Element and attribute names are `&str` slices of
//!   the input; text runs and attribute values are [`Cow`]s that stay
//!   borrowed unless entity resolution forces an owned buffer. On the
//!   no-entity path the parser performs **zero** per-event string
//!   allocations (asserted by `tests/zero_copy.rs`).
//! * **Lexer-level label interning.** Every distinct element name is
//!   assigned a dense per-document [`NameId`] by a fast FNV-1a table, so
//!   downstream consumers (the streaming cast, the tree builder) hash each
//!   *distinct* name once and afterwards work with integer ids.
//! * **Lexical subtree skipping.** [`PullParser::skip_subtree`] scans raw
//!   bytes from just-after a start tag to the matching end tag with a
//!   quote/comment/CDATA-aware state machine — no name, attribute, or
//!   entity tokenization — and reports how many bytes and tag events were
//!   never lexed. This is what makes the paper's `R_sub` skip *lexical*
//!   rather than merely semantic.
//!
//! The DOM parser in [`crate::parser`] is a thin loop over these events;
//! there is exactly one tokenizer in the workspace.

use crate::error::XmlError;
use std::borrow::Cow;

/// A dense per-document id for a distinct element name.
///
/// Ids are assigned by the parser's internal interner in first-appearance
/// order and are stable for the lifetime of the parser; `NameId(0)` is the
/// first distinct tag name seen. Use [`PullParser::name_of`] to recover the
/// string and [`PullParser::name_count`] for the table size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// The dense index of this name.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One parsing event, borrowing from the input document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullEvent<'a> {
    /// The `<!DOCTYPE name [internal]>` declaration, if present (at most
    /// once, before the root element).
    Doctype {
        /// The document-type name.
        name: &'a str,
        /// The raw internal subset, if any.
        internal: Option<&'a str>,
    },
    /// A start tag (or the opening half of a self-closing tag).
    Start {
        /// Tag name — a slice of the input.
        name: &'a str,
        /// The name's dense per-document id from the lexer interner.
        id: NameId,
        /// Attributes in document order. Values are borrowed unless entity
        /// resolution forced an owned buffer.
        attributes: Vec<(&'a str, Cow<'a, str>)>,
    },
    /// An end tag (self-closing tags produce `Start` then `End`).
    End {
        /// Tag name — a slice of the input.
        name: &'a str,
        /// The same id the matching [`PullEvent::Start`] carried.
        id: NameId,
    },
    /// Character data. Borrowed unless entity resolution forced an owned
    /// buffer; adjacent runs may be split at CDATA boundaries.
    Text(Cow<'a, str>),
}

/// What [`PullParser::skip_subtree`] skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubtreeSkip {
    /// Raw bytes scanned past without tokenization.
    pub bytes: usize,
    /// Start/end tag events that were never tokenized (self-closing tags
    /// count as two, matching the event stream they replace; the skipped
    /// element's own end tag is included).
    pub events: usize,
}

/// A streaming parser over an in-memory UTF-8 document.
///
/// Cloning a parser forks the stream: both copies independently continue
/// from the same position (used by the skip-oracle property tests).
///
/// # Examples
/// ```
/// use schemacast_xml::pull::{PullParser, PullEvent};
/// let mut p = PullParser::new("<a x='1'><b/>hi</a>");
/// let events: Result<Vec<_>, _> = p.collect();
/// let events = events.unwrap();
/// assert_eq!(events.len(), 5); // <a>, <b>, </b>, "hi", </a>
/// assert!(matches!(&events[0], PullEvent::Start { name, .. } if *name == "a"));
/// ```
#[derive(Clone)]
pub struct PullParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Byte offset of the markup (or text run) of the last event returned.
    event_start: usize,
    stack: Vec<NameId>,
    names: NameTable<'a>,
    state: State,
    /// Queued event (self-closing tags emit two events).
    queued: Option<PullEvent<'a>>,
    /// Whether the document element has already been seen.
    seen_root: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Prolog,
    InDocument,
    Done,
    Failed,
}

impl<'a> PullParser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> PullParser<'a> {
        PullParser {
            text: input,
            bytes: input.as_bytes(),
            pos: 0,
            event_start: 0,
            stack: Vec::new(),
            names: NameTable::default(),
            state: State::Prolog,
            queued: None,
            seen_root: false,
        }
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Byte offset where the most recently returned event's markup (or text
    /// run) began.
    pub fn last_event_offset(&self) -> usize {
        self.event_start
    }

    /// Number of distinct element names interned so far.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// The string for an interned name id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this parser.
    pub fn name_of(&self, id: NameId) -> &'a str {
        self.names.get(id)
    }

    fn err(&self, message: &str) -> XmlError {
        self.err_at(self.pos, message)
    }

    fn err_at(&self, offset: usize, message: &str) -> XmlError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..offset.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError {
            offset,
            line,
            column: col,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn find_from(&self, from: usize, needle: &[u8]) -> Option<usize> {
        if from > self.bytes.len() {
            return None;
        }
        self.bytes[from..]
            .windows(needle.len())
            .position(|w| w == needle)
            .map(|i| from + i)
    }

    /// Position of the next `byte` at or after `from`.
    fn find_byte(&self, from: usize, byte: u8) -> Option<usize> {
        self.bytes
            .get(from..)?
            .iter()
            .position(|&b| b == byte)
            .map(|i| from + i)
    }

    /// Lexes a name as a borrowed slice (boundaries are ASCII delimiters,
    /// so slicing the `str` is always at char boundaries).
    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        if !self.peek().is_some_and(is_name_start) {
            return Err(self.err("expected a name"));
        }
        while self.peek().is_some_and(is_name_char) {
            self.pos += 1;
        }
        Ok(&self.text[start..self.pos])
    }

    /// Resolves the entity reference at `pos` (on `&`), appending the
    /// replacement text to `out`.
    fn append_entity(&mut self, out: &mut String) -> Result<(), XmlError> {
        self.pos += 1; // '&'
        let end = self
            .find_byte(self.pos, b';')
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let name = &self.text[self.pos..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err("bad hexadecimal character reference"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| self.err("character reference out of range"))?,
                );
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.err("bad decimal character reference"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| self.err("character reference out of range"))?,
                );
            }
            _ => return Err(self.err(&format!("unknown entity &{name};"))),
        }
        self.pos = end + 1;
        Ok(())
    }

    /// Builds the owned expansion of `text[start..end]`, which is known to
    /// contain at least one `&`.
    fn expand_entities(&mut self, start: usize, end: usize) -> Result<String, XmlError> {
        let mut out = String::with_capacity(end - start);
        self.pos = start;
        while self.pos < end {
            match self.find_byte(self.pos, b'&') {
                Some(amp) if amp < end => {
                    out.push_str(&self.text[self.pos..amp]);
                    self.pos = amp;
                    self.append_entity(&mut out)?;
                }
                _ => {
                    out.push_str(&self.text[self.pos..end]);
                    self.pos = end;
                }
            }
        }
        Ok(out)
    }

    fn attribute_value(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        // First pass: find the closing quote, rejecting '<' and noting '&'.
        let mut has_entity = false;
        loop {
            match self.peek() {
                Some(q) if q == quote => break,
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(b'&') => {
                    has_entity = true;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        let end = self.pos;
        let value = if has_entity {
            let expanded = self.expand_entities(start, end)?;
            Cow::Owned(expanded)
        } else {
            Cow::Borrowed(&self.text[start..end])
        };
        self.pos = end + 1; // past the closing quote
        Ok(value)
    }

    /// Lexes the character-data run starting at `pos` (ends at `<` or EOF).
    fn text_run(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let start = self.pos;
        let mut has_entity = false;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            if b == b'&' {
                has_entity = true;
            }
            self.pos += 1;
        }
        let end = self.pos;
        if !has_entity {
            return Ok(Cow::Borrowed(&self.text[start..end]));
        }
        let expanded = self.expand_entities(start, end)?;
        self.pos = end;
        Ok(Cow::Owned(expanded))
    }

    fn prolog_event(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                let end = self
                    .find_from(self.pos + 2, b"?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.pos = end + 2;
            } else if self.starts_with("<!--") {
                let end = self
                    .find_from(self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.starts_with("<!DOCTYPE") {
                self.event_start = self.pos;
                self.pos += "<!DOCTYPE".len();
                self.skip_ws();
                let name = self.name()?;
                let mut internal = None;
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'[') => {
                            self.pos += 1;
                            let start = self.pos;
                            let end = self
                                .find_byte(self.pos, b']')
                                .ok_or_else(|| self.err("unterminated internal DTD subset"))?;
                            internal = Some(&self.text[start..end]);
                            self.pos = end + 1;
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                        None => return Err(self.err("unterminated DOCTYPE")),
                    }
                }
                return Ok(Some(PullEvent::Doctype { name, internal }));
            } else {
                self.state = State::InDocument;
                return Ok(None);
            }
        }
    }

    fn document_event(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        // Between events inside the document.
        if self.stack.is_empty() {
            // Only misc allowed outside the root; find the root start tag or
            // the end of input.
            self.skip_ws();
            if self.pos == self.bytes.len() {
                if !self.seen_root {
                    return Err(self.err("expected a document element"));
                }
                self.state = State::Done;
                return Ok(None);
            }
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input inside element")),
            Some(b'<') => {
                if self.starts_with("</") {
                    if self.stack.is_empty() {
                        return Err(self.err("expected an element name, found an end tag"));
                    }
                    self.event_start = self.pos;
                    self.pos += 2;
                    let close_name = self.name()?;
                    let close = self.names.intern(close_name);
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("malformed end tag"));
                    }
                    self.pos += 1;
                    match self.stack.pop() {
                        Some(open) if open == close => {}
                        Some(open) => {
                            return Err(self.err(&format!(
                                "mismatched end tag: expected </{}>, found </{close_name}>",
                                self.names.get(open)
                            )))
                        }
                        None => return Err(self.err("end tag with no open element")),
                    }
                    Ok(Some(PullEvent::End {
                        name: close_name,
                        id: close,
                    }))
                } else if self.starts_with("<!--") {
                    let end = self
                        .find_from(self.pos + 4, b"-->")
                        .ok_or_else(|| self.err("unterminated comment"))?;
                    self.pos = end + 3;
                    self.document_event()
                } else if self.starts_with("<![CDATA[") {
                    if self.stack.is_empty() {
                        return Err(self.err("character data outside the root element"));
                    }
                    self.event_start = self.pos;
                    let start = self.pos + 9;
                    let end = self
                        .find_from(start, b"]]>")
                        .ok_or_else(|| self.err("unterminated CDATA section"))?;
                    let text = &self.text[start..end];
                    self.pos = end + 3;
                    Ok(Some(PullEvent::Text(Cow::Borrowed(text))))
                } else if self.starts_with("<?") {
                    let end = self
                        .find_from(self.pos + 2, b"?>")
                        .ok_or_else(|| self.err("unterminated processing instruction"))?;
                    self.pos = end + 2;
                    self.document_event()
                } else {
                    // Start tag.
                    if self.stack.is_empty() {
                        if self.seen_root {
                            return Err(self.err("content after document element"));
                        }
                        self.seen_root = true;
                    }
                    self.event_start = self.pos;
                    self.pos += 1;
                    let name = self.name()?;
                    let id = self.names.intern(name);
                    let mut attributes: Vec<(&'a str, Cow<'a, str>)> = Vec::new();
                    loop {
                        self.skip_ws();
                        match self.peek() {
                            Some(b'/') => {
                                if !self.starts_with("/>") {
                                    return Err(self.err("malformed empty-element tag"));
                                }
                                self.pos += 2;
                                self.queued = Some(PullEvent::End { name, id });
                                return Ok(Some(PullEvent::Start {
                                    name,
                                    id,
                                    attributes,
                                }));
                            }
                            Some(b'>') => {
                                self.pos += 1;
                                self.stack.push(id);
                                return Ok(Some(PullEvent::Start {
                                    name,
                                    id,
                                    attributes,
                                }));
                            }
                            Some(b) if is_name_start(b) => {
                                let attr = self.name()?;
                                self.skip_ws();
                                if self.peek() != Some(b'=') {
                                    return Err(self.err("expected '=' after attribute name"));
                                }
                                self.pos += 1;
                                self.skip_ws();
                                let value = self.attribute_value()?;
                                if attributes.iter().any(|(n, _)| *n == attr) {
                                    return Err(self.err(&format!("duplicate attribute {attr:?}")));
                                }
                                attributes.push((attr, value));
                            }
                            _ => return Err(self.err("malformed start tag")),
                        }
                    }
                }
            }
            Some(_) => {
                if self.stack.is_empty() {
                    return Err(
                        self.err("expected markup, found character data outside the root element")
                    );
                }
                self.event_start = self.pos;
                let text = self.text_run()?;
                Ok(Some(PullEvent::Text(text)))
            }
        }
    }

    fn advance(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        if let Some(e) = self.queued.take() {
            return Ok(Some(e));
        }
        if self.state == State::Prolog {
            if let Some(e) = self.prolog_event()? {
                self.state = State::InDocument;
                return Ok(Some(e));
            }
        }
        match self.state {
            State::Done | State::Failed => Ok(None),
            _ => {
                let e = self.document_event()?;
                if e.is_none() && self.state == State::Done && !self.stack.is_empty() {
                    return Err(self.err("unclosed elements at end of input"));
                }
                Ok(e)
            }
        }
    }

    /// Skips the content and end tag of the innermost open element by
    /// scanning raw bytes — no name, attribute, or entity tokenization.
    ///
    /// Must be called *just after* the element's [`PullEvent::Start`] was
    /// returned. The element's own end tag is consumed; the next event is
    /// whatever follows it. Returns how many bytes and tag events were
    /// skipped without lexing.
    ///
    /// The scanner is quote-aware inside start tags (`>` in attribute
    /// values), and skips comments, CDATA sections, and processing
    /// instructions wholesale, so `<child>` inside a comment or `]]>`
    /// inside text cannot derail it. It intentionally does **not** check
    /// that end-tag names match start-tag names inside the skipped region —
    /// skipped subtrees trade well-formedness *checking* for speed, which
    /// is exactly the paper's cost model (work proportional to the decided
    /// part of the document). On well-formed input it lands byte-for-byte
    /// where depth-counted event consumption would (property-tested).
    ///
    /// # Errors
    /// Returns `Err` if the input ends before the subtree closes, if an
    /// unterminated comment/CDATA/PI is encountered, or if no element is
    /// open.
    pub fn skip_subtree(&mut self) -> Result<SubtreeSkip, XmlError> {
        if let Some(queued) = self.queued.take() {
            // A self-closing element: its End event is already lexed and
            // queued; consuming it is the whole skip.
            debug_assert!(matches!(queued, PullEvent::End { .. }));
            return Ok(SubtreeSkip::default());
        }
        if self.stack.is_empty() || self.state != State::InDocument {
            return Err(self.err("skip_subtree called with no open element"));
        }
        let start = self.pos;
        let mut depth = 1usize;
        let mut events = 0usize;
        while depth > 0 {
            let lt = self.find_byte(self.pos, b'<').ok_or_else(|| {
                self.err_at(self.bytes.len(), "unexpected end of input inside element")
            })?;
            self.pos = lt;
            if self.starts_with("<!--") {
                let end = self
                    .find_from(self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.starts_with("<![CDATA[") {
                let end = self
                    .find_from(self.pos + 9, b"]]>")
                    .ok_or_else(|| self.err("unterminated CDATA section"))?;
                self.pos = end + 3;
            } else if self.starts_with("<?") {
                let end = self
                    .find_from(self.pos + 2, b"?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.pos = end + 2;
            } else if self.starts_with("</") {
                let gt = self
                    .find_byte(self.pos + 2, b'>')
                    .ok_or_else(|| self.err("malformed end tag"))?;
                self.pos = gt + 1;
                depth -= 1;
                events += 1;
            } else {
                // Start tag: scan to the closing '>' outside quotes,
                // detecting self-closing tags.
                self.pos += 1;
                let mut quote: Option<u8> = None;
                loop {
                    let Some(&b) = self.bytes.get(self.pos) else {
                        return Err(self.err("unexpected end of input inside element"));
                    };
                    self.pos += 1;
                    match quote {
                        Some(q) => {
                            if b == q {
                                quote = None;
                            }
                        }
                        None => match b {
                            b'"' | b'\'' => quote = Some(b),
                            b'>' => break,
                            _ => {}
                        },
                    }
                }
                let self_closing = self.pos >= 2 && self.bytes[self.pos - 2] == b'/';
                if self_closing {
                    events += 2;
                } else {
                    depth += 1;
                    events += 1;
                }
            }
        }
        self.stack.pop();
        Ok(SubtreeSkip {
            bytes: self.pos - start,
            events,
        })
    }
}

impl<'a> Iterator for PullParser<'a> {
    type Item = Result<PullEvent<'a>, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.advance() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.state = State::Failed;
                Some(Err(e))
            }
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || matches!(b, b'.' | b'-')
}

/// The lexer-level name interner: borrowed keys, dense ids, FNV-1a hashing
/// with open addressing. One (cheap) hash per name occurrence, one id
/// thereafter — consumers resolve each *distinct* name against heavier
/// structures (e.g. the schema [`Alphabet`](../../schemacast_regex/struct.Alphabet.html))
/// exactly once.
#[derive(Clone, Default)]
struct NameTable<'a> {
    names: Vec<&'a str>,
    /// Open-addressing buckets holding `index + 1` (`0` = empty).
    buckets: Vec<u32>,
}

impl<'a> NameTable<'a> {
    fn len(&self) -> usize {
        self.names.len()
    }

    fn get(&self, id: NameId) -> &'a str {
        self.names[id.index()]
    }

    fn intern(&mut self, name: &'a str) -> NameId {
        if self.buckets.is_empty() {
            self.buckets = vec![0; 16];
        } else if (self.names.len() + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut slot = fnv1a(name.as_bytes()) as usize & mask;
        loop {
            match self.buckets[slot] {
                0 => {
                    let id = NameId(self.names.len() as u32);
                    self.names.push(name);
                    self.buckets[slot] = id.0 + 1;
                    return id;
                }
                occupied => {
                    let idx = (occupied - 1) as usize;
                    if self.names[idx] == name {
                        return NameId(occupied - 1);
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![0u32; new_len];
        for (idx, name) in self.names.iter().enumerate() {
            let mut slot = fnv1a(name.as_bytes()) as usize & mask;
            while buckets[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            buckets[slot] = idx as u32 + 1;
        }
        self.buckets = buckets;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_document, XmlElement, XmlNode};

    fn events(input: &str) -> Vec<PullEvent<'_>> {
        PullParser::new(input)
            .collect::<Result<Vec<_>, _>>()
            .expect("parses")
    }

    #[test]
    fn basic_event_stream() {
        let ev = events("<a x=\"1\"><b/>hi &amp; bye</a>");
        assert_eq!(ev.len(), 5);
        match &ev[0] {
            PullEvent::Start {
                name, attributes, ..
            } => {
                assert_eq!(*name, "a");
                assert_eq!(attributes.len(), 1);
                assert_eq!(attributes[0].0, "x");
                assert_eq!(attributes[0].1, "1");
            }
            other => panic!("expected Start, got {other:?}"),
        }
        assert!(matches!(&ev[1], PullEvent::Start { name, .. } if *name == "b"));
        assert!(matches!(&ev[2], PullEvent::End { name, .. } if *name == "b"));
        assert!(matches!(&ev[3], PullEvent::Text(t) if t == "hi & bye"));
        assert!(matches!(&ev[4], PullEvent::End { name, .. } if *name == "a"));
    }

    #[test]
    fn doctype_event() {
        let ev = events("<!DOCTYPE po [<!ELEMENT po EMPTY>]><po/>");
        assert!(matches!(&ev[0], PullEvent::Doctype { name, internal }
            if *name == "po" && *internal == Some("<!ELEMENT po EMPTY>")));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["<a>", "<a></b>", "<a/><b/>", "text", "<a>&bogus;</a>"] {
            let r: Result<Vec<_>, _> = PullParser::new(bad).collect();
            assert!(r.is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn name_ids_are_dense_and_stable() {
        let mut p = PullParser::new("<a><b/><b/><a/></a>");
        let mut ids = Vec::new();
        for ev in p.by_ref() {
            if let PullEvent::Start { name, id, .. } = ev.expect("ok") {
                ids.push((name, id));
            }
        }
        assert_eq!(
            ids,
            vec![
                ("a", NameId(0)),
                ("b", NameId(1)),
                ("b", NameId(1)),
                ("a", NameId(0)),
            ]
        );
        assert_eq!(p.name_count(), 2);
        assert_eq!(p.name_of(NameId(0)), "a");
        assert_eq!(p.name_of(NameId(1)), "b");
    }

    #[test]
    fn borrowed_on_fast_path_owned_only_for_entities() {
        let input = "<a k=\"plain\" e=\"x&amp;y\">text<![CDATA[raw]]>with &lt; entity</a>";
        for ev in events(input) {
            match ev {
                PullEvent::Start { attributes, .. } => {
                    for (n, v) in &attributes {
                        match *n {
                            "k" => assert!(matches!(v, Cow::Borrowed(_))),
                            "e" => {
                                assert!(matches!(v, Cow::Owned(_)));
                                assert_eq!(v, "x&y");
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                PullEvent::Text(t) => match &*t {
                    "text" | "raw" => assert!(matches!(t, Cow::Borrowed(_))),
                    "with < entity" => assert!(matches!(t, Cow::Owned(_))),
                    other => panic!("unexpected text {other:?}"),
                },
                _ => {}
            }
        }
    }

    #[test]
    fn offsets_track_event_markup() {
        let input = "<a><b>hi</b></a>";
        let mut p = PullParser::new(input);
        let mut offsets = Vec::new();
        while let Some(ev) = p.next() {
            ev.expect("ok");
            offsets.push(p.last_event_offset());
        }
        // <a> at 0, <b> at 3, "hi" at 6, </b> at 8, </a> at 12.
        assert_eq!(offsets, vec![0, 3, 6, 8, 12]);
        assert_eq!(p.offset(), input.len());
    }

    #[test]
    fn skip_subtree_lands_after_matching_end_tag() {
        let input = "<r><skip a=\">\"><inner>]]&gt;</inner><!-- <fake> --><x/></skip><next/></r>";
        let mut p = PullParser::new(input);
        // <r>
        assert!(matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "r"));
        // <skip ...>
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "skip")
        );
        let skipped = p.skip_subtree().expect("skips");
        assert!(skipped.bytes > 0);
        assert_eq!(skipped.events, 5); // <inner>, </inner>, <x/> (×2), </skip>
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "next")
        );
    }

    #[test]
    fn skip_subtree_on_self_closing_consumes_queued_end() {
        let mut p = PullParser::new("<r><leaf/><next/></r>");
        p.next().unwrap().unwrap(); // <r>
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "leaf")
        );
        let skipped = p.skip_subtree().expect("skips");
        assert_eq!(skipped, SubtreeSkip::default());
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "next")
        );
    }

    #[test]
    fn skip_subtree_handles_tricky_payloads() {
        // ']]>' inside text, '>' inside attribute values, comments and CDATA
        // containing tags.
        let input =
            "<r><s q='a>b'>x ]]> y<![CDATA[</s>]]><!-- </s> --><t u=\"/>\">z</t></s><after/></r>";
        let mut p = PullParser::new(input);
        p.next().unwrap().unwrap(); // <r>
        p.next().unwrap().unwrap(); // <s>
        p.skip_subtree().expect("skips");
        assert!(
            matches!(p.next().unwrap().unwrap(), PullEvent::Start { name, .. } if name == "after")
        );
    }

    #[test]
    fn skip_subtree_err_cases() {
        let mut p = PullParser::new("<a><b>unclosed");
        p.next().unwrap().unwrap(); // <a>
        p.next().unwrap().unwrap(); // <b>
        assert!(p.skip_subtree().is_err());

        let mut p = PullParser::new("<a/>");
        assert!(matches!(
            p.next().unwrap().unwrap(),
            PullEvent::Start { .. }
        ));
        // Queued end: fine.
        assert!(p.skip_subtree().is_ok());
        // Nothing open anymore.
        assert!(p.skip_subtree().is_err());
    }

    /// Build a DOM from pull events and compare against the DOM parser on a
    /// battery of documents.
    #[test]
    fn agrees_with_dom_parser() {
        fn build(input: &str) -> Result<XmlElement, crate::error::XmlError> {
            let mut stack: Vec<XmlElement> = Vec::new();
            let mut root: Option<XmlElement> = None;
            for ev in PullParser::new(input) {
                match ev? {
                    PullEvent::Doctype { .. } => {}
                    PullEvent::Start {
                        name, attributes, ..
                    } => {
                        let mut e = XmlElement::new(name);
                        e.attributes = attributes
                            .into_iter()
                            .map(|(n, v)| (n.to_owned(), v.into_owned()))
                            .collect();
                        stack.push(e);
                    }
                    PullEvent::End { .. } => {
                        let e = stack.pop().expect("balanced");
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(XmlNode::Element(e)),
                            None => root = Some(e),
                        }
                    }
                    PullEvent::Text(t) => {
                        if let Some(parent) = stack.last_mut() {
                            // Coalesce adjacent text like the DOM parser.
                            if let Some(XmlNode::Text(prev)) = parent.children.last_mut() {
                                prev.push_str(&t);
                            } else if !t.is_empty() {
                                parent.children.push(XmlNode::Text(t.into_owned()));
                            }
                        }
                    }
                }
            }
            Ok(root.expect("root"))
        }

        for doc in [
            "<a><b><c/></b><b/></a>",
            "<t>&lt;x&gt; &#65;</t>",
            "<a>\n  <b>text</b>\n  <c/>\n</a>",
            "<r><![CDATA[<raw>]]>tail</r>",
            r#"<x a="1" b='two'/>"#,
            "<?xml version=\"1.0\"?><!-- c --><r><k>v</k></r>",
        ] {
            let via_pull = build(doc).expect("pull parses");
            let via_dom = parse_document(doc).expect("dom parses").root;
            assert_eq!(via_pull, via_dom, "document {doc:?}");
        }
    }

    #[test]
    fn depth_is_bounded_by_nesting() {
        let mut p = PullParser::new("<a><b><c>x</c></b></a>");
        let mut max_depth = 0;
        while let Some(ev) = p.next() {
            ev.expect("ok");
            max_depth = max_depth.max(p.depth());
        }
        assert_eq!(max_depth, 3);
    }
}
