//! Chunked word-at-a-time (SWAR) byte scanning.
//!
//! The structural indexer and the pull parser's fallback paths both need
//! "find the next interesting byte" primitives. External SIMD crates are
//! off the table (the workspace vendors every dependency), so these are
//! classic SWAR kernels: load 8 bytes as a `u64`, locate matching bytes
//! with the zero-byte trick (`(w - 0x0101..) & !w & 0x8080..`), and fall
//! back to a scalar tail for the last < 8 bytes. On ordinary text this
//! scans at a large fraction of memory bandwidth while staying
//! `forbid(unsafe)`-clean — alignment never matters because chunks are
//! read with `u64::from_le_bytes` on exact 8-byte slices.
//!
//! All functions take the *whole* haystack plus a starting offset and
//! return **absolute** positions, so call sites keep their cursor
//! arithmetic trivial.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts a byte to all 8 lanes.
#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// A word whose high bit is set in every lane that held `0x00` in `w`.
///
/// The classic trick: subtracting 1 from a zero lane borrows into bit 7,
/// and `!w` masks out lanes that had bit 7 set already. False positives
/// are impossible; every zero lane is flagged (lanes *after* a flagged
/// lane may be wrong, which is why callers take the lowest flagged lane).
#[inline]
fn zero_lanes(w: u64) -> u64 {
    w.wrapping_sub(LO) & !w & HI
}

/// Index of the lowest flagged lane in a `zero_lanes` mask.
#[inline]
fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// A word whose high bit is set in every lane of `x` that is **non-zero**.
///
/// Unlike [`zero_lanes`] this is exact per lane: `(x & 0x7F..) + 0x7F..`
/// carries into bit 7 of a lane iff any of its low seven bits are set, and
/// the carry cannot cross lanes (`0x7F + 0x7F = 0xFE`). OR-ing `x` back in
/// covers lanes whose only set bit is bit 7. `zero_lanes`' borrow can flag
/// lanes *after* the first zero — fine for "find the first match", fatal
/// for "does every lane match", which is what [`all_ws`] needs.
#[inline]
fn nonzero_lanes_exact(x: u64) -> u64 {
    (((x & !HI) + !HI) | x) & HI
}

/// Whether every byte of `hay[from..to]` is XML whitespace (space, tab,
/// CR, LF). Empty and out-of-range spans are vacuously all-whitespace.
///
/// This is the tape builder's text-span classification: one pass at build
/// time lets the validator skip whitespace-only text events without ever
/// re-scanning the span.
#[inline]
pub fn all_ws(hay: &[u8], from: usize, to: usize) -> bool {
    let to = to.min(hay.len());
    if from >= to {
        return true;
    }
    let span = &hay[from..to];
    let (sp, tab, lf, cr) = (splat(b' '), splat(b'\t'), splat(b'\n'), splat(b'\r'));
    let mut chunks = span.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(chunk);
        let w = u64::from_le_bytes(bytes);
        // High bit per lane iff the lane matches at least one of the four
        // whitespace bytes; all eight must match.
        let ws = (!nonzero_lanes_exact(w ^ sp)
            | !nonzero_lanes_exact(w ^ tab)
            | !nonzero_lanes_exact(w ^ lf)
            | !nonzero_lanes_exact(w ^ cr))
            & HI;
        if ws != HI {
            return false;
        }
    }
    chunks
        .remainder()
        .iter()
        .all(|&b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
}

/// Position of the first `byte` at or after `from`, or `None`.
#[inline]
pub fn find_byte(hay: &[u8], from: usize, byte: u8) -> Option<usize> {
    let tail = hay.get(from..)?;
    let needle = splat(byte);
    let mut chunks = tail.chunks_exact(8);
    let mut offset = from;
    for chunk in chunks.by_ref() {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let m = zero_lanes(w ^ needle);
        if m != 0 {
            return Some(offset + first_lane(m));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == byte)
        .map(|i| offset + i)
}

/// Position of the first occurrence of `b1` **or** `b2` at or after `from`.
#[inline]
pub fn find_byte2(hay: &[u8], from: usize, b1: u8, b2: u8) -> Option<usize> {
    let tail = hay.get(from..)?;
    let (n1, n2) = (splat(b1), splat(b2));
    let mut chunks = tail.chunks_exact(8);
    let mut offset = from;
    for chunk in chunks.by_ref() {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let m = zero_lanes(w ^ n1) | zero_lanes(w ^ n2);
        if m != 0 {
            return Some(offset + first_lane(m));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == b1 || b == b2)
        .map(|i| offset + i)
}

/// Position of the first occurrence of `b1`, `b2`, **or** `b3` at or after
/// `from`.
#[inline]
pub fn find_byte3(hay: &[u8], from: usize, b1: u8, b2: u8, b3: u8) -> Option<usize> {
    let tail = hay.get(from..)?;
    let (n1, n2, n3) = (splat(b1), splat(b2), splat(b3));
    let mut chunks = tail.chunks_exact(8);
    let mut offset = from;
    for chunk in chunks.by_ref() {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let m = zero_lanes(w ^ n1) | zero_lanes(w ^ n2) | zero_lanes(w ^ n3);
        if m != 0 {
            return Some(offset + first_lane(m));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == b1 || b == b2 || b == b3)
        .map(|i| offset + i)
}

/// Position of the first occurrence of the multi-byte `needle` at or after
/// `from` (SWAR scan for the first byte, then a direct comparison of the
/// rest). Empty needles match at `from`.
#[inline]
pub fn find_seq(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    let Some((&first, rest)) = needle.split_first() else {
        return (from <= hay.len()).then_some(from);
    };
    let mut at = from;
    loop {
        let hit = find_byte(hay, at, first)?;
        let after = hit + 1;
        if hay.len() - after < rest.len() {
            return None;
        }
        if &hay[after..after + rest.len()] == rest {
            return Some(hit);
        }
        at = after;
    }
}

/// Whether `hay[from..to]` contains `byte` (SWAR bounded containment —
/// the tape builder's entity-presence classification). The scan stops at
/// `to`: a miss must cost O(to - from), not O(len - from), or per-span
/// classification turns the builder quadratic.
#[inline]
pub fn contains_byte(hay: &[u8], from: usize, to: usize, byte: u8) -> bool {
    let bounded = &hay[..to.min(hay.len())];
    find_byte(bounded, from, byte).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementations the SWAR kernels must agree with.
    fn naive_find(hay: &[u8], from: usize, pred: impl Fn(u8) -> bool) -> Option<usize> {
        hay.get(from..)?
            .iter()
            .position(|&b| pred(b))
            .map(|i| from + i)
    }

    #[test]
    fn finds_across_chunk_boundaries() {
        let mut hay = vec![b'a'; 37];
        for at in 0..37 {
            hay[at] = b'<';
            assert_eq!(find_byte(&hay, 0, b'<'), Some(at), "position {at}");
            for from in 0..=at {
                assert_eq!(find_byte(&hay, from, b'<'), Some(at));
            }
            assert_eq!(find_byte(&hay, at + 1, b'<'), None);
            hay[at] = b'a';
        }
    }

    #[test]
    fn absent_and_out_of_range() {
        let hay = b"hello world";
        assert_eq!(find_byte(hay, 0, b'z'), None);
        assert_eq!(find_byte(hay, hay.len(), b'h'), None);
        assert_eq!(find_byte(hay, hay.len() + 1, b'h'), None);
        assert_eq!(find_byte2(hay, hay.len() + 1, b'h', b'e'), None);
        assert_eq!(find_byte3(hay, hay.len() + 1, b'h', b'e', b'l'), None);
        assert_eq!(find_seq(hay, hay.len() + 1, b"lo"), None);
    }

    #[test]
    fn high_bit_bytes_do_not_confuse_the_mask() {
        // 0x80/0xFF lanes are the classic SWAR false-positive hazard.
        let hay = [0xFFu8, 0x80, 0x7F, 0x00, b'<', 0xFF, 0x80, 0x00, b'<'];
        assert_eq!(find_byte(&hay, 0, b'<'), Some(4));
        assert_eq!(find_byte(&hay, 5, b'<'), Some(8));
        assert_eq!(find_byte(&hay, 0, 0x00), Some(3));
        assert_eq!(find_byte(&hay, 0, 0xFF), Some(0));
        assert_eq!(find_byte(&hay, 1, 0xFF), Some(5));
        assert_eq!(find_byte(&hay, 0, 0x80), Some(1));
    }

    #[test]
    fn multi_byte_variants_agree_with_naive_scan() {
        // Deterministic pseudo-random haystack exercising all alignments.
        let mut state = 0x9E37_79B9_u32;
        let hay: Vec<u8> = (0..257)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        for from in 0..hay.len() + 2 {
            assert_eq!(
                find_byte(&hay, from, b'<'),
                naive_find(&hay, from, |b| b == b'<')
            );
            assert_eq!(
                find_byte2(&hay, from, b'<', b'&'),
                naive_find(&hay, from, |b| b == b'<' || b == b'&')
            );
            assert_eq!(
                find_byte3(&hay, from, b'>', b'"', b'\''),
                naive_find(&hay, from, |b| matches!(b, b'>' | b'"' | b'\''))
            );
        }
    }

    #[test]
    fn sequences() {
        let hay = b"ab]]-->cd]]>ef]]>";
        assert_eq!(find_seq(hay, 0, b"-->"), Some(4));
        assert_eq!(find_seq(hay, 0, b"]]>"), Some(9));
        assert_eq!(find_seq(hay, 10, b"]]>"), Some(14));
        assert_eq!(find_seq(hay, 15, b"]]>"), None);
        assert_eq!(find_seq(hay, 0, b"absent"), None);
        assert_eq!(find_seq(hay, 3, b""), Some(3));
        // Needle longer than the tail.
        assert_eq!(find_seq(b"xy", 0, b"xyz"), None);
    }

    #[test]
    fn all_ws_agrees_with_naive_scan() {
        fn naive(hay: &[u8], from: usize, to: usize) -> bool {
            hay[from..to.min(hay.len())]
                .iter()
                .all(|&b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        }
        // Whitespace runs with a single interloper at every position and
        // every alignment, including chunk boundaries.
        for len in 0..40 {
            let mut hay = vec![b' '; len];
            for (i, b) in [b'\t', b'\n', b'\r'].iter().enumerate() {
                if i < len {
                    hay[i] = *b;
                }
            }
            for from in 0..=len {
                for to in from..=len + 1 {
                    assert!(all_ws(&hay, from, to), "ws run len={len} {from}..{to}");
                }
            }
            for at in 0..len {
                let saved = hay[at];
                hay[at] = b'x';
                for from in 0..=len {
                    for to in from..=len {
                        assert_eq!(
                            all_ws(&hay, from, to),
                            naive(&hay, from, to),
                            "len={len} interloper@{at} {from}..{to}"
                        );
                    }
                }
                hay[at] = saved;
            }
        }
        // High-bit bytes must not read as whitespace (NBSP et al. are
        // handled by the validator's slow path, never the tape flag).
        let tricky = [0x80u8, 0xFF, 0xA0, 0x00, 0x1F, 0x7F, b' ', b' '];
        for from in 0..tricky.len() {
            assert_eq!(
                all_ws(&tricky, from, tricky.len()),
                tricky[from..]
                    .iter()
                    .all(|&b| matches!(b, b' ' | b'\t' | b'\n' | b'\r')),
            );
        }
    }

    #[test]
    fn contains_is_bounded() {
        let hay = b"0123&567";
        assert!(contains_byte(hay, 0, 8, b'&'));
        assert!(contains_byte(hay, 4, 5, b'&'));
        assert!(!contains_byte(hay, 0, 4, b'&'));
        assert!(!contains_byte(hay, 5, 8, b'&'));
    }
}
