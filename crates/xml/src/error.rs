//! Positioned XML parse errors.

use std::fmt;

/// An error produced while parsing an XML document, with 1-based line and
/// column of the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError {
            offset: 10,
            line: 2,
            column: 3,
            message: "unexpected '<'".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 2"));
        assert!(s.contains("column 3"));
        assert!(s.contains("unexpected '<'"));
    }
}
