//! The DOM front-end of the from-scratch, dependency-free XML 1.0 parser.
//!
//! Covers the subset needed by the revalidation system and its experiments:
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions, the XML declaration, `DOCTYPE` with internal
//! subset capture (handed to the DTD front-end in `schemacast-schema`), the
//! five predefined entities and numeric character references. Namespaces are
//! carried through as prefixed names (the paper's model is structural and
//! prefix-agnostic).
//!
//! There is exactly one tokenizer in the workspace: [`parse_document`] is a
//! thin tree-building loop over the zero-copy [`PullParser`]
//! events, so the streaming validator and the DOM builder share one set of
//! conformance behaviors.

use crate::error::XmlError;
use crate::pull::{PullEvent, PullParser};

/// A parsed XML node: an element or a run of character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// An element with attributes and ordered children.
    Element(XmlElement),
    /// Character data (entity references already resolved; CDATA merged).
    Text(String),
}

/// An element: tag name, attributes in document order, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name, possibly prefixed (`xsd:element`).
    pub name: String,
    /// `(name, value)` attribute pairs in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The value of the first attribute called `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// Concatenated text content of direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }
}

/// A parsed document: the root element plus any captured internal DTD
/// subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDocument {
    /// The document element.
    pub root: XmlElement,
    /// The raw internal subset of a `<!DOCTYPE … [ … ]>` declaration, if
    /// present — the DTD front-end parses it further.
    pub internal_dtd: Option<String>,
    /// Name declared in `<!DOCTYPE name …>`, if present.
    pub doctype_name: Option<String>,
}

/// Parses a complete XML document.
///
/// # Errors
/// Returns a positioned [`XmlError`] on malformed input (unbalanced tags,
/// bad entity references, attribute syntax errors, trailing content, …).
///
/// # Examples
/// ```
/// use schemacast_xml::parse_document;
/// let doc = parse_document("<po><item qty='3'>widget</item></po>").unwrap();
/// assert_eq!(doc.root.name, "po");
/// let item = doc.root.child_elements().next().unwrap();
/// assert_eq!(item.attr("qty"), Some("3"));
/// assert_eq!(item.text(), "widget");
/// ```
pub fn parse_document(input: &str) -> Result<XmlDocument, XmlError> {
    let parser = PullParser::new(input);
    let mut doctype_name: Option<String> = None;
    let mut internal_dtd: Option<String> = None;
    let mut stack: Vec<XmlElement> = Vec::new();
    let mut root: Option<XmlElement> = None;
    for event in parser {
        match event? {
            PullEvent::Doctype { name, internal } => {
                doctype_name = Some(name.to_owned());
                internal_dtd = internal.map(str::to_owned);
            }
            PullEvent::Start {
                name, attributes, ..
            } => {
                let mut element = XmlElement::new(name);
                element.attributes = attributes
                    .into_iter()
                    .map(|(n, v)| (n.to_owned(), v.into_owned()))
                    .collect();
                stack.push(element);
            }
            PullEvent::End { .. } => {
                let element = stack.pop().expect("pull parser balances tags");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(XmlNode::Element(element)),
                    None => root = Some(element),
                }
            }
            PullEvent::Text(text) => {
                // The pull parser only emits text inside an element.
                let parent = stack.last_mut().expect("text is inside an element");
                // Coalesce adjacent runs (CDATA boundaries split events).
                if let Some(XmlNode::Text(prev)) = parent.children.last_mut() {
                    prev.push_str(&text);
                } else if !text.is_empty() {
                    parent.children.push(XmlNode::Text(text.into_owned()));
                }
            }
        }
    }
    // The pull parser errors on missing/duplicate roots before returning
    // `None`, so `root` is always set on the success path.
    let root = root.ok_or_else(|| XmlError {
        offset: 0,
        line: 1,
        column: 1,
        message: "expected a document element".to_owned(),
    })?;
    Ok(XmlDocument {
        root,
        internal_dtd,
        doctype_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let doc = parse_document("<a><b><c/></b><b/></a>").expect("parse");
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.children.len(), 2);
        let b0 = doc.root.child_elements().next().unwrap();
        assert_eq!(b0.child_elements().next().unwrap().name, "c");
    }

    #[test]
    fn parses_attributes_both_quotes() {
        let doc = parse_document(r#"<x a="1" b='two' c="a&amp;b"/>"#).expect("parse");
        assert_eq!(doc.root.attr("a"), Some("1"));
        assert_eq!(doc.root.attr("b"), Some("two"));
        assert_eq!(doc.root.attr("c"), Some("a&b"));
        assert_eq!(doc.root.attr("missing"), None);
    }

    #[test]
    fn resolves_entities_and_char_refs() {
        let doc =
            parse_document("<t>&lt;tag&gt; &amp; &quot;q&quot; &#65;&#x42; &apos;</t>").unwrap();
        assert_eq!(doc.root.text(), "<tag> & \"q\" AB '");
    }

    #[test]
    fn cdata_and_comments_and_pis() {
        let doc =
            parse_document("<t><!-- note --><![CDATA[<raw> & stuff]]><?pi data?>tail</t>").unwrap();
        assert_eq!(doc.root.text(), "<raw> & stufftail");
        // Adjacent character data (CDATA + "tail") coalesces into one node.
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn doctype_with_internal_subset() {
        let input = r#"<?xml version="1.0"?>
<!DOCTYPE po [
  <!ELEMENT po (item*)>
  <!ELEMENT item (#PCDATA)>
]>
<po><item>x</item></po>"#;
        let doc = parse_document(input).expect("parse");
        assert_eq!(doc.doctype_name.as_deref(), Some("po"));
        let dtd = doc.internal_dtd.expect("internal subset");
        assert!(dtd.contains("<!ELEMENT po (item*)>"));
        assert_eq!(doc.root.name, "po");
    }

    #[test]
    fn whitespace_text_nodes_are_preserved() {
        let doc = parse_document("<a>\n  <b/>\n</a>").expect("parse");
        assert_eq!(doc.root.children.len(), 3);
        assert!(matches!(&doc.root.children[0], XmlNode::Text(t) if t == "\n  "));
    }

    #[test]
    fn empty_cdata_produces_no_text_node() {
        let doc = parse_document("<a><![CDATA[]]></a>").expect("parse");
        assert!(doc.root.children.is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "<a>",
            "<a></b>",
            "<a attr></a>",
            "<a 'v'/>",
            "<a/><b/>",
            "text only",
            "<a>&unknown;</a>",
            "<a b='1' b='2'/>",
            "<a><![CDATA[x</a>",
            "",
        ] {
            assert!(parse_document(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_positions_are_sensible() {
        let err = parse_document("<a>\n<b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("mismatched end tag"));
    }

    #[test]
    fn unicode_content() {
        let doc = parse_document("<t>héllo — 世界</t>").expect("parse");
        assert_eq!(doc.root.text(), "héllo — 世界");
    }

    #[test]
    fn xml_decl_and_leading_misc() {
        let doc =
            parse_document("<?xml version=\"1.0\" encoding=\"UTF-8\"?><!-- c --><r/>").unwrap();
        assert_eq!(doc.root.name, "r");
    }
}
