//! A from-scratch, dependency-free XML 1.0 parser.
//!
//! Covers the subset needed by the revalidation system and its experiments:
//! elements, attributes, character data, CDATA sections, comments,
//! processing instructions, the XML declaration, `DOCTYPE` with internal
//! subset capture (handed to the DTD front-end in `schemacast-schema`), the
//! five predefined entities and numeric character references. Namespaces are
//! carried through as prefixed names (the paper's model is structural and
//! prefix-agnostic).

use crate::error::XmlError;

/// A parsed XML node: an element or a run of character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// An element with attributes and ordered children.
    Element(XmlElement),
    /// Character data (entity references already resolved; CDATA merged).
    Text(String),
}

/// An element: tag name, attributes in document order, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name, possibly prefixed (`xsd:element`).
    pub name: String,
    /// `(name, value)` attribute pairs in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The value of the first attribute called `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// Concatenated text content of direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }
}

/// A parsed document: the root element plus any captured internal DTD
/// subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDocument {
    /// The document element.
    pub root: XmlElement,
    /// The raw internal subset of a `<!DOCTYPE … [ … ]>` declaration, if
    /// present — the DTD front-end parses it further.
    pub internal_dtd: Option<String>,
    /// Name declared in `<!DOCTYPE name …>`, if present.
    pub doctype_name: Option<String>,
}

/// Parses a complete XML document.
///
/// # Errors
/// Returns a positioned [`XmlError`] on malformed input (unbalanced tags,
/// bad entity references, attribute syntax errors, trailing content, …).
///
/// # Examples
/// ```
/// use schemacast_xml::parse_document;
/// let doc = parse_document("<po><item qty='3'>widget</item></po>").unwrap();
/// assert_eq!(doc.root.name, "po");
/// let item = doc.root.child_elements().next().unwrap();
/// assert_eq!(item.attr("qty"), Some("3"));
/// assert_eq!(item.text(), "widget");
/// ```
pub fn parse_document(input: &str) -> Result<XmlDocument, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let doctype = p.maybe_doctype()?;
    p.skip_misc();
    let root = p.element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("content after document element"));
    }
    let (doctype_name, internal_dtd) = match doctype {
        Some((n, d)) => (Some(n), d),
        None => (None, None),
    };
    Ok(XmlDocument {
        root,
        internal_dtd,
        doctype_name,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> XmlError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError {
            offset: self.pos,
            line,
            column: col,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            let end = find_from(self.bytes, self.pos, b"?>")
                .ok_or_else(|| self.err("unterminated XML declaration"))?;
            self.pos = end + 2;
        }
        Ok(())
    }

    /// Skips comments, PIs, and whitespace between top-level constructs.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if let Some(end) = find_from(self.bytes, self.pos + 4, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
                return;
            }
            if self.starts_with("<?") {
                if let Some(end) = find_from(self.bytes, self.pos + 2, b"?>") {
                    self.pos = end + 2;
                    continue;
                }
                return;
            }
            return;
        }
    }

    fn maybe_doctype(&mut self) -> Result<Option<(String, Option<String>)>, XmlError> {
        self.skip_misc();
        if !self.starts_with("<!DOCTYPE") {
            return Ok(None);
        }
        self.pos += "<!DOCTYPE".len();
        self.skip_ws();
        let name = self.name()?;
        // Scan to the closing '>', capturing an internal subset if present.
        let mut internal: Option<String> = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'[') => {
                    self.pos += 1;
                    let start = self.pos;
                    let end = self.bytes[self.pos..]
                        .iter()
                        .position(|&b| b == b']')
                        .map(|i| self.pos + i)
                        .ok_or_else(|| self.err("unterminated internal DTD subset"))?;
                    internal = Some(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("non-UTF-8 DTD subset"))?
                            .to_owned(),
                    );
                    self.pos = end + 1;
                }
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Some((name, internal)));
                }
                Some(_) => self.pos += 1, // SYSTEM/PUBLIC identifiers
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        if !self.peek().is_some_and(is_name_start) {
            return Err(self.err("expected a name"));
        }
        while self.peek().is_some_and(is_name_char) {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 name"))?
            .to_owned())
    }

    fn element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut element = XmlElement::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    self.content(&mut element)?;
                    return Ok(element);
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    if element.attributes.iter().any(|(n, _)| *n == attr_name) {
                        return Err(self.err(&format!("duplicate attribute {attr_name:?}")));
                    }
                    element.attributes.push((attr_name, value));
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }
    }

    fn attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(b'&') => out.push_str(&self.entity()?),
                Some(b) => {
                    push_byte(&mut out, self.bytes, &mut self.pos, b)?;
                    continue;
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    fn content(&mut self, element: &mut XmlElement) -> Result<(), XmlError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input inside element")),
                Some(b'<') => {
                    if self.starts_with("</") {
                        flush_text(&mut text, element);
                        self.pos += 2;
                        let close = self.name()?;
                        if close != element.name {
                            return Err(self.err(&format!(
                                "mismatched end tag: expected </{}>, found </{}>",
                                element.name, close
                            )));
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        let end = find_from(self.bytes, self.pos + 4, b"-->")
                            .ok_or_else(|| self.err("unterminated comment"))?;
                        self.pos = end + 3;
                    } else if self.starts_with("<![CDATA[") {
                        let start = self.pos + 9;
                        let end = find_from(self.bytes, start, b"]]>")
                            .ok_or_else(|| self.err("unterminated CDATA section"))?;
                        text.push_str(
                            std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| self.err("non-UTF-8 CDATA"))?,
                        );
                        self.pos = end + 3;
                    } else if self.starts_with("<?") {
                        let end = find_from(self.bytes, self.pos + 2, b"?>")
                            .ok_or_else(|| self.err("unterminated processing instruction"))?;
                        self.pos = end + 2;
                    } else {
                        flush_text(&mut text, element);
                        let child = self.element()?;
                        element.children.push(XmlNode::Element(child));
                    }
                }
                Some(b'&') => text.push_str(&self.entity()?),
                Some(b) => {
                    push_byte(&mut text, self.bytes, &mut self.pos, b)?;
                }
            }
        }
    }

    fn entity(&mut self) -> Result<String, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let end = self.bytes[self.pos..]
            .iter()
            .position(|&b| b == b';')
            .map(|i| self.pos + i)
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let name = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-UTF-8 entity"))?;
        let resolved = match name {
            "amp" => "&".to_owned(),
            "lt" => "<".to_owned(),
            "gt" => ">".to_owned(),
            "apos" => "'".to_owned(),
            "quot" => "\"".to_owned(),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err("bad hexadecimal character reference"))?;
                char::from_u32(code)
                    .map(String::from)
                    .ok_or_else(|| self.err("character reference out of range"))?
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.err("bad decimal character reference"))?;
                char::from_u32(code)
                    .map(String::from)
                    .ok_or_else(|| self.err("character reference out of range"))?
            }
            _ => return Err(self.err(&format!("unknown entity &{name};"))),
        };
        self.pos = end + 1;
        Ok(resolved)
    }
}

/// Appends the UTF-8 character starting at `pos` to `out`, advancing `pos`.
fn push_byte(out: &mut String, bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), XmlError> {
    if b < 0x80 {
        out.push(b as char);
        *pos += 1;
        return Ok(());
    }
    // Multi-byte UTF-8: decode the full character.
    let len = match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    };
    let end = (*pos + len).min(bytes.len());
    match std::str::from_utf8(&bytes[*pos..end]) {
        Ok(s) => {
            out.push_str(s);
            *pos = end;
            Ok(())
        }
        Err(_) => Err(XmlError {
            offset: *pos,
            line: 0,
            column: 0,
            message: "invalid UTF-8".into(),
        }),
    }
}

fn flush_text(text: &mut String, element: &mut XmlElement) {
    if !text.is_empty() {
        element.children.push(XmlNode::Text(std::mem::take(text)));
    }
}

fn find_from(bytes: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| from + i)
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || matches!(b, b'.' | b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let doc = parse_document("<a><b><c/></b><b/></a>").expect("parse");
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.children.len(), 2);
        let b0 = doc.root.child_elements().next().unwrap();
        assert_eq!(b0.child_elements().next().unwrap().name, "c");
    }

    #[test]
    fn parses_attributes_both_quotes() {
        let doc = parse_document(r#"<x a="1" b='two' c="a&amp;b"/>"#).expect("parse");
        assert_eq!(doc.root.attr("a"), Some("1"));
        assert_eq!(doc.root.attr("b"), Some("two"));
        assert_eq!(doc.root.attr("c"), Some("a&b"));
        assert_eq!(doc.root.attr("missing"), None);
    }

    #[test]
    fn resolves_entities_and_char_refs() {
        let doc =
            parse_document("<t>&lt;tag&gt; &amp; &quot;q&quot; &#65;&#x42; &apos;</t>").unwrap();
        assert_eq!(doc.root.text(), "<tag> & \"q\" AB '");
    }

    #[test]
    fn cdata_and_comments_and_pis() {
        let doc =
            parse_document("<t><!-- note --><![CDATA[<raw> & stuff]]><?pi data?>tail</t>").unwrap();
        assert_eq!(doc.root.text(), "<raw> & stufftail");
        // Adjacent character data (CDATA + "tail") coalesces into one node.
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn doctype_with_internal_subset() {
        let input = r#"<?xml version="1.0"?>
<!DOCTYPE po [
  <!ELEMENT po (item*)>
  <!ELEMENT item (#PCDATA)>
]>
<po><item>x</item></po>"#;
        let doc = parse_document(input).expect("parse");
        assert_eq!(doc.doctype_name.as_deref(), Some("po"));
        let dtd = doc.internal_dtd.expect("internal subset");
        assert!(dtd.contains("<!ELEMENT po (item*)>"));
        assert_eq!(doc.root.name, "po");
    }

    #[test]
    fn whitespace_text_nodes_are_preserved() {
        let doc = parse_document("<a>\n  <b/>\n</a>").expect("parse");
        assert_eq!(doc.root.children.len(), 3);
        assert!(matches!(&doc.root.children[0], XmlNode::Text(t) if t == "\n  "));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "<a>",
            "<a></b>",
            "<a attr></a>",
            "<a 'v'/>",
            "<a/><b/>",
            "text only",
            "<a>&unknown;</a>",
            "<a b='1' b='2'/>",
            "<a><![CDATA[x</a>",
            "",
        ] {
            assert!(parse_document(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_positions_are_sensible() {
        let err = parse_document("<a>\n<b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("mismatched end tag"));
    }

    #[test]
    fn unicode_content() {
        let doc = parse_document("<t>héllo — 世界</t>").expect("parse");
        assert_eq!(doc.root.text(), "héllo — 世界");
    }

    #[test]
    fn xml_decl_and_leading_misc() {
        let doc =
            parse_document("<?xml version=\"1.0\" encoding=\"UTF-8\"?><!-- c --><r/>").unwrap();
        assert_eq!(doc.root.name, "r");
    }
}
