#![warn(missing_docs)]
#![deny(unsafe_code)]

//! A from-scratch XML 1.0 parser and serializer.
//!
//! Built as a substrate for the schema-cast revalidation system (the paper's
//! experiments parse purchase-order documents and XSD schema files): no
//! external XML crates are used anywhere in the workspace.
//!
//! * [`parse_document`] — elements, attributes, text, CDATA, comments, PIs,
//!   entity/character references, `DOCTYPE` internal-subset capture.
//! * [`serialize`] — compact and pretty serialization with escaping.

pub mod error;
pub mod parser;
pub mod pull;
pub mod serialize;

pub use error::XmlError;
pub use parser::{parse_document, XmlDocument, XmlElement, XmlNode};
pub use pull::{NameId, PullEvent, PullParser, SubtreeSkip};
pub use serialize::{escape_attr, escape_text, to_pretty_string, to_string};
