#![warn(missing_docs)]
#![deny(unsafe_code)]

//! A from-scratch XML 1.0 parser and serializer.
//!
//! Built as a substrate for the schema-cast revalidation system (the paper's
//! experiments parse purchase-order documents and XSD schema files): no
//! external XML crates are used anywhere in the workspace.
//!
//! * [`parse_document`] — elements, attributes, text, CDATA, comments, PIs,
//!   entity/character references, `DOCTYPE` internal-subset capture.
//! * [`serialize`] — compact and pretty serialization with escaping.
//! * [`pull`] — the tape-fed streaming parser, running off the stage-1
//!   structural index in [`index`] (built with the SWAR kernels in
//!   [`scan`]); [`scalar`] keeps the per-byte reference lexer it replaced.

pub mod error;
pub mod index;
pub mod parser;
pub mod pull;
pub mod scalar;
pub mod scan;
pub mod serialize;

pub use error::XmlError;
pub use index::StructuralIndex;
pub use parser::{parse_document, XmlDocument, XmlElement, XmlNode};
pub use pull::{NameId, PullEvent, PullParser, SubtreeSkip};
pub use scalar::ScalarParser;
pub use serialize::{escape_attr, escape_text, to_pretty_string, to_string};
