//! The scalar reference lexer: the per-byte pull parser the tape-fed
//! [`crate::PullParser`] replaced on the hot path.
//!
//! Kept as an executable specification. [`ScalarParser`] lexes directly off
//! the byte stream with `starts_with` dispatch and per-byte scans — no
//! structural index — and the differential property suite
//! (`tests/tape_props.rs`, `tests/fuzz_smoke.rs`) holds the production
//! parser to event-for-event and error-for-error equivalence with it on
//! both well-formed and adversarially malformed input. Its per-byte scans
//! do go through the shared chunked [`crate::scan`] kernels, so the two
//! implementations also share one "find the next interesting byte"
//! implementation.
//!
//! It is *not* used by the validation paths; new consumers want
//! [`crate::PullParser`].

use crate::error::XmlError;
use crate::pull::{
    err_at, is_name_char, is_name_start, Attrs, NameId, NameTable, PullEvent, SubtreeSkip,
};
use crate::scan;
use std::borrow::Cow;

/// A streaming parser over an in-memory UTF-8 document, lexing scalar-wise
/// (no structural index). Same event stream and error behavior as
/// [`crate::PullParser`] — property-enforced.
#[derive(Clone)]
pub struct ScalarParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Byte offset of the markup (or text run) of the last event returned.
    event_start: usize,
    stack: Vec<NameId>,
    names: NameTable<'a>,
    state: State,
    /// Queued event (self-closing tags emit two events).
    queued: Option<PullEvent<'a>>,
    /// Whether the document element has already been seen.
    seen_root: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Prolog,
    InDocument,
    Done,
    Failed,
}

impl<'a> ScalarParser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> ScalarParser<'a> {
        ScalarParser {
            text: input,
            bytes: input.as_bytes(),
            pos: 0,
            event_start: 0,
            stack: Vec::new(),
            names: NameTable::default(),
            state: State::Prolog,
            queued: None,
            seen_root: false,
        }
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Byte offset where the most recently returned event's markup (or text
    /// run) began.
    pub fn last_event_offset(&self) -> usize {
        self.event_start
    }

    /// Number of distinct element names interned so far.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// The string for an interned name id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this parser.
    pub fn name_of(&self, id: NameId) -> &'a str {
        self.names.get(id)
    }

    fn err(&self, message: &str) -> XmlError {
        self.err_at(self.pos, message)
    }

    fn err_at(&self, offset: usize, message: &str) -> XmlError {
        err_at(self.bytes, offset, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn find_from(&self, from: usize, needle: &[u8]) -> Option<usize> {
        scan::find_seq(self.bytes, from, needle)
    }

    /// Position of the next `byte` at or after `from`.
    fn find_byte(&self, from: usize, byte: u8) -> Option<usize> {
        scan::find_byte(self.bytes, from, byte)
    }

    /// Lexes a name as a borrowed slice (boundaries are ASCII delimiters,
    /// so slicing the `str` is always at char boundaries).
    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        if !self.peek().is_some_and(is_name_start) {
            return Err(self.err("expected a name"));
        }
        while self.peek().is_some_and(is_name_char) {
            self.pos += 1;
        }
        Ok(&self.text[start..self.pos])
    }

    /// Builds the owned expansion of `text[start..end]`, which is known to
    /// contain at least one `&` (shared kernel; errors carry the exact
    /// offsets the old inline lexer reported).
    fn expand_entities(&mut self, start: usize, end: usize) -> Result<String, XmlError> {
        crate::pull::expand_entities_span(self.text, start, end)
            .map_err(|(o, m)| self.err_at(o, &m))
    }

    fn attribute_value(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        // First pass: find the closing quote, rejecting '<' and noting '&'.
        let mut has_entity = false;
        loop {
            match self.peek() {
                Some(q) if q == quote => break,
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(b'&') => {
                    has_entity = true;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        let end = self.pos;
        let value = if has_entity {
            let expanded = self.expand_entities(start, end)?;
            Cow::Owned(expanded)
        } else {
            Cow::Borrowed(&self.text[start..end])
        };
        self.pos = end + 1; // past the closing quote
        Ok(value)
    }

    /// Lexes the character-data run starting at `pos` (ends at `<` or EOF).
    fn text_run(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let start = self.pos;
        let mut has_entity = false;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            if b == b'&' {
                has_entity = true;
            }
            self.pos += 1;
        }
        let end = self.pos;
        if !has_entity {
            return Ok(Cow::Borrowed(&self.text[start..end]));
        }
        let expanded = self.expand_entities(start, end)?;
        self.pos = end;
        Ok(Cow::Owned(expanded))
    }

    fn prolog_event(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                let end = self
                    .find_from(self.pos + 2, b"?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.pos = end + 2;
            } else if self.starts_with("<!--") {
                let end = self
                    .find_from(self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.starts_with("<!DOCTYPE") {
                self.event_start = self.pos;
                self.pos += "<!DOCTYPE".len();
                self.skip_ws();
                let name = self.name()?;
                let mut internal = None;
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'[') => {
                            self.pos += 1;
                            let start = self.pos;
                            let end = self
                                .find_byte(self.pos, b']')
                                .ok_or_else(|| self.err("unterminated internal DTD subset"))?;
                            internal = Some(&self.text[start..end]);
                            self.pos = end + 1;
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                        None => return Err(self.err("unterminated DOCTYPE")),
                    }
                }
                return Ok(Some(PullEvent::Doctype { name, internal }));
            } else {
                self.state = State::InDocument;
                return Ok(None);
            }
        }
    }

    fn document_event(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        // Between events inside the document.
        if self.stack.is_empty() {
            // Only misc allowed outside the root; find the root start tag or
            // the end of input.
            self.skip_ws();
            if self.pos == self.bytes.len() {
                if !self.seen_root {
                    return Err(self.err("expected a document element"));
                }
                self.state = State::Done;
                return Ok(None);
            }
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input inside element")),
            Some(b'<') => {
                if self.starts_with("</") {
                    if self.stack.is_empty() {
                        return Err(self.err("expected an element name, found an end tag"));
                    }
                    self.event_start = self.pos;
                    self.pos += 2;
                    let close_name = self.name()?;
                    let close = self.names.intern(close_name);
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("malformed end tag"));
                    }
                    self.pos += 1;
                    match self.stack.pop() {
                        Some(open) if open == close => {}
                        Some(open) => {
                            return Err(self.err(&format!(
                                "mismatched end tag: expected </{}>, found </{close_name}>",
                                self.names.get(open)
                            )))
                        }
                        None => return Err(self.err("end tag with no open element")),
                    }
                    Ok(Some(PullEvent::End {
                        name: close_name,
                        id: close,
                    }))
                } else if self.starts_with("<!--") {
                    let end = self
                        .find_from(self.pos + 4, b"-->")
                        .ok_or_else(|| self.err("unterminated comment"))?;
                    self.pos = end + 3;
                    self.document_event()
                } else if self.starts_with("<![CDATA[") {
                    if self.stack.is_empty() {
                        return Err(self.err("character data outside the root element"));
                    }
                    self.event_start = self.pos;
                    let start = self.pos + 9;
                    let end = self
                        .find_from(start, b"]]>")
                        .ok_or_else(|| self.err("unterminated CDATA section"))?;
                    let text = &self.text[start..end];
                    self.pos = end + 3;
                    Ok(Some(PullEvent::Text(Cow::Borrowed(text))))
                } else if self.starts_with("<?") {
                    let end = self
                        .find_from(self.pos + 2, b"?>")
                        .ok_or_else(|| self.err("unterminated processing instruction"))?;
                    self.pos = end + 2;
                    self.document_event()
                } else {
                    // Start tag.
                    if self.stack.is_empty() {
                        if self.seen_root {
                            return Err(self.err("content after document element"));
                        }
                        self.seen_root = true;
                    }
                    self.event_start = self.pos;
                    self.pos += 1;
                    let name = self.name()?;
                    let id = self.names.intern(name);
                    // Validate-and-count pass mirroring the tape-fed lexer:
                    // attributes are checked in place and handed out as a
                    // lazy `Attrs` view over the validated span.
                    let attr_start = self.pos;
                    let mut count = 0usize;
                    loop {
                        self.skip_ws();
                        match self.peek() {
                            Some(b'/') => {
                                if !self.starts_with("/>") {
                                    return Err(self.err("malformed empty-element tag"));
                                }
                                let attributes = Attrs::from_span(self.text, attr_start, count);
                                self.pos += 2;
                                self.queued = Some(PullEvent::End { name, id });
                                return Ok(Some(PullEvent::Start {
                                    name,
                                    id,
                                    attributes,
                                }));
                            }
                            Some(b'>') => {
                                let attributes = Attrs::from_span(self.text, attr_start, count);
                                self.pos += 1;
                                self.stack.push(id);
                                return Ok(Some(PullEvent::Start {
                                    name,
                                    id,
                                    attributes,
                                }));
                            }
                            Some(b) if is_name_start(b) => {
                                let attr = self.name()?;
                                self.skip_ws();
                                if self.peek() != Some(b'=') {
                                    return Err(self.err("expected '=' after attribute name"));
                                }
                                self.pos += 1;
                                self.skip_ws();
                                self.attribute_value()?;
                                if Attrs::from_span(self.text, attr_start, count)
                                    .names_contain(attr)
                                {
                                    return Err(self.err(&format!("duplicate attribute {attr:?}")));
                                }
                                count += 1;
                            }
                            _ => return Err(self.err("malformed start tag")),
                        }
                    }
                }
            }
            Some(_) => {
                if self.stack.is_empty() {
                    return Err(
                        self.err("expected markup, found character data outside the root element")
                    );
                }
                self.event_start = self.pos;
                let text = self.text_run()?;
                Ok(Some(PullEvent::Text(text)))
            }
        }
    }

    fn advance(&mut self) -> Result<Option<PullEvent<'a>>, XmlError> {
        if let Some(e) = self.queued.take() {
            return Ok(Some(e));
        }
        if self.state == State::Prolog {
            if let Some(e) = self.prolog_event()? {
                self.state = State::InDocument;
                return Ok(Some(e));
            }
        }
        match self.state {
            State::Done | State::Failed => Ok(None),
            _ => {
                let e = self.document_event()?;
                if e.is_none() && self.state == State::Done && !self.stack.is_empty() {
                    return Err(self.err("unclosed elements at end of input"));
                }
                Ok(e)
            }
        }
    }

    /// Skips the content and end tag of the innermost open element by
    /// scanning raw bytes — a quote/comment/CDATA-aware rescan, in contrast
    /// to the production parser's O(1) tape hop. Always reports `hops: 0`.
    ///
    /// # Errors
    /// Returns `Err` if the input ends before the subtree closes, if an
    /// unterminated comment/CDATA/PI is encountered, or if no element is
    /// open.
    pub fn skip_subtree(&mut self) -> Result<SubtreeSkip, XmlError> {
        if let Some(queued) = self.queued.take() {
            // A self-closing element: its End event is already lexed and
            // queued; consuming it is the whole skip.
            debug_assert!(matches!(queued, PullEvent::End { .. }));
            return Ok(SubtreeSkip::default());
        }
        if self.stack.is_empty() || self.state != State::InDocument {
            return Err(self.err("skip_subtree called with no open element"));
        }
        let start = self.pos;
        let mut depth = 1usize;
        let mut events = 0usize;
        while depth > 0 {
            let lt = self.find_byte(self.pos, b'<').ok_or_else(|| {
                self.err_at(self.bytes.len(), "unexpected end of input inside element")
            })?;
            self.pos = lt;
            if self.starts_with("<!--") {
                let end = self
                    .find_from(self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.starts_with("<![CDATA[") {
                let end = self
                    .find_from(self.pos + 9, b"]]>")
                    .ok_or_else(|| self.err("unterminated CDATA section"))?;
                self.pos = end + 3;
            } else if self.starts_with("<?") {
                let end = self
                    .find_from(self.pos + 2, b"?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.pos = end + 2;
            } else if self.starts_with("</") {
                let gt = self
                    .find_byte(self.pos + 2, b'>')
                    .ok_or_else(|| self.err("malformed end tag"))?;
                self.pos = gt + 1;
                depth -= 1;
                events += 1;
            } else {
                // Start tag: scan to the closing '>' outside quotes,
                // detecting self-closing tags.
                self.pos += 1;
                let mut quote: Option<u8> = None;
                loop {
                    let Some(&b) = self.bytes.get(self.pos) else {
                        return Err(self.err("unexpected end of input inside element"));
                    };
                    self.pos += 1;
                    match quote {
                        Some(q) => {
                            if b == q {
                                quote = None;
                            }
                        }
                        None => match b {
                            b'"' | b'\'' => quote = Some(b),
                            b'>' => break,
                            _ => {}
                        },
                    }
                }
                let self_closing = self.pos >= 2 && self.bytes[self.pos - 2] == b'/';
                if self_closing {
                    events += 2;
                } else {
                    depth += 1;
                    events += 1;
                }
            }
        }
        self.stack.pop();
        Ok(SubtreeSkip {
            bytes: self.pos - start,
            events,
            hops: 0,
        })
    }
}

impl<'a> Iterator for ScalarParser<'a> {
    type Item = Result<PullEvent<'a>, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.advance() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.state = State::Failed;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reference_still_parses() {
        let ev: Vec<_> = ScalarParser::new("<a x=\"1\"><b/>hi &amp; bye</a>")
            .collect::<Result<Vec<_>, _>>()
            .expect("parses");
        assert_eq!(ev.len(), 5);
        assert!(matches!(&ev[3], PullEvent::Text(t) if t == "hi & bye"));
    }

    #[test]
    fn scalar_skip_reports_zero_hops() {
        let mut p = ScalarParser::new("<r><s><i/></s><t/></r>");
        p.next().unwrap().unwrap(); // <r>
        p.next().unwrap().unwrap(); // <s>
        let skipped = p.skip_subtree().expect("skips");
        assert_eq!(skipped.hops, 0);
        assert_eq!(skipped.events, 3);
    }
}
