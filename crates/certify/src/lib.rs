#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Independent checker for schemacast's static-analysis certificates.
//!
//! The engine's fast paths rest on static facts: `(τ, τ') ∈ R_sub` lets a
//! subtree be skipped, `(τ, τ') ∈ R_dis` rejects without looking, and the
//! product IDA's `IA`/`IR` sets cut content-model scans short. A single bug
//! in those fixpoints makes the validator silently accept invalid documents.
//! This crate turns the analyses into *certifying algorithms*: the producers
//! (`schemacast-automata`, `schemacast-core`) emit a [`CertBundle`] of
//! machine-checkable evidence, and [`check_bundle`] validates every
//! certificate in time linear in its size.
//!
//! # Independence
//!
//! The whole point of a certifying algorithm is that the checker does not
//! trust the producer, so this crate depends on **nothing** — not
//! `schemacast-automata`, not `schemacast-core`, not even the shared regex
//! crate. It re-implements the minimal machinery it needs from scratch:
//!
//! * [`RawDfa`] — a self-contained transition table with its own `step`,
//!   word runner, reachability/co-accessibility sweeps and useful-symbol
//!   computation ([`dfa`]);
//! * its own product stepping — a pair `(q_a, q_b)` is advanced by stepping
//!   the two raw tables directly, never by trusting a producer-built
//!   product table;
//! * its own witness-tree walk for the `R_nondis` least-fixpoint
//!   certificates (a well-foundedness check over bundle indices).
//!
//! # Certificate shapes
//!
//! | claim | certificate | check |
//! |---|---|---|
//! | `L(a) ⊆ L(b)` | simulation relation over pairs | closure + finality, coinductive |
//! | `(τ,τ') ∈ R_sub` | simulation + per-label child obligations | obligations cover exactly the useful symbols |
//! | `(τ,τ') ∈ R_dis` | closed invariant pair set + blocked symbols | no (final,final), closure under permitted symbols |
//! | `(τ,τ') ∉ R_dis` | witness word + child references | word accepted by both raw DFAs, references strictly decreasing |
//! | IDA `IA`/`IR` | exact safe/dead sets + rank functions | closure (soundness) and strictly decreasing ranks (completeness) |
//! | `w ∈ L(a) ∖ L(b)` | product-state trace | stepwise consistency, endpoint (final, non-final) |
//! | safety verdicts | references into the above | every consulted fact has a checked certificate |
//! | script verdicts | per-site word + ops + normalization trace | independent replay of the trace/net/provenance, net-word run, per-child `R_sub`/`R_dis` references, IA/IR early-settle replay |
//! | composed chain relation | per-hop certificate tuple | step adjacency + per-hop resolution ([`chain`]) |
//!
//! Greatest-fixpoint facts (`R_sub`, disjointness, `IA`/`IR` soundness) may
//! justify each other *circularly* — a coinductive argument — so their
//! references are unordered. Least-fixpoint facts (`R_nondis`) must be
//! well-founded: each witness references only strictly earlier bundle
//! entries, which the checker enforces.
//!
//! # Trust boundary
//!
//! The checker verifies the automata-theoretic content of every claim. What
//! it cannot see, and therefore trusts, is the *extraction*: that each
//! [`RawDfa`] faithfully mirrors the compiled content model, that the
//! recorded `symbol → (child type, child type)` maps mirror the schemas'
//! `types_τ`, and the simple-type axiom leaves (value-space subsumption /
//! disjointness, childless-element acceptance). Those are direct
//! transliterations of parsed schema data, not fixpoint outputs — the class
//! of bug certificates exist to catch lives in the fixpoints and decision
//! sets, all of which are covered. See DESIGN.md §8.

pub mod cert;
pub mod chain;
pub mod check;
pub mod dfa;

pub use cert::{
    BlockedSymbol, CertBundle, ChildLink, DfaRef, DisBody, DisCert, EarlyClaim, FreshLeaf, IdaCert,
    NondisBody, NondisCert, NondisChild, PathCert, RelabelLink, SafetyCert, ScriptCert, ScriptOp,
    ScriptProv, ScriptSiteCert, ScriptStep, SimulationCert, SiteReason, SubBody, SubCert,
    SubObligation,
};
pub use chain::{check_chain_bundle, ChainBundle, ChainCheckReport, CompCert, CompClaim, CompStep};
pub use check::{check_bundle, CertKind, CheckFailure, CheckReport};
pub use dfa::RawDfa;
