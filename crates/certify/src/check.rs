//! The certificate checker: linear-time validation of a [`CertBundle`].
//!
//! Every check here is a *local* verification — membership tests, closure
//! sweeps, word runs, rank comparisons — never a re-run of the producer's
//! fixpoint. The checker steps raw transition tables directly and treats a
//! product pair `(q_a, q_b)` as two independent steps, so a bug in the
//! producer's product construction cannot hide from it.

use std::collections::HashSet;

use crate::cert::{
    BlockedSymbol, CertBundle, DisBody, DisCert, IdaCert, NondisBody, NondisCert, PathCert,
    SafetyCert, ScriptCert, ScriptOp, ScriptProv, ScriptSiteCert, ScriptStep, SimulationCert,
    SiteReason, SubBody, SubCert, SubObligation,
};
use crate::dfa::RawDfa;

/// Which vector of the bundle a failure points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertKind {
    /// [`CertBundle::dfas`]
    Dfa,
    /// [`CertBundle::subs`]
    Sub,
    /// [`CertBundle::diss`]
    Dis,
    /// [`CertBundle::nondis`]
    Nondis,
    /// [`CertBundle::idas`]
    Ida,
    /// [`CertBundle::paths`]
    Path,
    /// [`CertBundle::safety`]
    Safety,
    /// [`CertBundle::scripts`]
    Script,
    /// [`crate::chain::ChainBundle::compositions`]
    Comp,
}

impl CertKind {
    /// Stable lowercase name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CertKind::Dfa => "dfa",
            CertKind::Sub => "sub",
            CertKind::Dis => "dis",
            CertKind::Nondis => "nondis",
            CertKind::Ida => "ida",
            CertKind::Path => "path",
            CertKind::Safety => "safety",
            CertKind::Script => "script",
            CertKind::Comp => "comp",
        }
    }
}

/// One rejected object: which vector, which index, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckFailure {
    /// The bundle vector the failing object lives in.
    pub kind: CertKind,
    /// Its index within that vector.
    pub index: usize,
    /// Human-readable reason the check failed.
    pub reason: String,
}

/// The outcome of [`check_bundle`]: how many objects were examined and
/// every failure found (the checker does not stop at the first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Objects examined (DFA tables + certificates of every kind).
    pub checked: usize,
    /// All rejections, in bundle order.
    pub failures: Vec<CheckFailure>,
}

impl CheckReport {
    /// True iff every object in the bundle passed.
    pub fn all_valid(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Per-bundle context threaded through the individual checks.
struct Ctx<'a> {
    bundle: &'a CertBundle,
    /// DFAs whose shape validation failed; certificates referencing one
    /// fail with a reference error instead of panicking.
    bad_dfas: Vec<bool>,
}

impl<'a> Ctx<'a> {
    /// Resolves a DFA reference, rejecting out-of-range and malformed ones.
    fn dfa(&self, r: u32) -> Result<&'a RawDfa, String> {
        let i = r as usize;
        match self.bundle.dfas.get(i) {
            None => Err(format!("dfa ref {r} out of range")),
            Some(_) if self.bad_dfas[i] => Err(format!("dfa ref {r} failed shape validation")),
            Some(d) => Ok(d),
        }
    }

    /// The sub certificate at `r`, if any — used to cross-check that a
    /// reference resolves to a certificate *for the claimed type pair*.
    fn sub(&self, r: u32) -> Result<&'a SubCert, String> {
        self.bundle
            .subs
            .get(r as usize)
            .ok_or_else(|| format!("sub ref {r} out of range"))
    }

    fn dis(&self, r: u32) -> Result<&'a DisCert, String> {
        self.bundle
            .diss
            .get(r as usize)
            .ok_or_else(|| format!("dis ref {r} out of range"))
    }

    fn nondis(&self, r: u32) -> Result<&'a NondisCert, String> {
        self.bundle
            .nondis
            .get(r as usize)
            .ok_or_else(|| format!("nondis ref {r} out of range"))
    }
}

/// Validates every object in the bundle. Runs in time linear in the total
/// size of the certificates (each pair set, word, and grid is swept a
/// constant number of times).
pub fn check_bundle(bundle: &CertBundle) -> CheckReport {
    let mut report = CheckReport {
        checked: bundle.object_count(),
        failures: Vec::new(),
    };
    let mut bad_dfas = vec![false; bundle.dfas.len()];
    for (i, d) in bundle.dfas.iter().enumerate() {
        if let Err(reason) = d.validate_shape() {
            bad_dfas[i] = true;
            report.failures.push(CheckFailure {
                kind: CertKind::Dfa,
                index: i,
                reason,
            });
        }
    }
    let ctx = Ctx { bundle, bad_dfas };
    for (i, c) in bundle.subs.iter().enumerate() {
        if let Err(reason) = check_sub(&ctx, c) {
            report.failures.push(CheckFailure {
                kind: CertKind::Sub,
                index: i,
                reason,
            });
        }
    }
    for (i, c) in bundle.diss.iter().enumerate() {
        if let Err(reason) = check_dis(&ctx, c) {
            report.failures.push(CheckFailure {
                kind: CertKind::Dis,
                index: i,
                reason,
            });
        }
    }
    for (i, c) in bundle.nondis.iter().enumerate() {
        if let Err(reason) = check_nondis(&ctx, c, i) {
            report.failures.push(CheckFailure {
                kind: CertKind::Nondis,
                index: i,
                reason,
            });
        }
    }
    for (i, c) in bundle.idas.iter().enumerate() {
        if let Err(reason) = check_ida(&ctx, c) {
            report.failures.push(CheckFailure {
                kind: CertKind::Ida,
                index: i,
                reason,
            });
        }
    }
    for (i, c) in bundle.paths.iter().enumerate() {
        if let Err(reason) = check_path(&ctx, c) {
            report.failures.push(CheckFailure {
                kind: CertKind::Path,
                index: i,
                reason,
            });
        }
    }
    for (i, c) in bundle.safety.iter().enumerate() {
        if let Err(reason) = check_safety(&ctx, c) {
            report.failures.push(CheckFailure {
                kind: CertKind::Safety,
                index: i,
                reason,
            });
        }
    }
    for (i, c) in bundle.scripts.iter().enumerate() {
        if let Err(reason) = check_script(&ctx, c) {
            report.failures.push(CheckFailure {
                kind: CertKind::Script,
                index: i,
                reason,
            });
        }
    }
    report
}

/// Core simulation check: the relation contains the start pair, never pairs
/// an `a`-final with a `b`-non-final state, and is closed under every
/// symbol up to the wider alphabet.
fn check_simulation(ctx: &Ctx<'_>, sim: &SimulationCert) -> Result<(), String> {
    let a = ctx.dfa(sim.a)?;
    let b = ctx.dfa(sim.b)?;
    let rel: HashSet<(u32, u32)> = sim.relation.iter().copied().collect();
    if !rel.contains(&(a.start, b.start)) {
        return Err("simulation relation misses the start pair".into());
    }
    let width = a.alphabet_len.max(b.alphabet_len);
    for &(qa, qb) in &sim.relation {
        if qa as usize >= a.state_count() || qb as usize >= b.state_count() {
            return Err(format!("simulation pair ({qa},{qb}) out of range"));
        }
        if a.is_final(qa) && !b.is_final(qb) {
            return Err(format!(
                "simulation pair ({qa},{qb}) pairs a final source state with a non-final target state"
            ));
        }
        for s in 0..width {
            let next = (a.step(qa, s), b.step(qb, s));
            if !rel.contains(&next) {
                return Err(format!(
                    "simulation relation not closed: ({qa},{qb}) --{s}--> ({},{}) missing",
                    next.0, next.1
                ));
            }
        }
    }
    Ok(())
}

/// Validates the obligation list of a complex `R_sub` or stability claim:
/// obligations must cover *exactly* `useful` (the recomputed useful symbols
/// of the source DFA), and each must resolve to a sub certificate for the
/// claimed child pair. Exact coverage is what makes dropping an obligation
/// a guaranteed-caught mutation.
fn check_obligations(
    ctx: &Ctx<'_>,
    obligations: &[SubObligation],
    useful: &[bool],
) -> Result<(), String> {
    let mut covered = vec![false; useful.len()];
    for ob in obligations {
        let s = ob.symbol as usize;
        if s >= useful.len() || !useful[s] {
            return Err(format!("obligation for symbol {s} which is not useful"));
        }
        if covered[s] {
            return Err(format!("duplicate obligation for symbol {s}"));
        }
        covered[s] = true;
        let child = ctx.sub(ob.child_ref)?;
        if child.source_type != ob.child_source || child.target_type != ob.child_target {
            return Err(format!(
                "obligation for symbol {s} references a sub certificate for pair ({},{}) but claims ({},{})",
                child.source_type, child.target_type, ob.child_source, ob.child_target
            ));
        }
    }
    if let Some(s) = useful.iter().enumerate().find(|&(s, &u)| u && !covered[s]) {
        return Err(format!("useful symbol {} has no obligation", s.0));
    }
    Ok(())
}

fn check_sub(ctx: &Ctx<'_>, cert: &SubCert) -> Result<(), String> {
    match &cert.body {
        SubBody::SimpleAxiom => Ok(()),
        SubBody::Complex {
            simulation,
            obligations,
        } => {
            check_simulation(ctx, simulation)?;
            let a = ctx.dfa(simulation.a)?;
            check_obligations(ctx, obligations, &a.useful_symbols())
        }
    }
}

fn check_dis(ctx: &Ctx<'_>, cert: &DisCert) -> Result<(), String> {
    match &cert.body {
        DisBody::SimpleAxiom => Ok(()),
        DisBody::Complex {
            a,
            b,
            invariant,
            blocked,
        } => {
            let da = ctx.dfa(*a)?;
            let db = ctx.dfa(*b)?;
            let width = da.alphabet_len.max(db.alphabet_len);
            let mut is_blocked = vec![false; width as usize];
            for bs in blocked {
                let s = bs.symbol() as usize;
                if s >= width as usize {
                    return Err(format!("blocked symbol {s} beyond alphabet width {width}"));
                }
                if is_blocked[s] {
                    return Err(format!("symbol {s} blocked twice"));
                }
                is_blocked[s] = true;
                match bs {
                    BlockedSymbol::DisjointChild {
                        child_source,
                        child_target,
                        dis_ref,
                        ..
                    } => {
                        let child = ctx.dis(*dis_ref)?;
                        if child.source_type != *child_source || child.target_type != *child_target
                        {
                            return Err(format!(
                                "blocked symbol {s} references a dis certificate for pair ({},{}) but claims ({},{})",
                                child.source_type,
                                child.target_type,
                                child_source,
                                child_target
                            ));
                        }
                    }
                    // An untyped label is absent from every valid tree on
                    // the side lacking the typing — an extraction-layer
                    // axiom (the schema builder rejects content models
                    // mentioning untyped labels).
                    BlockedSymbol::Untyped { .. } => {}
                }
            }
            let inv: HashSet<(u32, u32)> = invariant.iter().copied().collect();
            if !inv.contains(&(da.start, db.start)) {
                return Err("disjointness invariant misses the start pair".into());
            }
            for &(qa, qb) in invariant {
                if qa as usize >= da.state_count() || qb as usize >= db.state_count() {
                    return Err(format!("invariant pair ({qa},{qb}) out of range"));
                }
                if da.is_final(qa) && db.is_final(qb) {
                    return Err(format!(
                        "invariant contains a jointly final pair ({qa},{qb})"
                    ));
                }
                for s in 0..width {
                    if is_blocked[s as usize] {
                        continue;
                    }
                    let next = (da.step(qa, s), db.step(qb, s));
                    if !inv.contains(&next) {
                        return Err(format!(
                            "invariant not closed: ({qa},{qb}) --{s}--> ({},{}) missing",
                            next.0, next.1
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

fn check_nondis(ctx: &Ctx<'_>, cert: &NondisCert, own_index: usize) -> Result<(), String> {
    match &cert.body {
        NondisBody::SimpleAxiom => Ok(()),
        NondisBody::Complex {
            a,
            b,
            word,
            children,
        } => {
            let da = ctx.dfa(*a)?;
            let db = ctx.dfa(*b)?;
            if !da.accepts(word) {
                return Err("witness word rejected by the source content model".into());
            }
            if !db.accepts(word) {
                return Err("witness word rejected by the target content model".into());
            }
            if children.len() != word.len() {
                return Err(format!(
                    "witness has {} positions but {} child references",
                    word.len(),
                    children.len()
                ));
            }
            for (pos, child) in children.iter().enumerate() {
                // Well-foundedness: a least-fixpoint fact may only rest on
                // strictly earlier facts, or circular "witnesses" would
                // justify themselves.
                if child.nondis_ref as usize >= own_index {
                    return Err(format!(
                        "child at position {pos} references nondis certificate {} (not strictly earlier than {own_index})",
                        child.nondis_ref
                    ));
                }
                let referenced = ctx.nondis(child.nondis_ref)?;
                if referenced.source_type != child.child_source
                    || referenced.target_type != child.child_target
                {
                    return Err(format!(
                        "child at position {pos} references a nondis certificate for pair ({},{}) but claims ({},{})",
                        referenced.source_type,
                        referenced.target_type,
                        child.child_source,
                        child.child_target
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Checks one exact-set claim over the product grid: `member` must be
/// closed under all product steps (soundness: no member can ever reach a
/// goal pair), and every non-member must carry a rank that is zero iff the
/// pair *is* a goal, and otherwise strictly decreases along some edge
/// (completeness: the pair really reaches a goal in `rank` steps).
fn check_exact_set(
    da: &RawDfa,
    db: &RawDfa,
    nb: usize,
    member: &[bool],
    rank: &[u32],
    is_goal: &dyn Fn(u32, u32) -> bool,
    what: &str,
) -> Result<(), String> {
    let width = da.alphabet_len.max(db.alphabet_len);
    for qa in 0..da.state_count() as u32 {
        for qb in 0..db.state_count() as u32 {
            let q = qa as usize * nb + qb as usize;
            if member[q] {
                if is_goal(qa, qb) {
                    return Err(format!("{what} set contains goal pair ({qa},{qb})"));
                }
                for s in 0..width {
                    let t = da.step(qa, s) as usize * nb + db.step(qb, s) as usize;
                    if !member[t] {
                        return Err(format!(
                            "{what} set not closed: ({qa},{qb}) --{s}--> non-member"
                        ));
                    }
                }
            } else if rank[q] == 0 {
                if !is_goal(qa, qb) {
                    return Err(format!(
                        "pair ({qa},{qb}) outside the {what} set has rank 0 but is not a goal pair"
                    ));
                }
            } else {
                let r = rank[q];
                let descends = (0..width).any(|s| {
                    let t = da.step(qa, s) as usize * nb + db.step(qb, s) as usize;
                    !member[t] && rank[t] < r
                });
                if !descends {
                    return Err(format!(
                        "pair ({qa},{qb}) outside the {what} set has rank {r} but no successor with a smaller rank"
                    ));
                }
            }
        }
    }
    Ok(())
}

fn check_ida(ctx: &Ctx<'_>, cert: &IdaCert) -> Result<(), String> {
    let da = ctx.dfa(cert.a)?;
    let db = ctx.dfa(cert.b)?;
    let na = da.state_count();
    let nb = db.state_count();
    let n = na * nb;
    for (name, v) in [
        ("safe", cert.safe.len()),
        ("safe_rank", cert.safe_rank.len()),
        ("dead", cert.dead.len()),
        ("dead_rank", cert.dead_rank.len()),
        ("ia", cert.ia.len()),
        ("ir", cert.ir.len()),
    ] {
        if v != n {
            return Err(format!("{name} vector has {v} entries, grid has {n}"));
        }
    }
    // Bad pair: the source accepts here but the target does not — reaching
    // one means a source-valid children word the target rejects.
    check_exact_set(
        da,
        db,
        nb,
        &cert.safe,
        &cert.safe_rank,
        &|qa, qb| da.is_final(qa) && !db.is_final(qb),
        "safe",
    )?;
    // Final pair: both accept — being unable to reach one means no word
    // completes on both sides, so the target run can never succeed either.
    check_exact_set(
        da,
        db,
        nb,
        &cert.dead,
        &cert.dead_rank,
        &|qa, qb| da.is_final(qa) && db.is_final(qb),
        "dead",
    )?;
    // The published decision sets, pointwise: IA = safe ∖ dead (the
    // producer resolves the overlap in favour of immediate rejection),
    // IR = dead.
    for q in 0..n {
        if cert.ia[q] != (cert.safe[q] && !cert.dead[q]) {
            return Err(format!(
                "published IA disagrees with safe/dead sets at grid index {q}"
            ));
        }
        if cert.ir[q] != cert.dead[q] {
            return Err(format!(
                "published IR disagrees with dead set at grid index {q}"
            ));
        }
    }
    Ok(())
}

fn check_path(ctx: &Ctx<'_>, cert: &PathCert) -> Result<(), String> {
    let da = ctx.dfa(cert.a)?;
    let db = ctx.dfa(cert.b)?;
    if cert.states.len() != cert.word.len() + 1 {
        return Err(format!(
            "trace has {} states for a {}-symbol word",
            cert.states.len(),
            cert.word.len()
        ));
    }
    if cert.states[0] != (da.start, db.start) {
        return Err("trace does not begin at the start pair".into());
    }
    for (i, &s) in cert.word.iter().enumerate() {
        let (qa, qb) = cert.states[i];
        if qa as usize >= da.state_count() || qb as usize >= db.state_count() {
            return Err(format!("trace state ({qa},{qb}) out of range"));
        }
        let next = (da.step(qa, s), db.step(qb, s));
        if cert.states[i + 1] != next {
            return Err(format!(
                "trace step {i} inconsistent: ({qa},{qb}) --{s}--> ({},{}) but trace says ({},{})",
                next.0,
                next.1,
                cert.states[i + 1].0,
                cert.states[i + 1].1
            ));
        }
    }
    let &(qa, qb) = cert.states.last().expect("non-empty by length check");
    if qa as usize >= da.state_count() || qb as usize >= db.state_count() {
        return Err(format!("trace state ({qa},{qb}) out of range"));
    }
    if !da.is_final(qa) {
        return Err("witness word is not accepted by the source content model".into());
    }
    if db.is_final(qb) {
        return Err("witness word is accepted by the target content model too".into());
    }
    Ok(())
}

fn check_safety(ctx: &Ctx<'_>, cert: &SafetyCert) -> Result<(), String> {
    let ida = ctx
        .bundle
        .idas
        .get(cert.ida_ref as usize)
        .ok_or_else(|| format!("ida ref {} out of range", cert.ida_ref))?;
    if ida.source_type != cert.source_type || ida.target_type != cert.target_type {
        return Err(format!(
            "ida ref {} certifies pair ({},{}) but this safety certificate is for ({},{})",
            cert.ida_ref, ida.source_type, ida.target_type, cert.source_type, cert.target_type
        ));
    }
    if let Some(stable) = &cert.stable {
        let a = ctx.dfa(ida.a)?;
        check_obligations(ctx, stable, &a.useful_symbols())
            .map_err(|e| format!("child_sub_stable claim: {e}"))?;
    }
    for (i, link) in cert.sub_links.iter().enumerate() {
        let sub = ctx
            .sub(link.cert_ref)
            .map_err(|e| format!("relabel sub link {i}: {e}"))?;
        if sub.source_type != link.child_source || sub.target_type != link.child_target {
            return Err(format!(
                "relabel sub link {i} references a sub certificate for pair ({},{}) but claims ({},{})",
                sub.source_type, sub.target_type, link.child_source, link.child_target
            ));
        }
    }
    for (i, link) in cert.dis_links.iter().enumerate() {
        let dis = ctx
            .dis(link.cert_ref)
            .map_err(|e| format!("relabel dis link {i}: {e}"))?;
        if dis.source_type != link.child_source || dis.target_type != link.child_target {
            return Err(format!(
                "relabel dis link {i} references a dis certificate for pair ({},{}) but claims ({},{})",
                dis.source_type, dis.target_type, link.child_source, link.child_target
            ));
        }
    }
    Ok(())
}

/// One entry of the checker's own replay view (mirrors the producer's, but
/// derived independently from the certificate's word and ops).
#[derive(Clone, Copy)]
struct ReplayEntry {
    sym: u32,
    origin: Option<u32>,
    deleted: bool,
}

/// The checker's independently derived normalization trace, net word, and
/// provenance for one site.
type SiteReplay = (Vec<ScriptStep>, Vec<u32>, Vec<ScriptProv>);

/// Replays `ops` over `word`, deriving the normalization trace, net word,
/// and provenance from nothing but the certificate's trusted inputs.
fn replay_site(word: &[u32], ops: &[ScriptOp]) -> Result<SiteReplay, String> {
    let mut view: Vec<ReplayEntry> = word
        .iter()
        .enumerate()
        .map(|(i, &sym)| ReplayEntry {
            sym,
            origin: Some(i as u32),
            deleted: false,
        })
        .collect();
    let mut trace = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let step = match *op {
            ScriptOp::Insert { pos, sym } => {
                if pos as usize > view.len() {
                    return Err(format!("op {i}: insert position {pos} out of range"));
                }
                view.insert(
                    pos as usize,
                    ReplayEntry {
                        sym,
                        origin: None,
                        deleted: false,
                    },
                );
                ScriptStep::InsertFresh { pos, sym }
            }
            ScriptOp::Delete { pos } => {
                let e = *view
                    .get(pos as usize)
                    .ok_or_else(|| format!("op {i}: delete position {pos} out of range"))?;
                if e.deleted {
                    return Err(format!("op {i}: delete of an already-deleted entry"));
                }
                match e.origin {
                    None => {
                        view.remove(pos as usize);
                        ScriptStep::CancelInserted { pos, sym: e.sym }
                    }
                    Some(origin) => {
                        view[pos as usize].deleted = true;
                        ScriptStep::DeleteOriginal { pos, origin }
                    }
                }
            }
            ScriptOp::Relabel { pos, sym } => {
                let e = *view
                    .get(pos as usize)
                    .ok_or_else(|| format!("op {i}: relabel position {pos} out of range"))?;
                if e.deleted {
                    return Err(format!("op {i}: relabel of a deleted entry"));
                }
                view[pos as usize].sym = sym;
                match e.origin {
                    None => ScriptStep::OverwriteInserted {
                        pos,
                        from: e.sym,
                        to: sym,
                    },
                    Some(origin) if sym == word[origin as usize] => {
                        ScriptStep::RenameBack { pos, origin, sym }
                    }
                    Some(origin) => ScriptStep::RenameOriginal {
                        pos,
                        origin,
                        from: e.sym,
                        to: sym,
                    },
                }
            }
        };
        trace.push(step);
    }
    let mut net = Vec::new();
    let mut prov = Vec::new();
    for e in &view {
        if e.deleted {
            continue;
        }
        net.push(e.sym);
        prov.push(match e.origin {
            None => ScriptProv::Fresh,
            Some(o) if e.sym == word[o as usize] => ScriptProv::Kept { origin: o },
            Some(o) => ScriptProv::Renamed { origin: o },
        });
    }
    Ok((trace, net, prov))
}

/// Checks one site of a script certificate: replay, verdict evidence, and
/// the optional early-settle claim.
fn check_script_site(ctx: &Ctx<'_>, site: &ScriptSiteCert) -> Result<(), String> {
    let a = ctx.dfa(site.a)?;
    let b = ctx.dfa(site.b)?;
    if !a.accepts(&site.word) {
        return Err("original word is not accepted by the source DFA".into());
    }
    let (trace, net, prov) = replay_site(&site.word, &site.ops)?;
    if trace != site.trace {
        return Err("claimed normalization trace disagrees with the replay".into());
    }
    if net != site.net {
        return Err("claimed net word disagrees with the replay".into());
    }
    if prov != site.prov {
        return Err("claimed provenance disagrees with the replay".into());
    }

    if site.verdict {
        if site.reject.is_some() {
            return Err("accepted site carries a reject reason".into());
        }
        if !b.accepts(&net) {
            return Err("accepted site's net word is rejected by the target DFA".into());
        }
        // Exact child coverage: every fresh position one leaf axiom, every
        // kept/renamed position one R_sub link, nothing extra.
        let mut fresh_seen = vec![false; net.len()];
        for (i, leaf) in site.fresh_leaves.iter().enumerate() {
            let p = leaf.pos as usize;
            if p >= net.len() || prov[p] != ScriptProv::Fresh {
                return Err(format!("fresh leaf {i} does not sit on a fresh position"));
            }
            if fresh_seen[p] {
                return Err(format!("fresh leaf {i} duplicates position {p}"));
            }
            fresh_seen[p] = true;
        }
        let mut kept_seen = vec![false; net.len()];
        for (i, link) in site.kept_links.iter().enumerate() {
            let p = link.pos as usize;
            if p >= net.len()
                || !matches!(
                    prov[p],
                    ScriptProv::Kept { .. } | ScriptProv::Renamed { .. }
                )
            {
                return Err(format!(
                    "child link {i} does not sit on a kept/renamed position"
                ));
            }
            if kept_seen[p] {
                return Err(format!("child link {i} duplicates position {p}"));
            }
            kept_seen[p] = true;
            let sub = ctx
                .sub(link.sub_ref)
                .map_err(|e| format!("child link {i}: {e}"))?;
            if sub.source_type != link.child_source || sub.target_type != link.child_target {
                return Err(format!(
                    "child link {i} references a sub certificate for pair ({},{}) but claims ({},{})",
                    sub.source_type, sub.target_type, link.child_source, link.child_target
                ));
            }
        }
        for (p, pv) in prov.iter().enumerate() {
            let covered = match pv {
                ScriptProv::Fresh => fresh_seen[p],
                ScriptProv::Kept { .. } | ScriptProv::Renamed { .. } => kept_seen[p],
            };
            if !covered {
                return Err(format!("net position {p} has no child evidence"));
            }
        }
    } else {
        if !site.kept_links.is_empty() || !site.fresh_leaves.is_empty() {
            return Err("rejected site carries accept-side child evidence".into());
        }
        match site.reject {
            None => return Err("rejected site carries no reason".into()),
            Some(SiteReason::Membership) => {
                if b.accepts(&net) {
                    return Err(
                        "membership rejection, but the target DFA accepts the net word".into(),
                    );
                }
            }
            Some(SiteReason::FreshInvalid { pos, .. }) => {
                let p = pos as usize;
                if p >= net.len() || prov[p] != ScriptProv::Fresh {
                    return Err("fresh-invalid rejection does not sit on a fresh position".into());
                }
            }
            Some(SiteReason::DisjointChild {
                pos,
                child_source,
                child_target,
                dis_ref,
            }) => {
                let p = pos as usize;
                if p >= net.len()
                    || !matches!(
                        prov[p],
                        ScriptProv::Kept { .. } | ScriptProv::Renamed { .. }
                    )
                {
                    return Err(
                        "disjoint-child rejection does not sit on a kept/renamed position".into(),
                    );
                }
                let dis = ctx
                    .dis(dis_ref)
                    .map_err(|e| format!("disjoint-child rejection: {e}"))?;
                if dis.source_type != child_source || dis.target_type != child_target {
                    return Err(format!(
                        "disjoint-child rejection references a dis certificate for pair ({},{}) but claims ({},{})",
                        dis.source_type, dis.target_type, child_source, child_target
                    ));
                }
            }
        }
    }

    if let Some(early) = &site.early {
        let ida = ctx
            .bundle
            .idas
            .get(early.ida_ref as usize)
            .ok_or_else(|| format!("early claim: ida ref {} out of range", early.ida_ref))?;
        if ida.source_type != site.source_type || ida.target_type != site.target_type {
            return Err(format!(
                "early claim: ida ref {} certifies pair ({},{}) but this site is for ({},{})",
                early.ida_ref, ida.source_type, ida.target_type, site.source_type, site.target_type
            ));
        }
        if ida.a != site.a || ida.b != site.b {
            return Err("early claim: ida certificate references different DFAs".into());
        }
        let oc = early.orig_consumed as usize;
        let nc = early.net_consumed as usize;
        if oc > site.word.len() || nc > net.len() {
            return Err("early claim: cut out of range".into());
        }
        // The decision is only sound if everything past the cut is the
        // untouched identity suffix: net = word there, position by
        // position, so the source run's guarantee transfers to the target.
        if net.len() - nc != site.word.len() - oc {
            return Err("early claim: suffix lengths disagree".into());
        }
        for (k, pv) in prov[nc..].iter().enumerate() {
            match *pv {
                ScriptProv::Kept { origin } if origin as usize == oc + k => {}
                _ => return Err("early claim: suffix is not the untouched identity".into()),
            }
        }
        let mut qa = a.start;
        for &s in &site.word[..oc] {
            qa = a.step(qa, s);
        }
        let mut qb = b.start;
        for &s in &net[..nc] {
            qb = b.step(qb, s);
        }
        if qa != early.pair_a || qb != early.pair_b {
            return Err("early claim: replayed states disagree with the claimed pair".into());
        }
        let grid = a.state_count() * b.state_count();
        let idx = qa as usize * b.state_count() + qb as usize;
        if ida.ia.len() != grid || ida.ir.len() != grid || idx >= grid {
            return Err("early claim: decision grid shape mismatch".into());
        }
        if early.ia {
            if !ida.ia[idx] {
                return Err("early claim: pair is not in the certified IA set".into());
            }
            if !site.verdict {
                return Err("early claim: IA pair on a rejected site".into());
            }
        } else {
            if !ida.ir[idx] {
                return Err("early claim: pair is not in the certified IR set".into());
            }
            if site.verdict {
                return Err("early claim: IR pair on an accepted site".into());
            }
        }
    }
    Ok(())
}

/// Checks a whole-script certificate: each site, then the folded verdict.
fn check_script(ctx: &Ctx<'_>, cert: &ScriptCert) -> Result<(), String> {
    for (i, site) in cert.sites.iter().enumerate() {
        check_script_site(ctx, site).map_err(|e| format!("site {i}: {e}"))?;
    }
    let all_ok = cert.sites.iter().all(|s| s.verdict);
    if cert.accepted && !all_ok {
        return Err("script claims acceptance but a site is rejected".into());
    }
    if !cert.accepted && all_ok {
        return Err("script claims rejection but every site is accepted".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{NondisChild, RelabelLink, SubBody};

    /// `L = {ab}` over Σ = {a=0, b=1}.
    fn ab_dfa() -> RawDfa {
        RawDfa {
            alphabet_len: 2,
            start: 0,
            trans: vec![1, 3, 3, 2, 3, 3, 3, 3],
            finals: vec![false, false, true, false],
            sink: 3,
        }
    }

    /// `L = a·b·b*` over the same alphabet — a strict superset of `{ab}`.
    fn abb_star_dfa() -> RawDfa {
        RawDfa {
            alphabet_len: 2,
            start: 0,
            trans: vec![1, 3, 3, 2, 3, 2, 3, 3],
            finals: vec![false, false, true, false],
            sink: 3,
        }
    }

    /// `L = {ba}` — disjoint from `{ab}`.
    fn ba_dfa() -> RawDfa {
        RawDfa {
            alphabet_len: 2,
            start: 0,
            trans: vec![3, 1, 2, 3, 3, 3, 3, 3],
            finals: vec![false, false, true, false],
            sink: 3,
        }
    }

    /// The reachable pair set of `{ab} ⊆ a·b·b*`.
    fn ab_in_abbstar_sim() -> SimulationCert {
        SimulationCert {
            a: 0,
            b: 1,
            relation: vec![(0, 0), (1, 1), (2, 2), (3, 3), (3, 2)],
        }
    }

    fn two_dfa_bundle() -> CertBundle {
        CertBundle {
            dfas: vec![ab_dfa(), abb_star_dfa()],
            ..CertBundle::default()
        }
    }

    fn fail_reason(bundle: &CertBundle) -> String {
        let report = check_bundle(bundle);
        assert!(!report.all_valid(), "expected a failure");
        report.failures[0].reason.clone()
    }

    #[test]
    fn valid_sub_cert_passes() {
        let mut bundle = two_dfa_bundle();
        bundle.subs.push(SubCert {
            source_type: 7,
            target_type: 9,
            body: SubBody::Complex {
                simulation: ab_in_abbstar_sim(),
                obligations: vec![
                    SubObligation {
                        symbol: 0,
                        child_source: 1,
                        child_target: 1,
                        child_ref: 1,
                    },
                    SubObligation {
                        symbol: 1,
                        child_source: 2,
                        child_target: 2,
                        child_ref: 2,
                    },
                ],
            },
        });
        bundle.subs.push(SubCert {
            source_type: 1,
            target_type: 1,
            body: SubBody::SimpleAxiom,
        });
        bundle.subs.push(SubCert {
            source_type: 2,
            target_type: 2,
            body: SubBody::SimpleAxiom,
        });
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);
        assert_eq!(report.checked, 5);
    }

    #[test]
    fn sub_cert_failures() {
        let base = |body: SubBody| {
            let mut bundle = two_dfa_bundle();
            bundle.subs.push(SubCert {
                source_type: 0,
                target_type: 0,
                body,
            });
            bundle
        };
        // Wrong direction: a·b·b* ⊄ {ab} — the pair (2,2) steps on b to
        // (2,3), pairing final with non-final (or missing from relation).
        let mut sim = ab_in_abbstar_sim();
        sim.a = 1;
        sim.b = 0;
        let bundle = base(SubBody::Complex {
            simulation: sim,
            obligations: vec![],
        });
        assert!(!check_bundle(&bundle).all_valid());

        // Dropping any relation pair breaks start membership or closure.
        for drop in 0..5 {
            let mut sim = ab_in_abbstar_sim();
            sim.relation.remove(drop);
            let bundle = base(SubBody::Complex {
                simulation: sim,
                obligations: vec![],
            });
            let reason = fail_reason(&bundle);
            assert!(
                reason.contains("start pair") || reason.contains("not closed"),
                "{reason}"
            );
        }

        // Missing obligation for a useful symbol.
        let bundle = base(SubBody::Complex {
            simulation: ab_in_abbstar_sim(),
            obligations: vec![],
        });
        assert!(fail_reason(&bundle).contains("no obligation"));

        // Obligation whose child_ref points at the wrong pair.
        let mut bundle = base(SubBody::Complex {
            simulation: ab_in_abbstar_sim(),
            obligations: vec![
                SubObligation {
                    symbol: 0,
                    child_source: 5,
                    child_target: 6,
                    child_ref: 1,
                },
                SubObligation {
                    symbol: 1,
                    child_source: 5,
                    child_target: 6,
                    child_ref: 1,
                },
            ],
        });
        bundle.subs.push(SubCert {
            source_type: 5,
            target_type: 7, // mismatch with claimed (5,6)
            body: SubBody::SimpleAxiom,
        });
        assert!(fail_reason(&bundle).contains("but claims"));

        // Obligation child_ref out of range.
        let bundle = base(SubBody::Complex {
            simulation: ab_in_abbstar_sim(),
            obligations: vec![
                SubObligation {
                    symbol: 0,
                    child_source: 0,
                    child_target: 0,
                    child_ref: 99,
                },
                SubObligation {
                    symbol: 1,
                    child_source: 0,
                    child_target: 0,
                    child_ref: 99,
                },
            ],
        });
        assert!(fail_reason(&bundle).contains("out of range"));

        // Obligation for a non-useful symbol.
        let mut bundle = two_dfa_bundle();
        bundle.subs.push(SubCert {
            source_type: 0,
            target_type: 0,
            body: SubBody::Complex {
                simulation: ab_in_abbstar_sim(),
                obligations: vec![
                    SubObligation {
                        symbol: 0,
                        child_source: 0,
                        child_target: 0,
                        child_ref: 1,
                    },
                    SubObligation {
                        symbol: 1,
                        child_source: 0,
                        child_target: 0,
                        child_ref: 1,
                    },
                    SubObligation {
                        symbol: 5,
                        child_source: 0,
                        child_target: 0,
                        child_ref: 1,
                    },
                ],
            },
        });
        bundle.subs.push(SubCert {
            source_type: 0,
            target_type: 0,
            body: SubBody::SimpleAxiom,
        });
        assert!(fail_reason(&bundle).contains("not useful"));
    }

    #[test]
    fn valid_dis_cert_passes() {
        // {ab} vs {ba}: reachable pairs never jointly final.
        let mut bundle = CertBundle {
            dfas: vec![ab_dfa(), ba_dfa()],
            ..CertBundle::default()
        };
        bundle.diss.push(DisCert {
            source_type: 0,
            target_type: 1,
            body: DisBody::Complex {
                a: 0,
                b: 1,
                invariant: vec![(0, 0), (1, 3), (3, 1), (3, 2), (2, 3), (3, 3)],
                blocked: vec![],
            },
        });
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);
    }

    #[test]
    fn dis_cert_failures() {
        let mk = |invariant: Vec<(u32, u32)>, blocked: Vec<BlockedSymbol>| {
            let mut bundle = CertBundle {
                dfas: vec![ab_dfa(), ba_dfa()],
                ..CertBundle::default()
            };
            bundle.diss.push(DisCert {
                source_type: 0,
                target_type: 1,
                body: DisBody::Complex {
                    a: 0,
                    b: 1,
                    invariant,
                    blocked,
                },
            });
            bundle
        };
        // Dropping any invariant pair breaks start membership or closure.
        let full = vec![(0, 0), (1, 3), (3, 1), (3, 2), (2, 3), (3, 3)];
        for drop in 0..full.len() {
            let mut inv = full.clone();
            inv.remove(drop);
            let reason = fail_reason(&mk(inv, vec![]));
            assert!(
                reason.contains("start pair") || reason.contains("not closed"),
                "{reason}"
            );
        }
        // Claiming {ab} disjoint from itself: the invariant would need the
        // jointly final pair (2,2).
        let mut bundle = CertBundle {
            dfas: vec![ab_dfa(), ab_dfa()],
            ..CertBundle::default()
        };
        bundle.diss.push(DisCert {
            source_type: 0,
            target_type: 0,
            body: DisBody::Complex {
                a: 0,
                b: 1,
                invariant: vec![(0, 0), (1, 1), (2, 2), (3, 3)],
                blocked: vec![],
            },
        });
        assert!(fail_reason(&bundle).contains("jointly final"));

        // Blocking can exempt a symbol from closure, but the blocked
        // reference must resolve to a dis certificate for the claimed pair.
        let blocked_ok = vec![BlockedSymbol::DisjointChild {
            symbol: 0,
            child_source: 4,
            child_target: 5,
            dis_ref: 1,
        }];
        let mut bundle = mk(vec![(0, 0), (3, 1), (3, 2), (3, 3)], blocked_ok.clone());
        bundle.diss.push(DisCert {
            source_type: 4,
            target_type: 5,
            body: DisBody::SimpleAxiom,
        });
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);

        // Same but dangling reference.
        let bundle = mk(vec![(0, 0), (3, 1), (3, 2), (3, 3)], blocked_ok);
        assert!(fail_reason(&bundle).contains("out of range"));

        // Untyped block needs no reference.
        let bundle = mk(
            vec![(0, 0), (3, 1), (3, 2), (3, 3)],
            vec![BlockedSymbol::Untyped { symbol: 0 }],
        );
        assert!(check_bundle(&bundle).all_valid());

        // Blocked symbol beyond the alphabet width.
        let bundle = mk(
            vec![(0, 0), (1, 3), (3, 1), (3, 2), (2, 3), (3, 3)],
            vec![BlockedSymbol::Untyped { symbol: 9 }],
        );
        assert!(fail_reason(&bundle).contains("beyond alphabet width"));
    }

    #[test]
    fn nondis_cert_checks() {
        let mk = |word: Vec<u32>, children: Vec<NondisChild>| {
            let mut bundle = CertBundle {
                dfas: vec![ab_dfa(), abb_star_dfa()],
                ..CertBundle::default()
            };
            bundle.nondis.push(NondisCert {
                source_type: 10,
                target_type: 11,
                body: NondisBody::SimpleAxiom,
            });
            bundle.nondis.push(NondisCert {
                source_type: 12,
                target_type: 13,
                body: NondisBody::SimpleAxiom,
            });
            bundle.nondis.push(NondisCert {
                source_type: 0,
                target_type: 1,
                body: NondisBody::Complex {
                    a: 0,
                    b: 1,
                    word,
                    children,
                },
            });
            bundle
        };
        let good_children = vec![
            NondisChild {
                child_source: 10,
                child_target: 11,
                nondis_ref: 0,
            },
            NondisChild {
                child_source: 12,
                child_target: 13,
                nondis_ref: 1,
            },
        ];
        assert!(check_bundle(&mk(vec![0, 1], good_children.clone())).all_valid());

        // Word not in the intersection.
        assert!(fail_reason(&mk(vec![0, 1, 1], good_children.clone()))
            .contains("rejected by the source"));
        assert!(fail_reason(&mk(vec![1, 0], good_children.clone())).contains("rejected"));

        // Corrupted symbol out of the alphabet sinks both runs.
        assert!(fail_reason(&mk(vec![0, 9], good_children.clone())).contains("rejected"));

        // Truncated child list.
        assert!(
            fail_reason(&mk(vec![0, 1], good_children[..1].to_vec())).contains("child references")
        );

        // Forward (non-well-founded) reference.
        let mut fwd = good_children.clone();
        fwd[0].nondis_ref = 2;
        assert!(fail_reason(&mk(vec![0, 1], fwd)).contains("strictly earlier"));

        // Reference resolving to the wrong pair.
        let mut wrong = good_children;
        wrong[0].child_source = 99;
        assert!(fail_reason(&mk(vec![0, 1], wrong)).contains("but claims"));
    }

    /// Hand-computed IDA grid for a = {ab}, b = a·b·b* (na = nb = 4).
    /// Bad pairs (a-final, b-non-final): (2,0) (2,1) (2,3). Final: (2,2).
    fn ida_fixture() -> IdaCert {
        let na = 4;
        let nb = 4;
        let mut safe = vec![true; na * nb];
        let mut safe_rank = vec![0u32; na * nb];
        let mut dead = vec![true; na * nb];
        let mut dead_rank = vec![0u32; na * nb];
        let idx = |qa: usize, qb: usize| qa * nb + qb;
        // Pairs that can reach a bad pair: the bad pairs themselves
        // (rank 0); (1,0) and (1,3) step on b into a bad pair (rank 1);
        // (0,1), (0,2), (0,3) step on a into (1,3) (rank 2). (1,1) and
        // (1,2) step on b into safe (2,2); (0,0) only reaches safe pairs.
        for (qa, qb, r) in [
            (2, 0, 0),
            (2, 1, 0),
            (2, 3, 0),
            (1, 0, 1),
            (1, 3, 1),
            (0, 1, 2),
            (0, 2, 2),
            (0, 3, 2),
        ] {
            safe[idx(qa, qb)] = false;
            safe_rank[idx(qa, qb)] = r;
        }
        // Pairs that can reach the final pair (2,2): itself (rank 0);
        // (1,1) and (1,2) via b (rank 1); (0,0) via a then b (rank 2).
        // (2,2) on b goes to (3,2), from which nothing returns.
        for (qa, qb, r) in [(2, 2, 0), (1, 1, 1), (1, 2, 1), (0, 0, 2)] {
            dead[idx(qa, qb)] = false;
            dead_rank[idx(qa, qb)] = r;
        }
        let ia: Vec<bool> = (0..na * nb).map(|q| safe[q] && !dead[q]).collect();
        let ir: Vec<bool> = dead.clone();
        IdaCert {
            source_type: 0,
            target_type: 1,
            a: 0,
            b: 1,
            safe,
            safe_rank,
            dead,
            dead_rank,
            ia,
            ir,
        }
    }

    #[test]
    fn ida_cert_checks() {
        let mut bundle = two_dfa_bundle();
        bundle.idas.push(ida_fixture());
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);

        // Every single-bit flip of safe/dead/ia/ir is caught, as is any
        // rank zeroing on a non-goal state.
        let n = 16;
        for q in 0..n {
            for field in 0..4 {
                let mut bundle = two_dfa_bundle();
                let mut cert = ida_fixture();
                let v = match field {
                    0 => &mut cert.safe,
                    1 => &mut cert.dead,
                    2 => &mut cert.ia,
                    _ => &mut cert.ir,
                };
                v[q] = !v[q];
                bundle.idas.push(cert);
                assert!(
                    !check_bundle(&bundle).all_valid(),
                    "flip of field {field} at {q} accepted"
                );
            }
        }
        // Zeroing a nonzero rank is caught.
        let mut bundle = two_dfa_bundle();
        let mut cert = ida_fixture();
        cert.safe_rank[4] = 0; // (1,0) is not a bad pair
        bundle.idas.push(cert);
        assert!(fail_reason(&bundle).contains("rank 0"));

        // Wrong-length vector is caught.
        let mut bundle = two_dfa_bundle();
        let mut cert = ida_fixture();
        cert.ia.pop();
        bundle.idas.push(cert);
        assert!(fail_reason(&bundle).contains("entries"));
    }

    #[test]
    fn path_cert_checks() {
        // abb ∈ L(a·b·b*) ∖ L({ab}).
        let mk = |word: Vec<u32>, states: Vec<(u32, u32)>| {
            let mut bundle = CertBundle {
                dfas: vec![abb_star_dfa(), ab_dfa()],
                ..CertBundle::default()
            };
            bundle.paths.push(PathCert {
                source_type: 1,
                target_type: 0,
                a: 0,
                b: 1,
                word,
                states,
            });
            bundle
        };
        let good = vec![(0, 0), (1, 1), (2, 2), (2, 3)];
        assert!(check_bundle(&mk(vec![0, 1, 1], good.clone())).all_valid());

        // Flipping any trace state breaks start anchoring or stepwise
        // consistency (determinism: the successor is unique).
        for i in 0..good.len() {
            let mut states = good.clone();
            states[i].0 ^= 1;
            assert!(!check_bundle(&mk(vec![0, 1, 1], states)).all_valid());
        }
        // Length mismatch.
        assert!(fail_reason(&mk(vec![0, 1], good.clone())).contains("trace has"));
        // Endpoint not in the difference: ab is in both languages.
        assert!(fail_reason(&mk(vec![0, 1], vec![(0, 0), (1, 1), (2, 2)]))
            .contains("accepted by the target"));
        // Word not accepted by the source.
        assert!(
            fail_reason(&mk(vec![1], vec![(0, 0), (3, 3)])).contains("not accepted by the source")
        );
    }

    #[test]
    fn safety_cert_checks() {
        let mk = |cert: SafetyCert, extra_subs: Vec<SubCert>, extra_diss: Vec<DisCert>| {
            let mut bundle = two_dfa_bundle();
            bundle.idas.push(ida_fixture());
            bundle.subs = extra_subs;
            bundle.diss = extra_diss;
            bundle.safety.push(cert);
            bundle
        };
        let link = RelabelLink {
            from: 0,
            to: 1,
            child_source: 3,
            child_target: 4,
            cert_ref: 0,
        };
        let base = SafetyCert {
            source_type: 0,
            target_type: 1,
            ida_ref: 0,
            stable: None,
            sub_links: vec![link.clone()],
            dis_links: vec![],
        };
        let sub34 = SubCert {
            source_type: 3,
            target_type: 4,
            body: SubBody::SimpleAxiom,
        };
        assert!(check_bundle(&mk(base.clone(), vec![sub34.clone()], vec![])).all_valid());

        // Dangling ida reference.
        let mut c = base.clone();
        c.ida_ref = 9;
        assert!(fail_reason(&mk(c, vec![sub34.clone()], vec![])).contains("out of range"));

        // Ida certifies a different type pair.
        let mut c = base.clone();
        c.source_type = 5;
        assert!(fail_reason(&mk(c, vec![sub34.clone()], vec![])).contains("safety certificate"));

        // Sub link resolving to the wrong pair.
        let wrong = SubCert {
            source_type: 3,
            target_type: 9,
            body: SubBody::SimpleAxiom,
        };
        assert!(fail_reason(&mk(base.clone(), vec![wrong], vec![])).contains("but claims"));

        // Dis link out of range.
        let mut c = base.clone();
        c.dis_links = vec![link.clone()];
        assert!(fail_reason(&mk(c, vec![sub34.clone()], vec![])).contains("relabel dis link"));

        // Stability claim must cover the useful symbols of the source DFA
        // (both a and b are useful for {ab}).
        let mut c = base.clone();
        c.stable = Some(vec![SubObligation {
            symbol: 0,
            child_source: 3,
            child_target: 4,
            child_ref: 0,
        }]);
        assert!(fail_reason(&mk(c, vec![sub34], vec![])).contains("child_sub_stable"));
    }

    #[test]
    fn malformed_dfa_poisons_referencing_certs() {
        let mut bundle = two_dfa_bundle();
        bundle.dfas[0].finals[3] = true; // break the sink
        bundle.subs.push(SubCert {
            source_type: 0,
            target_type: 0,
            body: SubBody::Complex {
                simulation: ab_in_abbstar_sim(),
                obligations: vec![],
            },
        });
        let report = check_bundle(&bundle);
        // Both the DFA itself and the certificate referencing it fail.
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].kind, CertKind::Dfa);
        assert_eq!(report.failures[1].kind, CertKind::Sub);
        assert!(report.failures[1].reason.contains("shape validation"));
    }

    /// `ab` edited to `abb` under `{ab} → a·b·b*`: insert `b` at the end,
    /// keep both originals. Child evidence: two `R_sub` axioms + one fresh
    /// leaf.
    fn accept_script_bundle() -> CertBundle {
        let mut bundle = two_dfa_bundle();
        bundle.subs.push(SubCert {
            source_type: 1,
            target_type: 1,
            body: SubBody::SimpleAxiom,
        });
        bundle.subs.push(SubCert {
            source_type: 2,
            target_type: 2,
            body: SubBody::SimpleAxiom,
        });
        bundle.scripts.push(ScriptCert {
            accepted: true,
            sites: vec![ScriptSiteCert {
                source_type: 7,
                target_type: 9,
                a: 0,
                b: 1,
                word: vec![0, 1],
                ops: vec![ScriptOp::Insert { pos: 2, sym: 1 }],
                trace: vec![ScriptStep::InsertFresh { pos: 2, sym: 1 }],
                net: vec![0, 1, 1],
                prov: vec![
                    ScriptProv::Kept { origin: 0 },
                    ScriptProv::Kept { origin: 1 },
                    ScriptProv::Fresh,
                ],
                verdict: true,
                kept_links: vec![
                    crate::cert::ChildLink {
                        pos: 0,
                        child_source: 1,
                        child_target: 1,
                        sub_ref: 0,
                    },
                    crate::cert::ChildLink {
                        pos: 1,
                        child_source: 2,
                        child_target: 2,
                        sub_ref: 1,
                    },
                ],
                fresh_leaves: vec![crate::cert::FreshLeaf {
                    pos: 2,
                    child_target: 2,
                }],
                reject: None,
                early: None,
            }],
        });
        bundle
    }

    #[test]
    fn valid_script_accept_passes() {
        let report = check_bundle(&accept_script_bundle());
        assert!(report.all_valid(), "{:?}", report.failures);
    }

    #[test]
    fn script_replay_catches_tampered_net_and_trace() {
        let mut bundle = accept_script_bundle();
        bundle.scripts[0].sites[0].net = vec![0, 1, 0];
        assert!(fail_reason(&bundle).contains("net word disagrees"));

        let mut bundle = accept_script_bundle();
        bundle.scripts[0].sites[0].trace = vec![ScriptStep::InsertFresh { pos: 1, sym: 1 }];
        assert!(fail_reason(&bundle).contains("trace disagrees"));

        let mut bundle = accept_script_bundle();
        bundle.scripts[0].sites[0].prov[2] = ScriptProv::Kept { origin: 1 };
        assert!(fail_reason(&bundle).contains("provenance disagrees"));
    }

    #[test]
    fn script_accept_needs_full_child_coverage() {
        let mut bundle = accept_script_bundle();
        bundle.scripts[0].sites[0].fresh_leaves.clear();
        assert!(fail_reason(&bundle).contains("no child evidence"));

        let mut bundle = accept_script_bundle();
        bundle.scripts[0].sites[0].kept_links.pop();
        assert!(fail_reason(&bundle).contains("no child evidence"));

        // A link whose sub certificate certifies a different pair.
        let mut bundle = accept_script_bundle();
        bundle.scripts[0].sites[0].kept_links[0].child_source = 5;
        assert!(fail_reason(&bundle).contains("but claims"));
    }

    #[test]
    fn script_membership_rejection_is_rerun() {
        // `ab` relabelled at position 0 to `b`: net `bb`, rejected by both.
        let mut bundle = two_dfa_bundle();
        bundle.scripts.push(ScriptCert {
            accepted: false,
            sites: vec![ScriptSiteCert {
                source_type: 7,
                target_type: 9,
                a: 0,
                b: 1,
                word: vec![0, 1],
                ops: vec![ScriptOp::Relabel { pos: 0, sym: 1 }],
                trace: vec![ScriptStep::RenameOriginal {
                    pos: 0,
                    origin: 0,
                    from: 0,
                    to: 1,
                }],
                net: vec![1, 1],
                prov: vec![
                    ScriptProv::Renamed { origin: 0 },
                    ScriptProv::Kept { origin: 1 },
                ],
                verdict: false,
                kept_links: vec![],
                fresh_leaves: vec![],
                reject: Some(SiteReason::Membership),
                early: None,
            }],
        });
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);

        // Flipping the claimed verdict must not survive: the site stays
        // rejected, so the folded acceptance is a lie.
        bundle.scripts[0].accepted = true;
        assert!(fail_reason(&bundle).contains("claims acceptance"));

        // And claiming the site itself accepted fails the net-word rerun.
        bundle.scripts[0].sites[0].verdict = true;
        bundle.scripts[0].sites[0].reject = None;
        assert!(fail_reason(&bundle).contains("rejected by the target DFA"));
    }
}
