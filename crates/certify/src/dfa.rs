//! The checker's own DFA: a raw transition table and the handful of sweeps
//! the certificate checks need, implemented from scratch (no dependency on
//! the producer's automata crate).

/// A complete DFA as a raw, row-major transition table.
///
/// Semantics mirror the producer's dense DFAs so that certificates translate
/// one-to-one: symbols at or beyond `alphabet_len` step to `sink`, and the
/// sink must be absorbing and non-final — but unlike the producer, nothing
/// here is trusted: [`RawDfa::validate_shape`] re-establishes every
/// structural invariant before any certificate that references the table is
/// checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDfa {
    /// Number of symbols the table covers; columns are `0..alphabet_len`.
    pub alphabet_len: u32,
    /// The start state.
    pub start: u32,
    /// Row-major transitions: `trans[q * alphabet_len + s]`.
    pub trans: Vec<u32>,
    /// Per-state acceptance flags; `finals.len()` is the state count.
    pub finals: Vec<bool>,
    /// The absorbing, non-final dead state (validated, not trusted).
    pub sink: u32,
}

impl RawDfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.finals.len()
    }

    /// Re-establishes the structural invariants: table dimensions, targets
    /// in range, start in range, and the declared sink really absorbing and
    /// non-final.
    pub fn validate_shape(&self) -> Result<(), String> {
        let n = self.state_count();
        let w = self.alphabet_len as usize;
        if n == 0 {
            return Err("no states".into());
        }
        if self.trans.len() != n * w {
            return Err(format!(
                "transition table has {} entries, expected {} states x {} symbols",
                self.trans.len(),
                n,
                w
            ));
        }
        if let Some(&t) = self.trans.iter().find(|&&t| t as usize >= n) {
            return Err(format!("transition target {t} out of range ({n} states)"));
        }
        if self.start as usize >= n {
            return Err(format!("start state {} out of range", self.start));
        }
        let sink = self.sink as usize;
        if sink >= n {
            return Err(format!("sink state {} out of range", self.sink));
        }
        if self.finals[sink] {
            return Err("declared sink is a final state".into());
        }
        if self.trans[sink * w..(sink + 1) * w]
            .iter()
            .any(|&t| t != self.sink)
        {
            return Err("declared sink is not absorbing".into());
        }
        Ok(())
    }

    /// One step; symbols outside the table go to the sink.
    #[inline]
    pub fn step(&self, q: u32, s: u32) -> u32 {
        if s < self.alphabet_len {
            self.trans[q as usize * self.alphabet_len as usize + s as usize]
        } else {
            self.sink
        }
    }

    /// Whether `q` accepts.
    #[inline]
    pub fn is_final(&self, q: u32) -> bool {
        self.finals[q as usize]
    }

    /// Whether the word (as symbol indices) is accepted from the start.
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut q = self.start;
        for &s in word {
            q = self.step(q, s);
        }
        self.is_final(q)
    }

    /// States reachable from the start (forward sweep).
    pub fn reachable(&self) -> Vec<bool> {
        let n = self.state_count();
        let w = self.alphabet_len as usize;
        let mut seen = vec![false; n];
        let mut stack = vec![self.start as usize];
        seen[self.start as usize] = true;
        while let Some(q) = stack.pop() {
            for &t in &self.trans[q * w..(q + 1) * w] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t as usize);
                }
            }
        }
        seen
    }

    /// States from which some final state is reachable (backward sweep).
    pub fn coaccessible(&self) -> Vec<bool> {
        let n = self.state_count();
        let w = self.alphabet_len as usize;
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for q in 0..n {
            for &t in &self.trans[q * w..(q + 1) * w] {
                rev[t as usize].push(q as u32);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        for (q, &f) in self.finals.iter().enumerate() {
            if f {
                live[q] = true;
                stack.push(q as u32);
            }
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// Symbols occurring in at least one accepted word: `s` is useful iff
    /// some reachable state has an `s`-edge into a co-accessible state.
    pub fn useful_symbols(&self) -> Vec<bool> {
        let reach = self.reachable();
        let live = self.coaccessible();
        let w = self.alphabet_len as usize;
        let mut useful = vec![false; w];
        for (q, &r) in reach.iter().enumerate() {
            if !r {
                continue;
            }
            for (s, u) in useful.iter_mut().enumerate() {
                if live[self.trans[q * w + s] as usize] {
                    *u = true;
                }
            }
        }
        useful
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `L = {ab}` over Σ = {a=0, b=1}: states 0 →a→ 1 →b→ 2(final), sink 3.
    pub(crate) fn ab_dfa() -> RawDfa {
        RawDfa {
            alphabet_len: 2,
            start: 0,
            trans: vec![1, 3, 3, 2, 3, 3, 3, 3],
            finals: vec![false, false, true, false],
            sink: 3,
        }
    }

    #[test]
    fn shape_and_runs() {
        let d = ab_dfa();
        d.validate_shape().unwrap();
        assert!(d.accepts(&[0, 1]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[1, 0]));
        // Out-of-alphabet symbols sink.
        assert!(!d.accepts(&[0, 7]));
        assert_eq!(d.step(0, 9), d.sink);
    }

    #[test]
    fn sweeps() {
        let d = ab_dfa();
        assert_eq!(d.reachable(), vec![true, true, true, true]);
        assert_eq!(d.coaccessible(), vec![true, true, true, false]);
        assert_eq!(d.useful_symbols(), vec![true, true]);
    }

    #[test]
    fn shape_rejects_corruption() {
        let mut d = ab_dfa();
        d.finals[3] = true; // final sink
        assert!(d.validate_shape().is_err());

        let mut d = ab_dfa();
        d.trans[6] = 0; // sink no longer absorbing
        assert!(d.validate_shape().is_err());

        let mut d = ab_dfa();
        d.trans[0] = 9; // target out of range
        assert!(d.validate_shape().is_err());

        let mut d = ab_dfa();
        d.start = 4;
        assert!(d.validate_shape().is_err());

        let mut d = ab_dfa();
        d.trans.pop(); // dimension mismatch
        assert!(d.validate_shape().is_err());
    }
}
