//! Composition certificates for schema-evolution chains.
//!
//! A chain `v_1 → v_2 → … → v_N` is certified as a [`ChainBundle`]: one
//! ordinary per-hop [`CertBundle`], one [`CertBundle`] for the composed
//! `(v_1, v_N)` endpoint pair (the product-IDA fallback's claims), and a
//! vector of [`CompCert`]s — the *composed-relation* claims.
//!
//! A composition certificate is pure bookkeeping over already-certified
//! facts: it names the witness tuple `(τ_1, τ_2, …, τ_N)` and, per hop, a
//! reference into that hop bundle's certificate vector. The checker's
//! obligations ([`check_chain_bundle`]) are:
//!
//! * one step per hop, steps adjacent (`step_i`'s target type is
//!   `step_{i+1}`'s source type — both are types of version `i + 1`, so the
//!   indices share one namespace);
//! * the tuple's endpoints match the certificate's claimed `(v_1, v_N)`
//!   pair;
//! * every step resolves to a certificate **in its own hop's bundle** for
//!   exactly the step's type pair — `R_sub` certificates for every step,
//!   except that a [`CompClaim::Disjoint`] composition's *final* step
//!   resolves to an `R_dis` certificate (`sub·sub` and `sub·dis` are the
//!   only sound joins; `dis·dis` does not compose and no certificate shape
//!   exists for it);
//! * the hop bundles themselves pass [`check_bundle`] — a composition
//!   resting on a rejected hop certificate fails with the hop, not
//!   silently.
//!
//! Keeping the per-hop bundles separate (instead of concatenating them) is
//! what makes the references unambiguous: type indices are per-schema, and
//! only adjacent hops share a schema, so a step can never smuggle in a
//! certificate from the wrong hop.

use crate::cert::CertBundle;
use crate::check::{check_bundle, CertKind, CheckFailure, CheckReport};

/// What a composed-relation certificate claims about its `(v_1, v_N)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompClaim {
    /// `L(τ_1) ⊆ L(τ_N)`: every step is an `R_sub` certificate.
    Subsumed,
    /// `L(τ_1) ∩ L(τ_N) = ∅`: a subsumption prefix transports the final
    /// hop's `R_dis` fact to the chain start.
    Disjoint,
}

impl CompClaim {
    /// Stable lowercase name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CompClaim::Subsumed => "subsumed",
            CompClaim::Disjoint => "disjoint",
        }
    }
}

/// One hop step of a composition: the `(source, target)` type pair it
/// crosses and the hop-bundle certificate that proves it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompStep {
    /// Type index in the hop's source version.
    pub source_type: u32,
    /// Type index in the hop's target version.
    pub target_type: u32,
    /// Index into the hop bundle's `subs` vector — or its `diss` vector
    /// for the final step of a [`CompClaim::Disjoint`] composition.
    pub cert_ref: u32,
}

/// A composed-relation claim for one `(v_1, v_N)` type pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompCert {
    /// Type index in the first version.
    pub source_type: u32,
    /// Type index in the final version.
    pub target_type: u32,
    /// Which relation is claimed.
    pub claim: CompClaim,
    /// One step per hop, in chain order.
    pub steps: Vec<CompStep>,
}

/// Everything a producer claims about one evolution chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainBundle {
    /// One ordinary bundle per hop, in chain order.
    pub hops: Vec<CertBundle>,
    /// The composed `(v_1, v_N)` endpoint pair's bundle — certificates for
    /// every claim the product-IDA fallback relies on.
    pub endpoint: CertBundle,
    /// The composed-relation claims, referencing into `hops`.
    pub compositions: Vec<CompCert>,
}

impl ChainBundle {
    /// Total number of checkable objects across all parts.
    pub fn object_count(&self) -> usize {
        self.hops
            .iter()
            .map(CertBundle::object_count)
            .sum::<usize>()
            + self.endpoint.object_count()
            + self.compositions.len()
    }
}

/// The outcome of [`check_chain_bundle`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainCheckReport {
    /// Per-hop reports, in chain order.
    pub hops: Vec<CheckReport>,
    /// The endpoint pair's report.
    pub endpoint: CheckReport,
    /// Composition failures ([`CertKind::Comp`]), in bundle order.
    pub failures: Vec<CheckFailure>,
    /// Objects examined across all parts.
    pub checked: usize,
}

impl ChainCheckReport {
    /// True iff every hop bundle, the endpoint bundle, and every
    /// composition certificate passed.
    pub fn all_valid(&self) -> bool {
        self.hops.iter().all(CheckReport::all_valid)
            && self.endpoint.all_valid()
            && self.failures.is_empty()
    }
}

/// Validates a chain bundle: every hop bundle and the endpoint bundle via
/// [`check_bundle`], then every composition certificate against the hop
/// bundles it references.
pub fn check_chain_bundle(bundle: &ChainBundle) -> ChainCheckReport {
    let hops: Vec<CheckReport> = bundle.hops.iter().map(check_bundle).collect();
    let endpoint = check_bundle(&bundle.endpoint);
    let mut failures = Vec::new();
    for (i, c) in bundle.compositions.iter().enumerate() {
        if let Err(reason) = check_comp(bundle, c) {
            failures.push(CheckFailure {
                kind: CertKind::Comp,
                index: i,
                reason,
            });
        }
    }
    ChainCheckReport {
        checked: bundle.object_count(),
        hops,
        endpoint,
        failures,
    }
}

fn check_comp(bundle: &ChainBundle, c: &CompCert) -> Result<(), String> {
    let n = bundle.hops.len();
    if n == 0 {
        return Err("composition over a chain with no hop bundles".into());
    }
    if c.steps.len() != n {
        return Err(format!(
            "composition has {} step(s) for {n} hop(s)",
            c.steps.len()
        ));
    }
    let first = c.steps.first().expect("n >= 1");
    let last = c.steps.last().expect("n >= 1");
    if first.source_type != c.source_type {
        return Err(format!(
            "first step starts at type {} but the claim is about type {}",
            first.source_type, c.source_type
        ));
    }
    if last.target_type != c.target_type {
        return Err(format!(
            "last step ends at type {} but the claim is about type {}",
            last.target_type, c.target_type
        ));
    }
    for (i, w) in c.steps.windows(2).enumerate() {
        if w[0].target_type != w[1].source_type {
            return Err(format!(
                "steps {i} and {} are not adjacent: {} != {}",
                i + 1,
                w[0].target_type,
                w[1].source_type
            ));
        }
    }
    for (i, step) in c.steps.iter().enumerate() {
        let hop = &bundle.hops[i];
        let is_dis_step = i == n - 1 && c.claim == CompClaim::Disjoint;
        let (claimed_source, claimed_target) = if is_dis_step {
            let cert = hop
                .diss
                .get(step.cert_ref as usize)
                .ok_or_else(|| format!("step {i}: dis ref {} out of range", step.cert_ref))?;
            (cert.source_type, cert.target_type)
        } else {
            let cert = hop
                .subs
                .get(step.cert_ref as usize)
                .ok_or_else(|| format!("step {i}: sub ref {} out of range", step.cert_ref))?;
            (cert.source_type, cert.target_type)
        };
        if claimed_source != step.source_type || claimed_target != step.target_type {
            return Err(format!(
                "step {i} references a certificate for pair ({claimed_source},{claimed_target}) \
                 but claims ({},{})",
                step.source_type, step.target_type
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{DisBody, DisCert, SubBody, SubCert};

    /// A two-hop chain with axiom-level sub/dis certificates:
    /// v1:0 ⊑ v2:0 (hop 0), and hop 1 has v2:0 ⊑ v3:0 plus v2:0 dis v3:1.
    fn two_hop_bundle() -> ChainBundle {
        let sub = |s: u32, t: u32| SubCert {
            source_type: s,
            target_type: t,
            body: SubBody::SimpleAxiom,
        };
        let dis = |s: u32, t: u32| DisCert {
            source_type: s,
            target_type: t,
            body: DisBody::SimpleAxiom,
        };
        let hop0 = CertBundle {
            subs: vec![sub(0, 0)],
            ..Default::default()
        };
        let hop1 = CertBundle {
            subs: vec![sub(0, 0)],
            diss: vec![dis(0, 1)],
            ..Default::default()
        };
        ChainBundle {
            hops: vec![hop0, hop1],
            endpoint: CertBundle::default(),
            compositions: vec![
                CompCert {
                    source_type: 0,
                    target_type: 0,
                    claim: CompClaim::Subsumed,
                    steps: vec![
                        CompStep {
                            source_type: 0,
                            target_type: 0,
                            cert_ref: 0,
                        },
                        CompStep {
                            source_type: 0,
                            target_type: 0,
                            cert_ref: 0,
                        },
                    ],
                },
                CompCert {
                    source_type: 0,
                    target_type: 1,
                    claim: CompClaim::Disjoint,
                    steps: vec![
                        CompStep {
                            source_type: 0,
                            target_type: 0,
                            cert_ref: 0,
                        },
                        CompStep {
                            source_type: 0,
                            target_type: 1,
                            cert_ref: 0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn valid_chain_bundle_checks() {
        let report = check_chain_bundle(&two_hop_bundle());
        assert!(report.all_valid(), "{report:?}");
        assert_eq!(report.checked, 5);
    }

    #[test]
    fn broken_adjacency_is_rejected() {
        let mut b = two_hop_bundle();
        b.compositions[0].steps[1].source_type = 7;
        let report = check_chain_bundle(&b);
        assert!(!report.all_valid());
        assert_eq!(report.failures[0].kind, CertKind::Comp);
        assert!(report.failures[0].reason.contains("not adjacent"));
    }

    #[test]
    fn wrong_step_count_and_endpoints_are_rejected() {
        let mut b = two_hop_bundle();
        b.compositions[0].steps.pop();
        assert!(!check_chain_bundle(&b).all_valid());

        let mut b = two_hop_bundle();
        b.compositions[0].source_type = 9;
        assert!(!check_chain_bundle(&b).all_valid());

        let mut b = two_hop_bundle();
        b.compositions[1].target_type = 9;
        assert!(!check_chain_bundle(&b).all_valid());
    }

    #[test]
    fn mismatched_certificate_pair_is_rejected() {
        let mut b = two_hop_bundle();
        // Point the dis step at the sub certificate's slot: out of range in
        // diss.
        b.compositions[1].steps[1].cert_ref = 5;
        let report = check_chain_bundle(&b);
        assert!(!report.all_valid());
        assert!(report.failures[0].reason.contains("out of range"));

        // A sub-claim composition whose step names a pair the referenced
        // certificate is not about.
        let mut b = two_hop_bundle();
        b.hops[1].subs[0].target_type = 3;
        b.compositions.truncate(1);
        let report = check_chain_bundle(&b);
        assert!(!report.all_valid());
    }

    #[test]
    fn rejected_hop_certificate_fails_the_chain() {
        let mut b = two_hop_bundle();
        // An empty Complex body misses the start pair — hop check rejects.
        b.hops[0].subs[0].body = SubBody::Complex {
            simulation: crate::cert::SimulationCert {
                a: 0,
                b: 0,
                relation: Vec::new(),
            },
            obligations: Vec::new(),
        };
        let report = check_chain_bundle(&b);
        assert!(!report.all_valid());
        assert!(!report.hops[0].all_valid());
    }
}
