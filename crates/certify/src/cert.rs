//! Certificate data model.
//!
//! A [`CertBundle`] is plain data: a pool of [`RawDfa`]
//! tables plus one vector per certificate kind, cross-referenced by index.
//! Producers build bundles; [`check_bundle`](crate::check_bundle) validates
//! them; nothing here has behavior beyond counting.
//!
//! Type identities (`source_type` / `target_type`) and symbols are bare
//! `u32` indices — the checker never interprets them, it only cross-checks
//! that references agree on them, which is what makes a bundle a connected
//! proof instead of a pile of unrelated facts.

use crate::dfa::RawDfa;

/// Index into [`CertBundle::dfas`].
pub type DfaRef = u32;

/// Certificate for `L(a) ⊆ L(b)`: a simulation relation over state pairs.
///
/// Valid iff the relation contains the start pair, is closed under every
/// symbol, and never pairs an `a`-final state with a `b`-non-final one.
/// Producers emit the *reachable* pair set (the minimal such relation), so
/// removing any element breaks either start membership or closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationCert {
    /// The included (source) DFA.
    pub a: DfaRef,
    /// The including (target) DFA.
    pub b: DfaRef,
    /// The simulation relation as `(q_a, q_b)` pairs.
    pub relation: Vec<(u32, u32)>,
}

/// One per-label obligation of an `R_sub` certificate: the child type pair
/// reached through `symbol` must itself be certified subsumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubObligation {
    /// The label (symbol index) this obligation covers.
    pub symbol: u32,
    /// The source child type reached through `symbol` (trusted mapping).
    pub child_source: u32,
    /// The target child type reached through `symbol` (trusted mapping).
    pub child_target: u32,
    /// Index into [`CertBundle::subs`] of the child pair's certificate.
    pub child_ref: u32,
}

/// The body of an `R_sub` certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubBody {
    /// Simple × simple value-space subsumption — a trusted axiom leaf.
    SimpleAxiom,
    /// Complex × complex: language inclusion plus child obligations
    /// covering **exactly** the useful symbols of `a` (every symbol that
    /// can occur in an accepted children sequence).
    Complex {
        /// The content-model language inclusion.
        simulation: SimulationCert,
        /// One obligation per useful symbol of the source DFA.
        obligations: Vec<SubObligation>,
    },
}

/// Certificate that a type pair is in `R_sub` (Definition 4).
///
/// Coinductive: child references may form cycles — `R_sub` is a greatest
/// fixpoint, so circular justification is sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubCert {
    /// Source type index.
    pub source_type: u32,
    /// Target type index.
    pub target_type: u32,
    /// The evidence.
    pub body: SubBody,
}

/// A symbol excluded from a disjointness invariant's closure obligation,
/// with the reason the exclusion is sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockedSymbol {
    /// Both schemas type the label, and the child pair is disjoint: no
    /// common tree can contain this label here. Coinductive reference into
    /// [`CertBundle::diss`].
    DisjointChild {
        /// The blocked label.
        symbol: u32,
        /// Source child type (trusted mapping).
        child_source: u32,
        /// Target child type (trusted mapping).
        child_target: u32,
        /// Index of the child pair's disjointness certificate.
        dis_ref: u32,
    },
    /// At least one schema has no child typing for the label, so no valid
    /// tree on that side contains it — a trusted axiom leaf (the builder
    /// rejects content models mentioning untyped labels).
    Untyped {
        /// The blocked label.
        symbol: u32,
    },
}

impl BlockedSymbol {
    /// The blocked label.
    pub fn symbol(&self) -> u32 {
        match *self {
            BlockedSymbol::DisjointChild { symbol, .. } | BlockedSymbol::Untyped { symbol } => {
                symbol
            }
        }
    }
}

/// The body of an `R_dis` certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisBody {
    /// Value-space disjointness or childless-element reasoning involving a
    /// simple type — a trusted axiom leaf.
    SimpleAxiom,
    /// Complex × complex: a product-pair invariant that contains the start
    /// pair, contains no (final, final) pair, and is closed under every
    /// symbol not blocked. Any common word would have to stay inside the
    /// invariant (or use a blocked label, impossible by its reason) and end
    /// in a (final, final) pair — contradiction.
    Complex {
        /// The source content DFA.
        a: DfaRef,
        /// The target content DFA.
        b: DfaRef,
        /// The invariant pair set (the reachable set under permitted
        /// symbols, so every element is load-bearing).
        invariant: Vec<(u32, u32)>,
        /// Symbols exempt from closure, each with a soundness reason.
        blocked: Vec<BlockedSymbol>,
    },
}

/// Certificate that a type pair is in `R_dis` (Definition 5 complement).
/// Coinductive, like [`SubCert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisCert {
    /// Source type index.
    pub source_type: u32,
    /// Target type index.
    pub target_type: u32,
    /// The evidence.
    pub body: DisBody,
}

/// One position of an `R_nondis` witness word: the child pair instantiated
/// at that position, certified non-disjoint by an earlier bundle entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NondisChild {
    /// Source child type (trusted mapping for the word's symbol).
    pub child_source: u32,
    /// Target child type (trusted mapping for the word's symbol).
    pub child_target: u32,
    /// Index into [`CertBundle::nondis`] — must be **strictly smaller**
    /// than the referencing certificate's own index (well-foundedness of
    /// the least fixpoint).
    pub nondis_ref: u32,
}

/// The body of an `R_nondis` certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NondisBody {
    /// Shared simple value or shared childless element — trusted axiom.
    SimpleAxiom,
    /// Complex × complex: a children word accepted by both content models,
    /// with each position's child pair certified non-disjoint earlier in
    /// the bundle. Flattening the paper's witness *tree*: the word is one
    /// node's children, the references are its certified subtrees.
    Complex {
        /// The source content DFA.
        a: DfaRef,
        /// The target content DFA.
        b: DfaRef,
        /// The witness children sequence (symbol indices).
        word: Vec<u32>,
        /// Exactly one entry per word position.
        children: Vec<NondisChild>,
    },
}

/// Certificate that a type pair is **not** disjoint. Inductive: circular
/// justification would be unsound for a least fixpoint, so references must
/// strictly decrease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NondisCert {
    /// Source type index.
    pub source_type: u32,
    /// Target type index.
    pub target_type: u32,
    /// The evidence.
    pub body: NondisBody,
}

/// Exactness certificate for one product IDA (Definitions 7–8).
///
/// All six vectors index the `|Q_a| × |Q_b|` grid as `q_a · |Q_b| + q_b`.
/// `safe` claims the exact set of pairs that cannot reach a *bad* pair
/// (`a`-final, `b`-non-final); `dead` the exact set that cannot reach a
/// (final, final) pair. Soundness of each set is a closure check
/// (coinductive); **exactness** is witnessed by the rank vectors: a
/// non-member's rank is its distance to a bad/final pair, checked to be
/// strictly decreasing along some edge — so flipping any bit in either
/// direction is caught. The published decision sets are then tied down
/// pointwise: `ia = safe ∖ dead`, `ir = dead` (the producer resolves the
/// overlap in favour of rejection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdaCert {
    /// Source type index.
    pub source_type: u32,
    /// Target type index.
    pub target_type: u32,
    /// The source content DFA.
    pub a: DfaRef,
    /// The target content DFA.
    pub b: DfaRef,
    /// Exact "cannot reach a bad pair" set.
    pub safe: Vec<bool>,
    /// For non-`safe` pairs: distance to a bad pair (0 ⇒ the pair itself
    /// is bad). Ignored (producer writes 0) for members.
    pub safe_rank: Vec<u32>,
    /// Exact "cannot reach a (final, final) pair" set.
    pub dead: Vec<bool>,
    /// For non-`dead` pairs: distance to a (final, final) pair.
    pub dead_rank: Vec<u32>,
    /// The published immediate-accept set, exactly as the engine uses it.
    pub ia: Vec<bool>,
    /// The published immediate-reject set, exactly as the engine uses it.
    pub ir: Vec<bool>,
}

/// Certificate for a difference witness `w ∈ L(a) ∖ L(b)`: the word plus
/// the product-state trace its run induces, ending in an (`a`-final,
/// `b`-non-final) pair. Minimality of `w` is *not* certified — only
/// membership in the difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCert {
    /// Source type index.
    pub source_type: u32,
    /// Target type index.
    pub target_type: u32,
    /// The source content DFA.
    pub a: DfaRef,
    /// The target content DFA.
    pub b: DfaRef,
    /// The witness word (symbol indices).
    pub word: Vec<u32>,
    /// The trace: `word.len() + 1` pairs, starting at the start pair.
    pub states: Vec<(u32, u32)>,
}

/// A relabel fact consulted by the safety analyzer: relabelling `from → to`
/// moves the kept subtree from `child_source`'s typing to `child_target`'s,
/// and the referenced certificate proves the relation used by the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelabelLink {
    /// The original label.
    pub from: u32,
    /// The new label.
    pub to: u32,
    /// Source child type of `from` (trusted mapping).
    pub child_source: u32,
    /// Target child type of `to` (trusted mapping).
    pub child_target: u32,
    /// Index into [`CertBundle::subs`] or [`CertBundle::diss`], depending
    /// on which vector this link lives in.
    pub cert_ref: u32,
}

/// Certificate trace for one `SafetyMatrix` row: every static fact the
/// pair's Safe/Unsafe verdicts consumed, resolved to a checked certificate.
/// This is what makes an engine `static_skips`/`static_rejects` decision
/// auditable end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyCert {
    /// Source type index.
    pub source_type: u32,
    /// Target type index.
    pub target_type: u32,
    /// The word-level evidence: index into [`CertBundle::idas`] for this
    /// pair's product IDA (whose `IA`/`IR` sets decide every insert/delete/
    /// relabel word verdict).
    pub ida_ref: u32,
    /// `Some` iff the analyzer claimed `child_sub_stable`: one obligation
    /// per useful source symbol, each resolving to a checked `R_sub`
    /// certificate — the condition under which untouched sibling subtrees
    /// stay target-valid.
    pub stable: Option<Vec<SubObligation>>,
    /// Relabel pairs whose `Safe` verdicts consulted `R_sub`.
    pub sub_links: Vec<RelabelLink>,
    /// Relabel pairs whose `Unsafe` verdicts consulted `R_dis`.
    pub dis_links: Vec<RelabelLink>,
}

/// One edit operation of a script certificate, in evolving-word
/// coordinates (positions index the current view, deleted placeholders
/// included) — exactly the coordinates the Δ-document applies edits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Insert a fresh childless element.
    Insert {
        /// View position.
        pos: u32,
        /// Its label.
        sym: u32,
    },
    /// Delete the entry at `pos`.
    Delete {
        /// View position.
        pos: u32,
    },
    /// Relabel the entry at `pos`.
    Relabel {
        /// View position.
        pos: u32,
        /// The new label.
        sym: u32,
    },
}

/// One normalization-trace step of a script certificate: what the op at
/// the same index did to the view. The checker replays the ops over its
/// own view and derives each step independently — every claimed step is
/// re-checkable from the view state alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptStep {
    /// An insert created a fresh entry.
    InsertFresh {
        /// View position.
        pos: u32,
        /// Its symbol.
        sym: u32,
    },
    /// A delete removed a script-inserted entry — insert/delete cancel.
    CancelInserted {
        /// View position.
        pos: u32,
        /// The symbol it carried when deleted.
        sym: u32,
    },
    /// A delete marked an original entry deleted (placeholder stays).
    DeleteOriginal {
        /// View position.
        pos: u32,
        /// Original-word index.
        origin: u32,
    },
    /// A relabel overwrote a script-inserted entry's symbol (collapse).
    OverwriteInserted {
        /// View position.
        pos: u32,
        /// Symbol before.
        from: u32,
        /// Symbol after.
        to: u32,
    },
    /// A relabel restored an original's own label — rename/rename-back
    /// cancel.
    RenameBack {
        /// View position.
        pos: u32,
        /// Original-word index.
        origin: u32,
        /// The restored symbol.
        sym: u32,
    },
    /// A relabel gave an original a non-original label.
    RenameOriginal {
        /// View position.
        pos: u32,
        /// Original-word index.
        origin: u32,
        /// Symbol before.
        from: u32,
        /// Symbol after.
        to: u32,
    },
}

/// Provenance of one net-word position of a script certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptProv {
    /// Original symbol, unchanged.
    Kept {
        /// Original-word index.
        origin: u32,
    },
    /// Original position under a new label.
    Renamed {
        /// Original-word index.
        origin: u32,
    },
    /// Inserted by the script (childless).
    Fresh,
}

/// A kept/renamed net-word position of an *accepted* site: the child type
/// pair consulted, resolved to a checked `R_sub` certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildLink {
    /// Net-word position.
    pub pos: u32,
    /// Source child type of the original label (trusted mapping).
    pub child_source: u32,
    /// Target child type of the net label (trusted mapping).
    pub child_target: u32,
    /// Index into [`CertBundle::subs`].
    pub sub_ref: u32,
}

/// A fresh net-word position of an accepted site: the target child type
/// accepts a childless element — a trusted axiom leaf (value-space /
/// nullability reasoning, like [`SubBody::SimpleAxiom`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreshLeaf {
    /// Net-word position.
    pub pos: u32,
    /// Target child type of the inserted label (trusted mapping).
    pub child_target: u32,
}

/// The justification a rejected site claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteReason {
    /// The net word is not accepted by the target content DFA (the checker
    /// reruns the word).
    Membership,
    /// A fresh child's target type rejects a childless element — trusted
    /// axiom over the claimed typing.
    FreshInvalid {
        /// Net-word position (must be `Fresh` in the derived provenance).
        pos: u32,
        /// Target child type of the inserted label (trusted mapping).
        child_target: u32,
    },
    /// A kept/renamed child's type pair is disjoint, resolved to a checked
    /// `R_dis` certificate.
    DisjointChild {
        /// Net-word position (must be `Kept`/`Renamed` in the derived
        /// provenance).
        pos: u32,
        /// Source child type (trusted mapping).
        child_source: u32,
        /// Target child type (trusted mapping).
        child_target: u32,
        /// Index into [`CertBundle::diss`].
        dis_ref: u32,
    },
}

/// An optional claim that the membership run settled early at an `IA`/`IR`
/// pair of the referenced product IDA. The checker replays both runs up to
/// the claimed cut, confirms the pair and its decision-set membership, and
/// confirms the remainder past the cut is the untouched identity suffix —
/// the condition under which the early decision is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyClaim {
    /// Index into [`CertBundle::idas`] for this pair's product IDA.
    pub ida_ref: u32,
    /// Source-side state after `orig_consumed` symbols of the word.
    pub pair_a: u32,
    /// Target-side state after `net_consumed` symbols of the net word.
    pub pair_b: u32,
    /// Net-word symbols consumed before the decision.
    pub net_consumed: u32,
    /// Original-word symbols consumed before the decision.
    pub orig_consumed: u32,
    /// `true` ⇒ the pair is claimed in `IA` (site accepted), `false` ⇒ in
    /// `IR` (site rejected).
    pub ia: bool,
}

/// One touched site of a [`ScriptCert`]: the site's typing, original child
/// word, the script's ops on it, the claimed normalization trace and net
/// effect, and the evidence for its verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptSiteCert {
    /// Source type index of the site.
    pub source_type: u32,
    /// Target type index of the site.
    pub target_type: u32,
    /// The source content DFA (the word must be accepted by it — the
    /// script analyzer's source-validity precondition, made checkable).
    pub a: DfaRef,
    /// The target content DFA.
    pub b: DfaRef,
    /// The original child word (symbol indices).
    pub word: Vec<u32>,
    /// The site's edit ops, in script order.
    pub ops: Vec<ScriptOp>,
    /// The claimed normalization trace, one step per op.
    pub trace: Vec<ScriptStep>,
    /// The claimed net word.
    pub net: Vec<u32>,
    /// The claimed provenance, one entry per net position.
    pub prov: Vec<ScriptProv>,
    /// `true` ⇒ the site was accepted, `false` ⇒ rejected.
    pub verdict: bool,
    /// Accepted sites: every kept/renamed net position's `R_sub` link.
    pub kept_links: Vec<ChildLink>,
    /// Accepted sites: every fresh net position's childless-leaf axiom.
    pub fresh_leaves: Vec<FreshLeaf>,
    /// Rejected sites: the claimed reason.
    pub reject: Option<SiteReason>,
    /// Optional early-settle claim for the membership run.
    pub early: Option<EarlyClaim>,
}

/// Certificate trace for one whole-script static decision: per-site
/// normalization replays plus the folded verdict. This is what makes an
/// engine `script_skips`/`script_rejects` decision auditable end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptCert {
    /// `true` ⇒ every site accepted (a `script_skips` decision), `false`
    /// ⇒ at least one site rejected (a `script_rejects` decision).
    pub accepted: bool,
    /// One entry per touched, non-identity site.
    pub sites: Vec<ScriptSiteCert>,
}

/// Everything a producer claims about one schema pair, cross-referenced by
/// index. See the [crate docs](crate) for the proof structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CertBundle {
    /// The DFA pool all certificates reference.
    pub dfas: Vec<RawDfa>,
    /// `R_sub` certificates (unordered, may reference cyclically).
    pub subs: Vec<SubCert>,
    /// `R_dis` certificates (unordered, may reference cyclically).
    pub diss: Vec<DisCert>,
    /// `R_nondis` certificates in well-founded order: entry `i` may only
    /// reference entries `< i`.
    pub nondis: Vec<NondisCert>,
    /// Product-IDA exactness certificates.
    pub idas: Vec<IdaCert>,
    /// Difference-witness path certificates.
    pub paths: Vec<PathCert>,
    /// Safety-matrix trace certificates.
    pub safety: Vec<SafetyCert>,
    /// Whole-script decision certificates.
    pub scripts: Vec<ScriptCert>,
}

impl CertBundle {
    /// Total number of checkable objects (DFA tables + certificates).
    pub fn object_count(&self) -> usize {
        self.dfas.len()
            + self.subs.len()
            + self.diss.len()
            + self.nondis.len()
            + self.idas.len()
            + self.paths.len()
            + self.safety.len()
            + self.scripts.len()
    }
}
