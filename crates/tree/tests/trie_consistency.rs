//! Property tests: the modification trie agrees with a naive recomputation
//! of `modified(v)` from the Δ-states, across random edit scripts — the
//! key data-structure invariant behind §3.3.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast_regex::{Alphabet, Sym};
use schemacast_tree::{DeltaDoc, DeltaState, Doc, Edit, NodeId};

/// Builds a random tree with `n` elements.
fn random_tree(seed: u64, n: usize) -> (Doc, Alphabet) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ab = Alphabet::new();
    let labels: Vec<Sym> = (0..4).map(|i| ab.intern(&format!("l{i}"))).collect();
    let mut doc = Doc::new(labels[0]);
    let mut nodes = vec![doc.root()];
    for _ in 1..n {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        // Only elements can have children.
        if doc.label(parent).is_none() {
            continue;
        }
        if rng.gen_bool(0.2) {
            doc.add_text(parent, "v");
        } else {
            let id = doc.add_element(parent, labels[rng.gen_range(0..labels.len())]);
            nodes.push(id);
        }
    }
    (doc, ab)
}

/// Applies `k` random edits; returns the DeltaDoc.
fn random_deltadoc(seed: u64, n: usize, k: usize) -> (DeltaDoc, Alphabet) {
    let (doc, mut ab) = random_tree(seed, n);
    let mut dd = DeltaDoc::new(doc);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
    let extra = ab.intern("new");
    for _ in 0..k {
        let all: Vec<NodeId> = dd
            .doc()
            .preorder_iter()
            .filter(|&x| !matches!(dd.delta(x), DeltaState::Deleted))
            .collect();
        let node = all[rng.gen_range(0..all.len())];
        let edit = match rng.gen_range(0..4) {
            0 if dd.doc().label(node).is_some() => Edit::Relabel { node, label: extra },
            1 if dd.doc().text(node).is_some() => Edit::SetText {
                node,
                text: "x".into(),
            },
            2 if dd.doc().parent(node).is_some() && dd.new_children(node).next().is_none() => {
                Edit::DeleteLeaf { node }
            }
            _ if dd.doc().label(node).is_some() => Edit::InsertElement {
                parent: node,
                position: rng.gen_range(0..=dd.doc().children(node).len()),
                label: extra,
            },
            _ => continue,
        };
        let _ = dd.apply(&edit);
    }
    (dd, ab)
}

/// Naive `modified(v)`: any node in the subtree has a non-Unchanged state.
fn naive_modified(dd: &DeltaDoc, node: NodeId) -> bool {
    if dd.delta(node) != DeltaState::Unchanged {
        return true;
    }
    dd.doc()
        .children(node)
        .iter()
        .any(|&c| naive_modified(dd, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_matches_naive_modified(seed in 0u64..5_000, n in 2usize..30, k in 0usize..12) {
        let (dd, _ab) = random_deltadoc(seed, n, k);
        let mut dewey = Vec::new();
        for node in dd.doc().preorder_iter() {
            dd.doc().dewey_into(node, &mut dewey);
            let via_trie = dd.trie().subtree_modified(&dewey);
            let via_naive = naive_modified(&dd, node);
            prop_assert_eq!(
                via_trie, via_naive,
                "node {:?} (dewey {:?}): trie {} vs naive {}",
                node, dewey, via_trie, via_naive
            );
        }
    }

    /// The committed tree equals the new-view of the Δ-doc.
    #[test]
    fn committed_matches_new_view(seed in 0u64..5_000, n in 2usize..25, k in 0usize..10) {
        let (dd, _ab) = random_deltadoc(seed, n, k);
        let committed = dd.committed();
        // Node counts: live nodes in the delta view.
        fn live_count(dd: &DeltaDoc, node: NodeId) -> usize {
            if matches!(dd.delta(node), DeltaState::Deleted) {
                return 0;
            }
            1 + dd
                .doc()
                .children(node)
                .iter()
                .map(|&c| live_count(dd, c))
                .sum::<usize>()
        }
        prop_assert_eq!(committed.node_count(), live_count(&dd, dd.doc().root()));
    }

    /// Proj_old reconstructs the original label multiset of unedited docs.
    #[test]
    fn no_edits_means_no_modifications(seed in 0u64..5_000, n in 2usize..25) {
        let (doc, _ab) = random_tree(seed, n);
        let dd = DeltaDoc::new(doc.clone());
        prop_assert!(!dd.any_modifications());
        let mut dewey = Vec::new();
        for node in doc.preorder_iter() {
            doc.dewey_into(node, &mut dewey);
            prop_assert!(!dd.trie().subtree_modified(&dewey));
        }
        prop_assert_eq!(dd.committed().node_count(), doc.node_count());
    }
}
