//! Ordered labeled trees — the paper's document abstraction.
//!
//! A [`Doc`] is an arena of nodes: elements carry an interned label from Σ,
//! text nodes are the χ-labeled leaves of Definition 1. Conversion to and
//! from the `schemacast-xml` DOM handles whitespace policy: the paper's
//! experiment documents are indented, and Xerces-style validators skip (but
//! still *touch*) ignorable whitespace, which matters when reproducing the
//! node-visit counts of Table 3.

use schemacast_regex::{Alphabet, Sym};
use schemacast_xml::{XmlElement, XmlNode};

/// Index of a node within a [`Doc`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is: an element (Σ-labeled) or character data (a χ leaf).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with an interned tag.
    Element(Sym),
    /// Character data. The paper's χ label; the payload is the simple value.
    Text(String),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// How to treat whitespace-only text when importing XML.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WhitespaceMode {
    /// Drop whitespace-only text nodes that sit between elements (the
    /// standard "ignorable whitespace" policy).
    #[default]
    Trim,
    /// Keep every text node, mirroring a raw DOM — used to reproduce the
    /// paper's node-visit accounting, where indentation text is real.
    Preserve,
}

/// An ordered labeled tree over a shared [`Alphabet`].
#[derive(Debug, Clone)]
pub struct Doc {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Doc {
    /// Creates a document whose root element has label `root_label`.
    pub fn new(root_label: Sym) -> Doc {
        Doc {
            nodes: vec![Node {
                kind: NodeKind::Element(root_label),
                parent: None,
                children: Vec::new(),
            }],
            root: NodeId(0),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements and text).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element(_)))
            .count()
    }

    /// The node's kind.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// The element label, or `None` for text nodes.
    pub fn label(&self, id: NodeId) -> Option<Sym> {
        match self.nodes[id.index()].kind {
            NodeKind::Element(s) => Some(s),
            NodeKind::Text(_) => None,
        }
    }

    /// The text payload, or `None` for elements.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Text(t) => Some(t.as_str()),
            NodeKind::Element(_) => None,
        }
    }

    /// The node's parent (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The node's children, in order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Whether `id` has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// Whether the node is a whitespace-only text node.
    pub fn is_ignorable_ws(&self, id: NodeId) -> bool {
        matches!(&self.nodes[id.index()].kind,
                 NodeKind::Text(t) if t.chars().all(char::is_whitespace))
    }

    /// Children relevant for validation: elements and non-whitespace text.
    /// (Indentation whitespace is ignorable in element content.)
    pub fn validation_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| !self.is_ignorable_ws(c))
    }

    /// The position of `id` among its parent's children. Root has index 0.
    pub fn child_index(&self, id: NodeId) -> usize {
        match self.parent(id) {
            None => 0,
            Some(p) => self
                .children(p)
                .iter()
                .position(|&c| c == id)
                .expect("child listed under parent"),
        }
    }

    /// The Dewey decimal number of a node: the child-index path from the
    /// root (the root's number is the empty path).
    pub fn dewey(&self, id: NodeId) -> Vec<u32> {
        let mut path = Vec::new();
        self.dewey_into(id, &mut path);
        path
    }

    /// [`dewey`](Self::dewey) into a caller-provided buffer (cleared
    /// first), so hot loops can compute many paths with one allocation.
    pub fn dewey_into(&self, id: NodeId, path: &mut Vec<u32>) {
        path.clear();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(self.child_index(cur) as u32);
            cur = p;
        }
        path.reverse();
    }

    /// Appends a child element to `parent`, returning its id.
    pub fn add_element(&mut self, parent: NodeId, label: Sym) -> NodeId {
        let len = self.children(parent).len();
        self.insert_element(parent, len, label)
    }

    /// Inserts a child element at `position` within `parent`'s child list.
    ///
    /// # Panics
    /// Panics if `position` exceeds the current number of children or
    /// `parent` is a text node.
    pub fn insert_element(&mut self, parent: NodeId, position: usize, label: Sym) -> NodeId {
        assert!(
            matches!(self.nodes[parent.index()].kind, NodeKind::Element(_)),
            "text nodes cannot have children"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Element(label),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.insert(position, id);
        id
    }

    /// Appends a text child to `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let len = self.children(parent).len();
        self.insert_text(parent, len, text)
    }

    /// Inserts a text child at `position`.
    pub fn insert_text(
        &mut self,
        parent: NodeId,
        position: usize,
        text: impl Into<String>,
    ) -> NodeId {
        assert!(
            matches!(self.nodes[parent.index()].kind, NodeKind::Element(_)),
            "text nodes cannot have children"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Text(text.into()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.insert(position, id);
        id
    }

    /// Changes an element's label. Panics on text nodes.
    pub fn set_label(&mut self, id: NodeId, label: Sym) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element(s) => *s = label,
            NodeKind::Text(_) => panic!("cannot relabel a text node"),
        }
    }

    /// Replaces a text node's payload. Panics on elements.
    pub fn set_text(&mut self, id: NodeId, text: impl Into<String>) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Text(t) => *t = text.into(),
            NodeKind::Element(_) => panic!("cannot set text of an element"),
        }
    }

    /// Detaches a leaf from its parent. The arena slot is retained (ids stay
    /// stable) but the node is no longer reachable.
    ///
    /// # Panics
    /// Panics if the node has children or is the root.
    pub fn remove_leaf(&mut self, id: NodeId) {
        assert!(self.is_leaf(id), "only leaves may be removed");
        let parent = self.parent(id).expect("cannot remove the root");
        let idx = self.child_index(id);
        self.nodes[parent.index()].children.remove(idx);
        self.nodes[id.index()].parent = None;
    }

    /// Pre-order traversal from the root, materialized.
    ///
    /// Prefer [`preorder_iter`](Self::preorder_iter) where the ids are only
    /// walked once — it visits lazily with O(depth) state instead of
    /// allocating an O(n) buffer.
    pub fn preorder(&self) -> Vec<NodeId> {
        self.preorder_iter().collect()
    }

    /// Lazy pre-order traversal from the root (O(depth) state, no O(n)
    /// buffer).
    pub fn preorder_iter(&self) -> Preorder<'_> {
        Preorder {
            doc: self,
            stack: vec![self.root],
        }
    }

    /// Number of nodes in the subtree rooted at `id` (inclusive).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        1 + self
            .children(id)
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// Imports an XML element tree, interning labels into `alphabet`.
    pub fn from_xml(root: &XmlElement, alphabet: &mut Alphabet, ws: WhitespaceMode) -> Doc {
        let mut doc = Doc::new(alphabet.intern(&root.name));
        let doc_root = doc.root;
        build_children(&mut doc, doc_root, root, alphabet, ws);
        doc
    }

    /// Exports back to the XML DOM, resolving labels through `alphabet`.
    pub fn to_xml(&self, alphabet: &Alphabet) -> XmlElement {
        self.to_xml_node(self.root, alphabet)
    }

    fn to_xml_node(&self, id: NodeId, alphabet: &Alphabet) -> XmlElement {
        let label = self.label(id).expect("to_xml_node called on an element");
        let mut e = XmlElement::new(alphabet.name(label));
        for &c in self.children(id) {
            match self.kind(c) {
                NodeKind::Element(_) => {
                    e.children
                        .push(XmlNode::Element(self.to_xml_node(c, alphabet)));
                }
                NodeKind::Text(t) => e.children.push(XmlNode::Text(t.clone())),
            }
        }
        e
    }
}

/// Lazy pre-order traversal over a [`Doc`], from
/// [`Doc::preorder_iter`]. Holds a stack of pending siblings (O(depth ×
/// fanout) worst case, O(depth) typical) instead of materializing all ids.
pub struct Preorder<'d> {
    doc: &'d Doc,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        for &c in self.doc.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

fn build_children(
    doc: &mut Doc,
    parent: NodeId,
    element: &XmlElement,
    alphabet: &mut Alphabet,
    ws: WhitespaceMode,
) {
    let has_element_children = element
        .children
        .iter()
        .any(|c| matches!(c, XmlNode::Element(_)));
    for child in &element.children {
        match child {
            XmlNode::Element(e) => {
                let id = doc.add_element(parent, alphabet.intern(&e.name));
                build_children(doc, id, e, alphabet, ws);
            }
            XmlNode::Text(t) => {
                let ignorable = has_element_children && t.chars().all(char::is_whitespace);
                if ignorable && ws == WhitespaceMode::Trim {
                    continue;
                }
                doc.add_text(parent, t.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_xml::parse_document;

    fn sample() -> (Doc, Alphabet) {
        let mut ab = Alphabet::new();
        let po = ab.intern("po");
        let item = ab.intern("item");
        let qty = ab.intern("qty");
        let mut doc = Doc::new(po);
        let i1 = doc.add_element(doc.root(), item);
        let q1 = doc.add_element(i1, qty);
        doc.add_text(q1, "3");
        let i2 = doc.add_element(doc.root(), item);
        let q2 = doc.add_element(i2, qty);
        doc.add_text(q2, "5");
        (doc, ab)
    }

    #[test]
    fn construction_and_navigation() {
        let (doc, ab) = sample();
        assert_eq!(doc.node_count(), 7);
        assert_eq!(doc.element_count(), 5);
        let root = doc.root();
        assert_eq!(ab.name(doc.label(root).unwrap()), "po");
        let items = doc.children(root);
        assert_eq!(items.len(), 2);
        assert_eq!(doc.parent(items[0]), Some(root));
        assert_eq!(doc.child_index(items[1]), 1);
    }

    #[test]
    fn dewey_numbers() {
        let (doc, _) = sample();
        let root = doc.root();
        assert_eq!(doc.dewey(root), Vec::<u32>::new());
        let i2 = doc.children(root)[1];
        let q2 = doc.children(i2)[0];
        let t2 = doc.children(q2)[0];
        assert_eq!(doc.dewey(t2), vec![1, 0, 0]);
    }

    #[test]
    fn preorder_visits_all_nodes_parent_first() {
        let (doc, _) = sample();
        let order = doc.preorder();
        assert_eq!(order.len(), doc.node_count());
        assert_eq!(order[0], doc.root());
        // Every node appears after its parent.
        for (i, &id) in order.iter().enumerate() {
            if let Some(p) = doc.parent(id) {
                let pi = order.iter().position(|&x| x == p).unwrap();
                assert!(pi < i);
            }
        }
    }

    #[test]
    fn preorder_iter_matches_materialized_order() {
        let (doc, _) = sample();
        let lazy: Vec<NodeId> = doc.preorder_iter().collect();
        assert_eq!(lazy, doc.preorder());
        // And it is restartable/independent per call.
        assert_eq!(doc.preorder_iter().count(), doc.node_count());
    }

    #[test]
    fn dewey_into_reuses_buffer() {
        let (doc, _) = sample();
        let mut buf = vec![9, 9, 9, 9];
        for id in doc.preorder_iter() {
            doc.dewey_into(id, &mut buf);
            assert_eq!(buf, doc.dewey(id), "node {id:?}");
        }
    }

    #[test]
    fn xml_round_trip_trims_whitespace() {
        let mut ab = Alphabet::new();
        let xml = parse_document("<a>\n  <b>text</b>\n  <c/>\n</a>").unwrap();
        let doc = Doc::from_xml(&xml.root, &mut ab, WhitespaceMode::Trim);
        // a, b, "text", c — indentation dropped.
        assert_eq!(doc.node_count(), 4);
        let back = doc.to_xml(&ab);
        assert_eq!(back.child_elements().count(), 2);
    }

    #[test]
    fn xml_import_preserve_keeps_whitespace() {
        let mut ab = Alphabet::new();
        let xml = parse_document("<a>\n  <b>text</b>\n  <c/>\n</a>").unwrap();
        let doc = Doc::from_xml(&xml.root, &mut ab, WhitespaceMode::Preserve);
        // a, ws, b, "text", ws, c, ws.
        assert_eq!(doc.node_count(), 7);
        let root = doc.root();
        assert_eq!(doc.validation_children(root).count(), 2);
    }

    #[test]
    fn edits_on_arena() {
        let (mut doc, mut ab) = sample();
        let comment = ab.intern("comment");
        let root = doc.root();
        let c = doc.insert_element(root, 0, comment);
        assert_eq!(doc.child_index(c), 0);
        assert_eq!(doc.dewey(doc.children(root)[1]), vec![1]);
        doc.remove_leaf(c);
        assert_eq!(doc.children(root).len(), 2);

        let q1 = doc.children(doc.children(root)[0])[0];
        let t = doc.children(q1)[0];
        doc.set_text(t, "9");
        assert_eq!(doc.text(t), Some("9"));
    }

    #[test]
    fn subtree_size() {
        let (doc, _) = sample();
        assert_eq!(doc.subtree_size(doc.root()), 7);
        let i1 = doc.children(doc.root())[0];
        assert_eq!(doc.subtree_size(i1), 3);
    }

    #[test]
    #[should_panic(expected = "only leaves")]
    fn remove_non_leaf_panics() {
        let (mut doc, _) = sample();
        let i1 = doc.children(doc.root())[0];
        doc.remove_leaf(i1);
    }
}
