//! Edits and the Δ-encoded tree of §3.3.
//!
//! The paper's update model: relabel a node, insert a new leaf, delete a
//! leaf. Updates are encoded *in place*: a [`DeltaDoc`] is the edited tree
//! `T'` where each node carries a [`DeltaState`] playing the role of the
//! `Δ_b^a` labels — `Relabeled{old: a}` is `Δ_b^a`, `Inserted` is `Δ_b^ε`,
//! `Deleted` is `Δ_ε^a`. Deleted leaves stay in the child list (they
//! contribute to `Proj_old`); discarding them and dropping the Δ marks
//! yields the post-edit document.
//!
//! Every edit is simultaneously recorded in a [`ModTrie`] keyed by Dewey
//! numbers, giving the validator its `modified(v)` oracle.

use crate::modtrie::ModTrie;
use crate::tree::{Doc, NodeId, NodeKind};
use schemacast_regex::Sym;
use std::fmt;

/// One update operation on an ordered labeled tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Replace the element tag of `node` with `label` (the paper's "modify
    /// the label of a specified node").
    Relabel {
        /// The element to relabel.
        node: NodeId,
        /// The new tag.
        label: Sym,
    },
    /// Insert a new element leaf at `position` within `parent`'s child list
    /// (covers the paper's insert-before / insert-after / first-child).
    InsertElement {
        /// Parent element.
        parent: NodeId,
        /// Index in the current child list (deleted placeholders included).
        position: usize,
        /// Tag of the new leaf.
        label: Sym,
    },
    /// Insert a new text (χ) leaf.
    InsertText {
        /// Parent element.
        parent: NodeId,
        /// Index in the current child list.
        position: usize,
        /// The simple value.
        text: String,
    },
    /// Delete a leaf (or a node whose remaining children are all already
    /// deleted).
    DeleteLeaf {
        /// The node to delete.
        node: NodeId,
    },
    /// Replace the payload of a text node (a `Δ_χ^χ` modification).
    SetText {
        /// The text node.
        node: NodeId,
        /// The new simple value.
        text: String,
    },
}

/// Per-node Δ-state of an edited tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaState {
    /// Untouched by any edit (its *subtree* may still contain edits).
    #[default]
    Unchanged,
    /// `Δ_b^a`: label changed; `old` is the original tag.
    Relabeled {
        /// The pre-edit tag.
        old: Sym,
    },
    /// `Δ_b^ε`: node did not exist in the original tree.
    Inserted,
    /// `Δ_ε^a`: node removed; retained as a placeholder.
    Deleted,
    /// A text node whose value changed (`Δ_χ^χ`).
    TextChanged,
}

/// The projection of a node label into the old or new document
/// (the paper's `Proj_old` / `Proj_new`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjLabel {
    /// An element tag from Σ.
    Elem(Sym),
    /// The χ label of character data.
    Chi,
}

/// An error applying an [`Edit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// Deleting a node that still has live (non-deleted) children.
    DeleteNonLeaf(NodeId),
    /// Deleting the document root.
    DeleteRoot,
    /// Relabeling a text node (use [`Edit::SetText`]).
    RelabelText(NodeId),
    /// Setting text on an element node.
    SetTextOnElement(NodeId),
    /// Editing a node that was already deleted.
    EditDeleted(NodeId),
    /// Insert position past the end of the child list.
    PositionOutOfRange {
        /// Target parent.
        parent: NodeId,
        /// Requested position.
        position: usize,
        /// Current child count.
        len: usize,
    },
    /// Inserting under a text node.
    TextParent(NodeId),
    /// Inserting under a deleted node.
    DeletedParent(NodeId),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::DeleteNonLeaf(n) => {
                write!(f, "node {n:?} has live children and cannot be deleted")
            }
            EditError::DeleteRoot => write!(f, "the document root cannot be deleted"),
            EditError::RelabelText(n) => write!(f, "node {n:?} is a text node; use SetText"),
            EditError::SetTextOnElement(n) => write!(f, "node {n:?} is an element, not text"),
            EditError::EditDeleted(n) => write!(f, "node {n:?} was already deleted"),
            EditError::PositionOutOfRange {
                parent,
                position,
                len,
            } => write!(
                f,
                "position {position} out of range for parent {parent:?} with {len} children"
            ),
            EditError::TextParent(n) => write!(f, "text node {n:?} cannot have children"),
            EditError::DeletedParent(n) => write!(f, "deleted node {n:?} cannot receive children"),
        }
    }
}

impl std::error::Error for EditError {}

/// A Δ-encoded edited document: the tree `T'`, per-node Δ-states, and the
/// modification trie.
#[derive(Debug, Clone)]
pub struct DeltaDoc {
    doc: Doc,
    delta: Vec<DeltaState>,
    trie: ModTrie,
    /// Reusable Dewey-path buffer: edits mark the trie by path, and a long
    /// script would otherwise allocate one `Vec` per edit.
    path_buf: Vec<u32>,
}

impl DeltaDoc {
    /// Starts an edit session over a document (takes ownership; the
    /// original can be kept by cloning first).
    pub fn new(doc: Doc) -> DeltaDoc {
        let delta = vec![DeltaState::Unchanged; doc.node_count()];
        DeltaDoc {
            doc,
            delta,
            trie: ModTrie::new(),
            path_buf: Vec::new(),
        }
    }

    /// Marks `node`'s Dewey path in the trie through the reusable buffer.
    fn mark_node(&mut self, node: NodeId) {
        self.doc.dewey_into(node, &mut self.path_buf);
        self.trie.mark(&self.path_buf);
    }

    /// The edited tree (deleted placeholders included).
    pub fn doc(&self) -> &Doc {
        &self.doc
    }

    /// The modification trie (`modified(v)` oracle).
    pub fn trie(&self) -> &ModTrie {
        &self.trie
    }

    /// The Δ-state of a node.
    pub fn delta(&self, id: NodeId) -> DeltaState {
        self.delta
            .get(id.index())
            .copied()
            .unwrap_or(DeltaState::Unchanged)
    }

    /// Whether any edit was recorded anywhere.
    pub fn any_modifications(&self) -> bool {
        !self.trie.is_empty()
    }

    /// `Proj_new`: the node's label in the edited document, or `None` if the
    /// node was deleted.
    pub fn proj_new(&self, id: NodeId) -> Option<ProjLabel> {
        if matches!(self.delta(id), DeltaState::Deleted) {
            return None;
        }
        Some(match self.doc.kind(id) {
            NodeKind::Element(s) => ProjLabel::Elem(*s),
            NodeKind::Text(_) => ProjLabel::Chi,
        })
    }

    /// `Proj_old`: the node's label in the original document, or `None` if
    /// the node was inserted by an edit.
    pub fn proj_old(&self, id: NodeId) -> Option<ProjLabel> {
        match self.delta(id) {
            DeltaState::Inserted => None,
            DeltaState::Relabeled { old } => Some(ProjLabel::Elem(old)),
            _ => Some(match self.doc.kind(id) {
                NodeKind::Element(s) => ProjLabel::Elem(*s),
                NodeKind::Text(_) => ProjLabel::Chi,
            }),
        }
    }

    /// Children as they stand in the edited document (deleted placeholders
    /// filtered out).
    pub fn new_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.doc
            .children(id)
            .iter()
            .copied()
            .filter(|&c| !matches!(self.delta(c), DeltaState::Deleted))
    }

    /// Children as they stood in the original document (inserted nodes
    /// filtered out).
    pub fn old_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.doc
            .children(id)
            .iter()
            .copied()
            .filter(|&c| !matches!(self.delta(c), DeltaState::Inserted))
    }

    /// Applies one edit, updating tree, Δ-states, and trie.
    pub fn apply(&mut self, edit: &Edit) -> Result<(), EditError> {
        match edit {
            Edit::Relabel { node, label } => self.relabel(*node, *label),
            Edit::InsertElement {
                parent,
                position,
                label,
            } => self.insert(*parent, *position, Insertion::Element(*label)),
            Edit::InsertText {
                parent,
                position,
                text,
            } => self.insert(*parent, *position, Insertion::Text(text.clone())),
            Edit::DeleteLeaf { node } => self.delete(*node),
            Edit::SetText { node, text } => self.set_text(*node, text.clone()),
        }
    }

    /// Applies a whole script, stopping at the first failure.
    pub fn apply_all(&mut self, edits: &[Edit]) -> Result<(), EditError> {
        for e in edits {
            self.apply(e)?;
        }
        Ok(())
    }

    fn relabel(&mut self, node: NodeId, label: Sym) -> Result<(), EditError> {
        if self.delta(node) == DeltaState::Deleted {
            return Err(EditError::EditDeleted(node));
        }
        let old = match self.doc.kind(node) {
            NodeKind::Element(s) => *s,
            NodeKind::Text(_) => return Err(EditError::RelabelText(node)),
        };
        self.doc.set_label(node, label);
        self.delta[node.index()] = match self.delta(node) {
            DeltaState::Inserted => DeltaState::Inserted,
            DeltaState::Relabeled { old: orig } => DeltaState::Relabeled { old: orig },
            _ => DeltaState::Relabeled { old },
        };
        self.mark_node(node);
        Ok(())
    }

    fn set_text(&mut self, node: NodeId, text: String) -> Result<(), EditError> {
        if self.delta(node) == DeltaState::Deleted {
            return Err(EditError::EditDeleted(node));
        }
        if !matches!(self.doc.kind(node), NodeKind::Text(_)) {
            return Err(EditError::SetTextOnElement(node));
        }
        self.doc.set_text(node, text);
        if !matches!(self.delta(node), DeltaState::Inserted) {
            self.delta[node.index()] = DeltaState::TextChanged;
        }
        self.mark_node(node);
        Ok(())
    }

    fn insert(
        &mut self,
        parent: NodeId,
        position: usize,
        what: Insertion,
    ) -> Result<(), EditError> {
        if self.delta(parent) == DeltaState::Deleted {
            return Err(EditError::DeletedParent(parent));
        }
        if !matches!(self.doc.kind(parent), NodeKind::Element(_)) {
            return Err(EditError::TextParent(parent));
        }
        let len = self.doc.children(parent).len();
        if position > len {
            return Err(EditError::PositionOutOfRange {
                parent,
                position,
                len,
            });
        }
        let parent_path = self.doc.dewey(parent);
        // Later siblings' Dewey numbers shift up by one.
        self.trie.shift_children(&parent_path, position as u32, 1);
        let id = match what {
            Insertion::Element(label) => self.doc.insert_element(parent, position, label),
            Insertion::Text(text) => self.doc.insert_text(parent, position, text),
        };
        if id.index() >= self.delta.len() {
            self.delta.resize(id.index() + 1, DeltaState::Unchanged);
        }
        self.delta[id.index()] = DeltaState::Inserted;
        let mut path = parent_path;
        path.push(position as u32);
        self.trie.mark(&path);
        Ok(())
    }

    fn delete(&mut self, node: NodeId) -> Result<(), EditError> {
        if self.delta(node) == DeltaState::Deleted {
            return Err(EditError::EditDeleted(node));
        }
        if self.doc.parent(node).is_none() {
            return Err(EditError::DeleteRoot);
        }
        // The paper deletes *leaves*; we additionally allow a node whose
        // remaining children are all deleted placeholders (the natural state
        // after deleting its children one by one).
        if self.new_children(node).next().is_some() {
            return Err(EditError::DeleteNonLeaf(node));
        }
        if matches!(self.delta(node), DeltaState::Inserted) {
            // Insert-then-delete cancels out: physically remove the node.
            let parent_path = self.doc.dewey(self.doc.parent(node).expect("not root"));
            let pos = self.doc.child_index(node) as u32;
            // Drop every mark recorded at or under the node, then shift.
            let mut node_path = parent_path.clone();
            node_path.push(pos);
            self.trie.unmark(&node_path);
            // Descendant marks of an inserted leaf subtree: unmark those too
            // by removing the subtree's trie branch (all its nodes are
            // Inserted and physically removed below).
            for desc in self.subtree_nodes(node) {
                self.doc.dewey_into(desc, &mut self.path_buf);
                self.trie.unmark(&self.path_buf);
            }
            self.remove_subtree(node);
            self.trie.shift_children(&parent_path, pos + 1, -1);
            return Ok(());
        }
        self.delta[node.index()] = DeltaState::Deleted;
        self.mark_node(node);
        Ok(())
    }

    fn subtree_nodes(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.doc.children(n).iter().copied());
        }
        out
    }

    fn remove_subtree(&mut self, node: NodeId) {
        // Children of an inserted node being removed are themselves
        // inserted leaves-at-insertion-time; detach bottom-up.
        let children: Vec<NodeId> = self.doc.children(node).to_vec();
        for c in children {
            self.remove_subtree(c);
        }
        self.doc.remove_leaf(node);
    }

    /// Materializes the post-edit document: deleted placeholders dropped,
    /// Δ-states forgotten. Also returns the node-id mapping from the edited
    /// arena into the new compact arena.
    pub fn committed(&self) -> Doc {
        fn copy(src: &DeltaDoc, from: NodeId, dst: &mut Doc, to: NodeId) {
            for c in src.doc.children(from).iter().copied() {
                if matches!(src.delta(c), DeltaState::Deleted) {
                    continue;
                }
                match src.doc.kind(c) {
                    NodeKind::Element(s) => {
                        let id = dst.add_element(to, *s);
                        copy(src, c, dst, id);
                    }
                    NodeKind::Text(t) => {
                        dst.add_text(to, t.clone());
                    }
                }
            }
        }
        let root_label = self.doc.label(self.doc.root()).expect("root is an element");
        let mut out = Doc::new(root_label);
        let out_root = out.root();
        copy(self, self.doc.root(), &mut out, out_root);
        out
    }
}

enum Insertion {
    Element(Sym),
    Text(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;

    fn sample() -> (DeltaDoc, Alphabet, Vec<NodeId>) {
        let mut ab = Alphabet::new();
        let po = ab.intern("po");
        let item = ab.intern("item");
        let mut doc = Doc::new(po);
        let i0 = doc.add_element(doc.root(), item);
        let i1 = doc.add_element(doc.root(), item);
        let i2 = doc.add_element(doc.root(), item);
        let nodes = vec![doc.root(), i0, i1, i2];
        (DeltaDoc::new(doc), ab, nodes)
    }

    #[test]
    fn relabel_records_old_label() {
        let (mut dd, mut ab, nodes) = sample();
        let gift = ab.intern("gift");
        dd.apply(&Edit::Relabel {
            node: nodes[1],
            label: gift,
        })
        .unwrap();
        assert_eq!(
            dd.delta(nodes[1]),
            DeltaState::Relabeled {
                old: ab.lookup("item").unwrap()
            }
        );
        assert_eq!(dd.proj_new(nodes[1]), Some(ProjLabel::Elem(gift)));
        assert_eq!(
            dd.proj_old(nodes[1]),
            Some(ProjLabel::Elem(ab.lookup("item").unwrap()))
        );
        assert!(dd.trie().subtree_modified(&[0]));
        assert!(!dd.trie().subtree_modified(&[1]));

        // Relabeling again keeps the *original* old label.
        let other = ab.intern("other");
        dd.apply(&Edit::Relabel {
            node: nodes[1],
            label: other,
        })
        .unwrap();
        assert_eq!(
            dd.delta(nodes[1]),
            DeltaState::Relabeled {
                old: ab.lookup("item").unwrap()
            }
        );
    }

    #[test]
    fn delete_keeps_placeholder() {
        let (mut dd, _ab, nodes) = sample();
        dd.apply(&Edit::DeleteLeaf { node: nodes[2] }).unwrap();
        assert_eq!(dd.delta(nodes[2]), DeltaState::Deleted);
        assert_eq!(dd.proj_new(nodes[2]), None);
        assert!(dd.proj_old(nodes[2]).is_some());
        // new view: two items; old view: three.
        assert_eq!(dd.new_children(dd.doc().root()).count(), 2);
        assert_eq!(dd.old_children(dd.doc().root()).count(), 3);
        // committed document drops the placeholder.
        assert_eq!(dd.committed().children(NodeId(0)).len(), 2);
    }

    #[test]
    fn insert_shifts_sibling_marks() {
        let (mut dd, mut ab, nodes) = sample();
        let gift = ab.intern("gift");
        // Mark item at position 2 (relabel), then insert at position 0.
        dd.apply(&Edit::Relabel {
            node: nodes[3],
            label: gift,
        })
        .unwrap();
        assert!(dd.trie().subtree_modified(&[2]));
        dd.apply(&Edit::InsertElement {
            parent: nodes[0],
            position: 0,
            label: gift,
        })
        .unwrap();
        // The relabeled node now sits at position 3.
        assert!(dd.trie().subtree_modified(&[3]));
        assert!(!dd.trie().subtree_modified(&[2]));
        assert!(dd.trie().subtree_modified(&[0])); // the insertion itself
        assert_eq!(dd.new_children(nodes[0]).count(), 4);
        assert_eq!(dd.old_children(nodes[0]).count(), 3);
    }

    #[test]
    fn insert_then_delete_cancels() {
        let (mut dd, mut ab, nodes) = sample();
        let gift = ab.intern("gift");
        dd.apply(&Edit::InsertElement {
            parent: nodes[0],
            position: 1,
            label: gift,
        })
        .unwrap();
        let inserted = dd.doc().children(nodes[0])[1];
        dd.apply(&Edit::DeleteLeaf { node: inserted }).unwrap();
        assert!(!dd.any_modifications());
        assert_eq!(dd.doc().children(nodes[0]).len(), 3);
        assert_eq!(dd.committed().children(NodeId(0)).len(), 3);
    }

    #[test]
    fn delete_errors() {
        let (mut dd, _ab, nodes) = sample();
        assert_eq!(
            dd.apply(&Edit::DeleteLeaf { node: nodes[0] }),
            Err(EditError::DeleteRoot)
        );
        dd.apply(&Edit::DeleteLeaf { node: nodes[1] }).unwrap();
        assert_eq!(
            dd.apply(&Edit::DeleteLeaf { node: nodes[1] }),
            Err(EditError::EditDeleted(nodes[1]))
        );
    }

    #[test]
    fn delete_parent_after_children() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let mut doc = Doc::new(a);
        let child = doc.add_element(doc.root(), b);
        let grand = doc.add_element(child, b);
        let mut dd = DeltaDoc::new(doc);
        // Parent with a live child cannot be deleted…
        assert_eq!(
            dd.apply(&Edit::DeleteLeaf { node: child }),
            Err(EditError::DeleteNonLeaf(child))
        );
        // …but after the child is deleted, it can.
        dd.apply(&Edit::DeleteLeaf { node: grand }).unwrap();
        dd.apply(&Edit::DeleteLeaf { node: child }).unwrap();
        assert_eq!(dd.new_children(dd.doc().root()).count(), 0);
        assert_eq!(dd.committed().node_count(), 1);
    }

    #[test]
    fn set_text_marks_chi_change() {
        let mut ab = Alphabet::new();
        let q = ab.intern("quantity");
        let mut doc = Doc::new(q);
        let t = doc.add_text(doc.root(), "42");
        let mut dd = DeltaDoc::new(doc);
        dd.apply(&Edit::SetText {
            node: t,
            text: "199".into(),
        })
        .unwrap();
        assert_eq!(dd.delta(t), DeltaState::TextChanged);
        assert_eq!(dd.proj_new(t), Some(ProjLabel::Chi));
        assert_eq!(dd.proj_old(t), Some(ProjLabel::Chi));
        assert_eq!(dd.doc().text(t), Some("199"));
        assert!(dd.trie().subtree_modified(&[]));
    }

    #[test]
    fn committed_round_trip_no_edits() {
        let (dd, _ab, _) = sample();
        let out = dd.committed();
        assert_eq!(out.node_count(), 4);
        assert_eq!(out.children(out.root()).len(), 3);
    }
}
