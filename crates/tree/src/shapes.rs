//! Edit-kind extraction from Δ scripts (static-analysis front end).
//!
//! The static update-safety analyzer classifies edits by *shape*: which
//! node's child list changes (the **site**), and whether the change is an
//! insert, delete, or relabel of one element label. [`extract_shapes`]
//! recovers those shapes from a plain [`Edit`] script against the original
//! (pre-edit) document — without applying anything — and enforces the
//! conditions under which the engine's static fast path is sound:
//!
//! * every edit's shape is supported (element insert/delete/relabel; text
//!   edits and root relabels are not),
//! * every edit would apply cleanly (positions in range, deletes target
//!   childless non-root elements, nodes pre-exist in the document),
//! * one edit per site (two edits on the same child list compose into a
//!   multi-symbol rewrite the per-edit verdicts don't cover), and
//! * sites are non-nested (no site inside another site's subtree — the
//!   fast path treats each edited subtree as an independent unit).
//!
//! Any violation yields `None`, sending the script down the dynamic
//! Δ-revalidation path, which handles every case (including edits that
//! error when applied).

use crate::edit::Edit;
use crate::tree::{Doc, NodeId, NodeKind};
use schemacast_regex::Sym;

/// The shape of one edit, abstracted from positions to labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditShapeKind {
    /// A new element leaf labeled `ℓ` enters the site's child list.
    Insert(Sym),
    /// An element leaf labeled `ℓ` leaves the site's child list.
    Delete(Sym),
    /// A child's tag changes `from → to`; its subtree stays.
    Relabel {
        /// The pre-edit tag.
        from: Sym,
        /// The post-edit tag.
        to: Sym,
    },
}

/// One edit reduced to its site and shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditShape {
    /// The node whose child list the edit modifies.
    pub site: NodeId,
    /// What happens to that child list.
    pub kind: EditShapeKind,
}

/// Whether `node` exists in `doc` and is an element.
fn live_element(doc: &Doc, node: NodeId) -> bool {
    node.index() < doc.node_count() && matches!(doc.kind(node), NodeKind::Element(_))
}

/// Reduces an edit script over `doc` to one [`EditShape`] per edit, or
/// `None` if any edit is unsupported or the script breaks the
/// one-edit-per-site / non-nested-sites conditions (see module docs).
pub fn extract_shapes(doc: &Doc, edits: &[Edit]) -> Option<Vec<EditShape>> {
    let mut shapes: Vec<EditShape> = Vec::with_capacity(edits.len());
    for edit in edits {
        let shape = match edit {
            Edit::Relabel { node, label } => {
                if !live_element(doc, *node) {
                    return None;
                }
                // Relabeling the root changes ℛ-typing, not a content word.
                let site = doc.parent(*node)?;
                EditShape {
                    site,
                    kind: EditShapeKind::Relabel {
                        from: doc.label(*node)?,
                        to: *label,
                    },
                }
            }
            Edit::InsertElement {
                parent,
                position,
                label,
            } => {
                if !live_element(doc, *parent) || *position > doc.children(*parent).len() {
                    return None;
                }
                EditShape {
                    site: *parent,
                    kind: EditShapeKind::Insert(*label),
                }
            }
            Edit::DeleteLeaf { node } => {
                // Only true element leaves: a text child (even whitespace)
                // would make the dynamic apply fail, and deleting text is
                // outside the word model anyway.
                if !live_element(doc, *node) || !doc.children(*node).is_empty() {
                    return None;
                }
                let site = doc.parent(*node)?;
                EditShape {
                    site,
                    kind: EditShapeKind::Delete(doc.label(*node)?),
                }
            }
            Edit::InsertText { .. } | Edit::SetText { .. } => return None,
        };
        shapes.push(shape);
    }

    // One edit per site.
    let mut sites: Vec<NodeId> = shapes.iter().map(|s| s.site).collect();
    sites.sort_unstable();
    if sites.windows(2).any(|w| w[0] == w[1]) {
        return None;
    }
    // Non-nested: no site has another site as a strict ancestor. With sites
    // deduplicated above, walking each site's parent chain suffices.
    let site_set: std::collections::HashSet<NodeId> = sites.iter().copied().collect();
    for &site in &sites {
        let mut cur = site;
        while let Some(p) = doc.parent(cur) {
            if site_set.contains(&p) {
                return None;
            }
            cur = p;
        }
    }
    Some(shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::Alphabet;

    fn sample() -> (Doc, Alphabet, Vec<NodeId>) {
        let mut ab = Alphabet::new();
        let root = ab.intern("root");
        let branch = ab.intern("branch");
        let leaf = ab.intern("leaf");
        let mut doc = Doc::new(root);
        let b0 = doc.add_element(doc.root(), branch);
        let b1 = doc.add_element(doc.root(), branch);
        let l0 = doc.add_element(b0, leaf);
        let l1 = doc.add_element(b1, leaf);
        let nodes = vec![doc.root(), b0, b1, l0, l1];
        (doc, ab, nodes)
    }

    #[test]
    fn supported_script_extracts_sites_and_kinds() {
        let (doc, mut ab, n) = sample();
        let extra = ab.intern("extra");
        let leaf = ab.lookup("leaf").unwrap();
        let shapes = extract_shapes(
            &doc,
            &[
                Edit::InsertElement {
                    parent: n[1],
                    position: 0,
                    label: extra,
                },
                Edit::DeleteLeaf { node: n[4] },
            ],
        )
        .expect("supported");
        assert_eq!(
            shapes,
            vec![
                EditShape {
                    site: n[1],
                    kind: EditShapeKind::Insert(extra)
                },
                EditShape {
                    site: n[2],
                    kind: EditShapeKind::Delete(leaf)
                },
            ]
        );
    }

    #[test]
    fn relabel_site_is_the_parent() {
        let (doc, mut ab, n) = sample();
        let renamed = ab.intern("renamed");
        let branch = ab.lookup("branch").unwrap();
        let shapes = extract_shapes(
            &doc,
            &[Edit::Relabel {
                node: n[1],
                label: renamed,
            }],
        )
        .expect("supported");
        assert_eq!(shapes[0].site, n[0]);
        assert_eq!(
            shapes[0].kind,
            EditShapeKind::Relabel {
                from: branch,
                to: renamed
            }
        );
    }

    #[test]
    fn unsupported_edits_bail() {
        let (doc, mut ab, n) = sample();
        let x = ab.intern("x");
        // Root relabel.
        assert!(extract_shapes(
            &doc,
            &[Edit::Relabel {
                node: n[0],
                label: x
            }]
        )
        .is_none());
        // Text edit.
        assert!(extract_shapes(
            &doc,
            &[Edit::InsertText {
                parent: n[1],
                position: 0,
                text: "t".into()
            }]
        )
        .is_none());
        // Delete of a non-leaf.
        assert!(extract_shapes(&doc, &[Edit::DeleteLeaf { node: n[1] }]).is_none());
        // Out-of-range position.
        assert!(extract_shapes(
            &doc,
            &[Edit::InsertElement {
                parent: n[1],
                position: 5,
                label: x
            }]
        )
        .is_none());
        // Node id beyond the arena.
        assert!(extract_shapes(&doc, &[Edit::DeleteLeaf { node: NodeId(99) }]).is_none());
    }

    #[test]
    fn one_edit_per_site_enforced() {
        let (doc, mut ab, n) = sample();
        let x = ab.intern("x");
        let two_on_same_site = [
            Edit::InsertElement {
                parent: n[1],
                position: 0,
                label: x,
            },
            Edit::DeleteLeaf { node: n[3] },
        ];
        assert!(extract_shapes(&doc, &two_on_same_site).is_none());
    }

    #[test]
    fn nested_sites_rejected() {
        let (doc, mut ab, n) = sample();
        let x = ab.intern("x");
        // Site n[0] (root) is an ancestor of site n[1].
        let nested = [
            Edit::InsertElement {
                parent: n[0],
                position: 0,
                label: x,
            },
            Edit::InsertElement {
                parent: n[1],
                position: 0,
                label: x,
            },
        ];
        assert!(extract_shapes(&doc, &nested).is_none());
        // Disjoint subtrees are fine.
        let disjoint = [
            Edit::InsertElement {
                parent: n[1],
                position: 0,
                label: x,
            },
            Edit::InsertElement {
                parent: n[2],
                position: 0,
                label: x,
            },
        ];
        assert!(extract_shapes(&doc, &disjoint).is_some());
    }

    #[test]
    fn empty_script_is_trivially_supported() {
        let (doc, _ab, _) = sample();
        assert_eq!(extract_shapes(&doc, &[]), Some(vec![]));
    }
}
