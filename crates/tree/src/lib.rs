#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Ordered labeled trees, Dewey numbers, edits, and Δ-encoding.
//!
//! The document side of the revalidation system:
//!
//! * [`tree::Doc`] — an arena DOM over a shared label [`Alphabet`]
//!   (re-exported from `schemacast-regex`), with XML import/export.
//! * [`modtrie::ModTrie`] — the Dewey-number trie implementing the paper's
//!   `modified(v)` oracle (§3.3), navigable in parallel with the tree.
//! * [`edit`] — the update model (relabel / insert leaf / delete leaf /
//!   set text) and the Δ-encoded [`edit::DeltaDoc`].

pub mod edit;
pub mod modtrie;
pub mod shapes;
pub mod tree;

pub use edit::{DeltaDoc, DeltaState, Edit, EditError, ProjLabel};
pub use modtrie::{ModTrie, TrieCursor};
pub use schemacast_regex::{Alphabet, Sym};
pub use shapes::{extract_shapes, EditShape, EditShapeKind};
pub use tree::{Doc, NodeId, NodeKind, Preorder, WhitespaceMode};
