//! The modification trie of §3.3.
//!
//! The paper implements `modified(v)` — "has any part of the subtree rooted
//! at `v` been modified?" — by keeping every updated node in a trie indexed
//! by its Dewey decimal number, navigated *in parallel* with the XML tree
//! during validation. [`ModTrie`] is that structure; [`TrieCursor`] is the
//! parallel-navigation handle.
//!
//! Because edits shift the positions of later siblings, the trie supports
//! in-place key shifting ([`ModTrie::shift_children`]) so that recorded
//! paths always refer to positions in the *current* tree.

use std::collections::BTreeMap;

#[derive(Debug, Clone, Default)]
struct TrieNode {
    marked: bool,
    children: BTreeMap<u32, TrieNode>,
}

impl TrieNode {
    fn is_empty(&self) -> bool {
        !self.marked && self.children.is_empty()
    }
}

/// A trie over Dewey decimal numbers recording which nodes were modified.
#[derive(Debug, Clone, Default)]
pub struct ModTrie {
    root: TrieNode,
}

impl ModTrie {
    /// An empty trie (nothing modified).
    pub fn new() -> ModTrie {
        ModTrie::default()
    }

    /// Whether no modifications are recorded at all.
    pub fn is_empty(&self) -> bool {
        self.root.is_empty()
    }

    /// Records a modification at the node with Dewey number `path`.
    pub fn mark(&mut self, path: &[u32]) {
        let mut node = &mut self.root;
        for &step in path {
            node = node.children.entry(step).or_default();
        }
        node.marked = true;
    }

    /// Removes a mark (used when an inserted node is deleted again). Prunes
    /// now-empty trie branches.
    pub fn unmark(&mut self, path: &[u32]) {
        fn go(node: &mut TrieNode, path: &[u32]) {
            match path.split_first() {
                None => node.marked = false,
                Some((&step, rest)) => {
                    if let Some(child) = node.children.get_mut(&step) {
                        go(child, rest);
                        if child.is_empty() {
                            node.children.remove(&step);
                        }
                    }
                }
            }
        }
        go(&mut self.root, path);
    }

    /// `modified(v)` for the node with Dewey number `path`: whether any mark
    /// exists at `path` or below it.
    pub fn subtree_modified(&self, path: &[u32]) -> bool {
        let mut node = &self.root;
        for &step in path {
            match node.children.get(&step) {
                Some(child) => node = child,
                None => return false,
            }
        }
        node.marked || !node.children.is_empty()
    }

    /// Shifts the child keys of the trie node at `parent_path`: keys
    /// `≥ from_index` move by `delta`. Call with `delta = 1` after an
    /// insertion at `from_index` in the tree, `delta = -1` after a removal.
    pub fn shift_children(&mut self, parent_path: &[u32], from_index: u32, delta: i64) {
        let mut node = &mut self.root;
        for &step in parent_path {
            match node.children.get_mut(&step) {
                Some(child) => node = child,
                None => return, // nothing recorded below: nothing to shift
            }
        }
        if delta == 0 {
            return;
        }
        let moved: Vec<(u32, TrieNode)> = node
            .children
            .keys()
            .copied()
            .filter(|&k| k >= from_index)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|k| (k, node.children.remove(&k).expect("key present")))
            .collect();
        for (k, v) in moved {
            let nk = (k as i64 + delta)
                .try_into()
                .expect("shift produced a negative child index");
            node.children.insert(nk, v);
        }
    }

    /// A cursor positioned at the trie root, for navigation in parallel
    /// with a tree traversal.
    pub fn cursor(&self) -> TrieCursor<'_> {
        TrieCursor {
            node: Some(&self.root),
        }
    }
}

/// A position in the trie mirroring a position in the document tree.
///
/// A cursor may be *vacant* (no trie node exists for the tree position),
/// meaning nothing below the current tree node was modified.
#[derive(Debug, Clone, Copy)]
pub struct TrieCursor<'a> {
    node: Option<&'a TrieNode>,
}

impl<'a> TrieCursor<'a> {
    /// Descends to child `index`, mirroring a descent in the tree.
    pub fn child(&self, index: u32) -> TrieCursor<'a> {
        TrieCursor {
            node: self.node.and_then(|n| n.children.get(&index)),
        }
    }

    /// `modified(v)` at the mirrored tree node: a mark here or below.
    pub fn subtree_modified(&self) -> bool {
        self.node
            .is_some_and(|n| n.marked || !n.children.is_empty())
    }

    /// Whether the mirrored node itself was modified.
    pub fn self_modified(&self) -> bool {
        self.node.is_some_and(|n| n.marked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut t = ModTrie::new();
        assert!(t.is_empty());
        t.mark(&[0, 2, 1]);
        assert!(t.subtree_modified(&[]));
        assert!(t.subtree_modified(&[0]));
        assert!(t.subtree_modified(&[0, 2]));
        assert!(t.subtree_modified(&[0, 2, 1]));
        assert!(!t.subtree_modified(&[1]));
        assert!(!t.subtree_modified(&[0, 1]));
        // A *descendant* of a marked node counts as unmodified (marks apply
        // to the node itself, not below it).
        assert!(!t.subtree_modified(&[0, 2, 1, 0]));
    }

    #[test]
    fn root_mark() {
        let mut t = ModTrie::new();
        t.mark(&[]);
        assert!(t.subtree_modified(&[]));
        assert!(!t.subtree_modified(&[0]));
    }

    #[test]
    fn unmark_prunes() {
        let mut t = ModTrie::new();
        t.mark(&[1, 1]);
        t.mark(&[1, 2]);
        t.unmark(&[1, 1]);
        assert!(!t.subtree_modified(&[1, 1]));
        assert!(t.subtree_modified(&[1, 2]));
        t.unmark(&[1, 2]);
        assert!(t.is_empty());
    }

    #[test]
    fn shift_on_insert_and_remove() {
        let mut t = ModTrie::new();
        t.mark(&[0, 3]);
        t.mark(&[0, 5]);
        t.mark(&[0, 1]);
        // Insert at position 2 under [0]: keys ≥ 2 shift up.
        t.shift_children(&[0], 2, 1);
        assert!(t.subtree_modified(&[0, 1]));
        assert!(!t.subtree_modified(&[0, 3]));
        assert!(t.subtree_modified(&[0, 4]));
        assert!(t.subtree_modified(&[0, 6]));
        // Remove at position 4: keys ≥ 5 shift down.
        t.shift_children(&[0], 5, -1);
        assert!(t.subtree_modified(&[0, 5]));
        assert!(!t.subtree_modified(&[0, 6]));
    }

    #[test]
    fn shift_missing_path_is_noop() {
        let mut t = ModTrie::new();
        t.mark(&[2]);
        t.shift_children(&[0, 1], 0, 1);
        assert!(t.subtree_modified(&[2]));
    }

    #[test]
    fn cursor_parallel_navigation() {
        let mut t = ModTrie::new();
        t.mark(&[1, 0]);
        let c = t.cursor();
        assert!(c.subtree_modified());
        assert!(!c.self_modified());
        let c0 = c.child(0);
        assert!(!c0.subtree_modified());
        let c1 = c.child(1);
        assert!(c1.subtree_modified());
        let c10 = c1.child(0);
        assert!(c10.self_modified());
        assert!(c10.subtree_modified());
        assert!(!c10.child(4).subtree_modified());
    }

    #[test]
    fn cursor_matches_path_queries() {
        let mut t = ModTrie::new();
        for path in [vec![0u32, 1], vec![2], vec![2, 3, 4]] {
            t.mark(&path);
        }
        // Exhaustively compare cursor vs. subtree_modified on shallow paths.
        for a in 0..4u32 {
            for b in 0..5u32 {
                let by_path = t.subtree_modified(&[a, b]);
                let by_cursor = t.cursor().child(a).child(b).subtree_modified();
                assert_eq!(by_path, by_cursor, "path [{a},{b}]");
            }
        }
    }
}
