//! Figure 3b — Experiment 2: the source schema widens `quantity` to
//! `maxExclusive=200`; casting back to Figure 2 (`=100`) forces a value
//! check per item, so both series are linear — the cast is ~30% faster in
//! the paper by skipping subsumed subtrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemacast_bench::{Experiment2, ITEM_COUNTS};
use schemacast_core::CastOptions;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fixture = Experiment2::fixture();
    fixture.assert_precondition();
    let cast = fixture.context(CastOptions::default());
    let full = fixture.full();

    let mut group = c.benchmark_group("fig3b_experiment2");
    for (i, &n) in ITEM_COUNTS.iter().enumerate() {
        let doc = &fixture.docs[i].1;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("schema_cast", n), doc, |b, doc| {
            b.iter(|| black_box(cast.validate(doc)))
        });
        group.bench_with_input(BenchmarkId::new("full_validation", n), doc, |b, doc| {
            b.iter(|| black_box(full.validate(doc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
