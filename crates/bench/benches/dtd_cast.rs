//! §3.4 — DTD label-indexed cast validation: with a label index, only
//! elements whose type pair is undecided are checked. Compared against the
//! top-down tree cast and full validation on a DTD version of the
//! purchase-order evolution. Index construction is benchmarked separately
//! (a database would maintain it anyway).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemacast_core::{CastContext, CastOptions, DtdCastValidator, FullValidator, LabelIndex};
use schemacast_regex::Alphabet;
use schemacast_schema::parse_dtd;
use schemacast_tree::Doc;
use std::hint::black_box;

const SRC: &str = r#"
  <!ELEMENT purchaseOrder (shipTo, billTo?, items)>
  <!ELEMENT shipTo (name, street, city)>
  <!ELEMENT billTo (name, street, city)>
  <!ELEMENT items (item*)>
  <!ELEMENT item (productName, quantity)>
  <!ELEMENT productName (#PCDATA)>
  <!ELEMENT quantity (#PCDATA)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT street (#PCDATA)>
  <!ELEMENT city (#PCDATA)>
"#;
const TGT: &str = r#"
  <!ELEMENT purchaseOrder (shipTo, billTo, items)>
  <!ELEMENT shipTo (name, street, city)>
  <!ELEMENT billTo (name, street, city)>
  <!ELEMENT items (item*)>
  <!ELEMENT item (productName, quantity)>
  <!ELEMENT productName (#PCDATA)>
  <!ELEMENT quantity (#PCDATA)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT street (#PCDATA)>
  <!ELEMENT city (#PCDATA)>
"#;

fn build_doc(ab: &mut Alphabet, items: usize) -> Doc {
    let po = ab.intern("purchaseOrder");
    let labels: Vec<_> = [
        "shipTo",
        "billTo",
        "items",
        "item",
        "productName",
        "quantity",
    ]
    .iter()
    .map(|l| ab.intern(l))
    .collect();
    let addr_kids: Vec<_> = ["name", "street", "city"]
        .iter()
        .map(|l| ab.intern(l))
        .collect();
    let mut d = Doc::new(po);
    for &a in &labels[..2] {
        let e = d.add_element(d.root(), a);
        for &k in &addr_kids {
            let c = d.add_element(e, k);
            d.add_text(c, "v");
        }
    }
    let il = d.add_element(d.root(), labels[2]);
    for i in 0..items {
        let it = d.add_element(il, labels[3]);
        let p = d.add_element(it, labels[4]);
        d.add_text(p, "Widget");
        let q = d.add_element(it, labels[5]);
        d.add_text(q, (1 + i % 99).to_string());
    }
    d
}

fn bench(c: &mut Criterion) {
    let mut ab = Alphabet::new();
    let source = parse_dtd(SRC, Some("purchaseOrder"), &mut ab).expect("source DTD");
    let target = parse_dtd(TGT, Some("purchaseOrder"), &mut ab).expect("target DTD");
    let ctx = CastContext::with_options(&source, &target, &ab, CastOptions::default());
    let dtd = DtdCastValidator::new(&ctx, ab.len()).expect("DTD style");
    let full = FullValidator::new(&target);

    let mut group = c.benchmark_group("dtd_cast");
    for &n in &[100usize, 1000] {
        let doc = build_doc(&mut ab, n);
        assert!(source.accepts_document(&doc));
        let index = LabelIndex::build(&doc);
        assert!(dtd.validate(&doc, &index).is_valid());

        group.bench_with_input(
            BenchmarkId::new("label_indexed", n),
            &(&doc, &index),
            |b, (doc, index)| b.iter(|| black_box(dtd.validate(doc, index))),
        );
        group.bench_with_input(BenchmarkId::new("index_build", n), &doc, |b, doc| {
            b.iter(|| black_box(LabelIndex::build(doc)))
        });
        group.bench_with_input(BenchmarkId::new("tree_cast", n), &doc, |b, doc| {
            b.iter(|| black_box(ctx.validate(doc)))
        });
        group.bench_with_input(BenchmarkId::new("full_validation", n), &doc, |b, doc| {
            b.iter(|| black_box(full.validate(doc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
