//! Static preprocessing costs: the paper's method shifts work from
//! per-document validation to a once-per-schema-pair phase. This bench
//! quantifies that phase: XSD compilation, `R_sub`/`R_dis` fixpoints, and
//! product-IDA construction — all independent of document size.

use criterion::{criterion_group, criterion_main, Criterion};
use schemacast_automata::ProductIda;
use schemacast_core::TypeRelations;
use schemacast_regex::Alphabet;
use schemacast_schema::xsd::parse_xsd;
use schemacast_workload::purchase_order as po;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let src_text = po::source_xsd();
    let tgt_text = po::target_xsd();

    c.bench_function("preprocess/xsd_compile", |b| {
        b.iter(|| {
            let mut ab = Alphabet::new();
            black_box(parse_xsd(&src_text, &mut ab).expect("compiles"))
        })
    });

    let mut ab = Alphabet::new();
    let source = parse_xsd(&src_text, &mut ab).expect("source");
    let target = parse_xsd(&tgt_text, &mut ab).expect("target");

    c.bench_function("preprocess/relations_fixpoints", |b| {
        b.iter(|| black_box(TypeRelations::compute(&source, &target, &ab)))
    });

    // Product IDA of the PO content models (the pair Experiment 1 needs).
    let s_po = source.type_by_name("POType").expect("POType");
    let t_po = target.type_by_name("POType").expect("POType");
    let a = &source.type_def(s_po).as_complex().expect("complex").dfa;
    let bdfa = &target.type_def(t_po).as_complex().expect("complex").dfa;
    c.bench_function("preprocess/product_ida", |b| {
        b.iter(|| black_box(ProductIda::new(a, bdfa)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
