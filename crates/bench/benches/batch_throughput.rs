//! Batch revalidation throughput at 1, 2, 4, and max worker threads.
//!
//! The workload is the paper's Experiment 1 shape: a stream of
//! purchase-order documents, each valid for the Figure 1a source schema
//! (`billTo` optional), revalidated against the Figure 2 target
//! (`billTo` required) through one shared [`CastContext`]. Throughput is
//! reported in documents per second; on multicore hardware the 4-thread
//! run should exceed 2x the 1-thread run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemacast_core::CastContext;
use schemacast_engine::{default_workers, BatchEngine};
use schemacast_schema::Session;
use schemacast_workload::purchase_order as po;
use std::hint::black_box;

const BATCH: usize = 500;
const ITEMS_PER_DOC: usize = 40;

fn thread_counts() -> Vec<usize> {
    let max = default_workers().get();
    let mut counts = vec![1, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bench(c: &mut Criterion) {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source schema");
    let target = session.parse_xsd(&po::target_xsd()).expect("target schema");
    let docs: Vec<_> = (0..BATCH)
        .map(|i| po::generate_document(&mut session.alphabet, ITEMS_PER_DOC, i % 3 != 0))
        .collect();
    let texts: Vec<_> = (0..BATCH)
        .map(|_| po::document_xml(&mut session.alphabet, ITEMS_PER_DOC))
        .collect();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    // Pay the one-off product-IDA construction outside the timed region.
    BatchEngine::new(&ctx).warm_up();

    let mut group = c.benchmark_group("batch_throughput");
    group.throughput(Throughput::Elements(BATCH as u64));
    for workers in thread_counts() {
        let engine = BatchEngine::with_workers(&ctx, workers);
        group.bench_with_input(BenchmarkId::new("tree_docs", workers), &docs, |b, docs| {
            b.iter(|| black_box(engine.validate_docs(docs)))
        });
        group.bench_with_input(
            BenchmarkId::new("streaming_xml", workers),
            &texts,
            |b, texts| b.iter(|| black_box(engine.validate_xml(texts, &session.alphabet))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
