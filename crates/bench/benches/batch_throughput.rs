//! Batch revalidation throughput at 1, 2, 4, and max worker threads.
//!
//! Two workloads:
//!
//! * **Plain batch** — the paper's Experiment 1 shape: a stream of
//!   purchase-order documents, each valid for the Figure 1a source schema
//!   (`billTo` optional), revalidated against the Figure 2 target
//!   (`billTo` required) through one shared [`CastContext`]. On multicore
//!   hardware the 4-thread run should exceed 2x the 1-thread run.
//! * **Edit-heavy batch** — every document arrives with an edit script
//!   (note inserts/deletes under a feed-style `(entry | note)*` model,
//!   all statically decidable), measured with the static update-safety
//!   fast path on and off. The `static_fastpath` series should beat
//!   `dynamic_only`, since decided scripts never apply their edits or
//!   run the Δ-revalidation walk over edited regions.
//!
//! Throughput is reported in documents per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemacast_core::CastContext;
use schemacast_engine::{default_workers, BatchEngine};
use schemacast_regex::Alphabet;
use schemacast_schema::{AbstractSchema, SchemaBuilder, Session, SimpleType};
use schemacast_tree::{Doc, Edit};
use schemacast_workload::purchase_order as po;
use std::hint::black_box;

const BATCH: usize = 500;
const ITEMS_PER_DOC: usize = 40;

fn thread_counts() -> Vec<usize> {
    let max = default_workers().get();
    let mut counts = vec![1, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Root "feed" with `(entry | note)*`: entry requires a title, note is
/// simple text. Inserting or deleting a `note` anywhere is statically
/// `Safe` when both schemas use this model.
fn feed_schema(ab: &mut Alphabet) -> AbstractSchema {
    let mut b = SchemaBuilder::new(ab);
    let text = b.simple("Text", SimpleType::string()).expect("simple");
    let entry = b.declare("Entry").expect("declare");
    b.complex(entry, "(title)", &[("title", text)])
        .expect("entry model");
    let feed = b.declare("Feed").expect("declare");
    b.complex(feed, "(entry | note)*", &[("entry", entry), ("note", text)])
        .expect("feed model");
    b.root("feed", feed);
    b.finish().expect("schema")
}

/// A batch of feed documents, each paired with a statically decidable edit
/// script (alternating note inserts and note deletes).
fn edited_batch(ab: &mut Alphabet, n: usize, entries: usize) -> Vec<(Doc, Vec<Edit>)> {
    let feed = ab.intern("feed");
    let entry = ab.intern("entry");
    let title = ab.intern("title");
    let note = ab.intern("note");
    (0..n)
        .map(|i| {
            let mut doc = Doc::new(feed);
            for _ in 0..entries {
                let e = doc.add_element(doc.root(), entry);
                let t = doc.add_element(e, title);
                doc.add_text(t, "hello");
            }
            let first_note = doc.add_element(doc.root(), note);
            let edits = if i % 2 == 0 {
                vec![Edit::InsertElement {
                    parent: doc.root(),
                    position: i % entries,
                    label: note,
                }]
            } else {
                vec![Edit::DeleteLeaf { node: first_note }]
            };
            (doc, edits)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source schema");
    let target = session.parse_xsd(&po::target_xsd()).expect("target schema");
    let docs: Vec<_> = (0..BATCH)
        .map(|i| po::generate_document(&mut session.alphabet, ITEMS_PER_DOC, i % 3 != 0))
        .collect();
    let texts: Vec<_> = (0..BATCH)
        .map(|_| po::document_xml(&mut session.alphabet, ITEMS_PER_DOC))
        .collect();
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    // Pay the one-off product-IDA construction outside the timed region.
    BatchEngine::new(&ctx).warm_up();

    let mut group = c.benchmark_group("batch_throughput");
    group.throughput(Throughput::Elements(BATCH as u64));
    for workers in thread_counts() {
        let engine = BatchEngine::with_workers(&ctx, workers);
        group.bench_with_input(BenchmarkId::new("tree_docs", workers), &docs, |b, docs| {
            b.iter(|| black_box(engine.validate_docs(docs)))
        });
        group.bench_with_input(
            BenchmarkId::new("streaming_xml", workers),
            &texts,
            |b, texts| b.iter(|| black_box(engine.validate_xml(texts, &session.alphabet))),
        );
    }
    group.finish();

    // Edit-heavy workload: same engine, but every item carries an edit
    // script the static analyzer fully decides. The fast path's win is the
    // skipped edit application + Δ-revalidation, visible as docs/sec.
    let mut ab = Alphabet::new();
    let feed_source = feed_schema(&mut ab);
    let feed_target = feed_schema(&mut ab);
    let edited = edited_batch(&mut ab, BATCH, ITEMS_PER_DOC);
    let feed_ctx = CastContext::new(&feed_source, &feed_target, &ab);
    BatchEngine::new(&feed_ctx).warm_up();
    // The comparison is meaningless if the analyzer doesn't actually decide
    // the scripts — pin that before timing anything.
    let probe = BatchEngine::new(&feed_ctx).validate_edited(&edited);
    assert_eq!(
        probe.totals.static_skips,
        edited.len(),
        "edit-heavy workload must be fully statically decided"
    );

    let mut group = c.benchmark_group("batch_throughput_edited");
    group.throughput(Throughput::Elements(BATCH as u64));
    for workers in thread_counts() {
        let fast = BatchEngine::with_workers(&feed_ctx, workers);
        group.bench_with_input(
            BenchmarkId::new("static_fastpath", workers),
            &edited,
            |b, items| b.iter(|| black_box(fast.validate_edited(items))),
        );
        let slow = BatchEngine::with_workers(&feed_ctx, workers).with_static_fastpath(false);
        group.bench_with_input(
            BenchmarkId::new("dynamic_only", workers),
            &edited,
            |b, items| b.iter(|| black_box(slow.validate_edited(items))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
