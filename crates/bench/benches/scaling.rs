//! Scaling behaviour beyond the paper's fixed schema pair: how the static
//! preprocessing (the `R_sub`/`R_dis` fixpoints) and the runtime win scale
//! with schema size, on synthetic schema evolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast_core::{CastContext, CastOptions, FullValidator, TypeRelations};
use schemacast_regex::Alphabet;
use schemacast_workload::synth::{random_schema, sample_document, SynthConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_preprocessing");
    for &n_complex in &[4usize, 16, 64] {
        let mut rng = SmallRng::seed_from_u64(n_complex as u64);
        let cfg = SynthConfig {
            n_complex,
            ..Default::default()
        };
        let mut synth = random_schema(&cfg, &mut rng);
        let original = synth.clone();
        synth.evolve(&mut rng);
        synth.evolve(&mut rng);
        let mut ab = Alphabet::new();
        let source = original.build(&mut ab);
        let target = synth.build(&mut ab);
        group.bench_with_input(
            BenchmarkId::new("relations_fixpoints", n_complex),
            &(&source, &target, &ab),
            |b, (s, t, ab)| b.iter(|| black_box(TypeRelations::compute(s, t, ab))),
        );
    }
    group.finish();

    // Runtime win on a mid-sized synthetic evolution.
    let mut rng = SmallRng::seed_from_u64(99);
    let cfg = SynthConfig {
        n_complex: 16,
        ..Default::default()
    };
    let mut synth = random_schema(&cfg, &mut rng);
    let original = synth.clone();
    synth.evolve(&mut rng);
    let mut ab = Alphabet::new();
    let source = original.build(&mut ab);
    let target = synth.build(&mut ab);
    let ctx = CastContext::with_options(&source, &target, &ab, CastOptions::default());
    let full = FullValidator::new(&target);

    let mut group = c.benchmark_group("scaling_runtime_synthetic");
    for &fanout in &[4usize, 16, 64] {
        let Some(doc) = sample_document(&source, &mut ab, &mut rng, fanout) else {
            continue;
        };
        // Verdicts agree (precondition holds by construction).
        assert_eq!(
            ctx.validate(&doc).is_valid(),
            full.validate(&doc).is_valid()
        );
        group.bench_with_input(BenchmarkId::new("schema_cast", fanout), &doc, |b, doc| {
            b.iter(|| black_box(ctx.validate(doc)))
        });
        group.bench_with_input(
            BenchmarkId::new("full_validation", fanout),
            &doc,
            |b, doc| b.iter(|| black_box(full.validate(doc))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
