//! §3.3 at tree level: revalidation cost after point edits to a large
//! document, against full revalidation of the edited tree. The with-mods
//! validator touches the edit path plus one subsumption check per sibling;
//! full revalidation re-walks everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemacast_bench::Experiment1;
use schemacast_core::{CastOptions, FullValidator, ModsValidator};
use schemacast_tree::{DeltaDoc, Edit};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fixture = Experiment1::fixture();
    let ctx = fixture.context(CastOptions::default());
    let mods = ModsValidator::new(&ctx);
    let full = FullValidator::new(&fixture.target);

    let mut group = c.benchmark_group("tree_mods");
    for &n in &[100usize, 1000] {
        let base = &fixture
            .docs
            .iter()
            .find(|(count, _)| *count == n)
            .expect("fixture size")
            .1;

        // One value edit deep inside the document.
        let mut dd = DeltaDoc::new(base.clone());
        let root = dd.doc().root();
        let items = dd.doc().children(root)[2];
        let mid_item = dd.doc().children(items)[n / 2];
        let qty = dd.doc().children(mid_item)[1];
        let qty_text = dd.doc().children(qty)[0];
        dd.apply(&Edit::SetText {
            node: qty_text,
            text: "7".into(),
        })
        .expect("edit applies");
        assert!(mods.validate(&dd).is_valid());

        group.bench_with_input(BenchmarkId::new("mods_validator", n), &dd, |b, dd| {
            b.iter(|| black_box(mods.validate(dd)))
        });
        let committed = dd.committed();
        assert!(full.validate(&committed).is_valid());
        group.bench_with_input(
            BenchmarkId::new("full_revalidation", n),
            &committed,
            |b, doc| b.iter(|| black_box(full.validate(doc))),
        );
        // The materialization cost itself, for context.
        group.bench_with_input(BenchmarkId::new("commit_tree", n), &dd, |b, dd| {
            b.iter(|| black_box(dd.committed()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
