//! §4.2 — string schema-cast: deciding `s ∈ L(b)` for `s ∈ L(a)` with the
//! product immediate decision automaton vs. scanning `s` with `b` alone.
//!
//! Two regimes:
//! * `related` pairs (b is a small mutation of a) — the IDA often decides
//!   after a short prefix.
//! * `identical` pairs — the start state is already immediate-accept:
//!   decisions are O(1) regardless of string length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast_automata::{Dfa, Ida, StringCast};
use schemacast_regex::{Regex, Sym};
use schemacast_workload::strings::{related_regex_pair, sample_member};
use std::hint::black_box;

const LENGTHS: [usize; 4] = [16, 128, 1024, 8192];
const SIGMA: u32 = 6;

fn related_pair(seed: u64) -> Option<(Dfa, Dfa, Vec<Vec<Sym>>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (ra, rb) = related_regex_pair(&mut rng, SIGMA, 3);
    let a = Dfa::from_regex(&ra, SIGMA as usize).ok()?;
    let b = Dfa::from_regex(&rb, SIGMA as usize).ok()?;
    if a.is_empty_language() {
        return None;
    }
    let strings: Vec<Vec<Sym>> = LENGTHS
        .iter()
        .map(|&len| sample_member(&a, &mut rng, len))
        .collect::<Option<_>>()?;
    Some((a, b, strings))
}

fn bench(c: &mut Criterion) {
    // Find a seed producing a usable pair with long-enough members.
    let (a, b, strings) = (0..200u64)
        .find_map(related_pair)
        .expect("a usable related pair exists");
    let cast = StringCast::new(a.clone(), b.clone());
    let b_immed = Ida::from_dfa(&b);

    let mut group = c.benchmark_group("string_revalidation_related");
    for (i, s) in strings.iter().enumerate() {
        let len = s.len().max(1);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("ida_cast", LENGTHS[i]), s, |bch, s| {
            bch.iter(|| black_box(cast.revalidate(s)))
        });
        group.bench_with_input(BenchmarkId::new("plain_scan", LENGTHS[i]), s, |bch, s| {
            bch.iter(|| black_box(b_immed.run(s)))
        });
        group.bench_with_input(BenchmarkId::new("dfa_only", LENGTHS[i]), s, |bch, s| {
            bch.iter(|| black_box(b.accepts(s)))
        });
    }
    group.finish();

    // Identical pair: item* vs item* — O(1) cast.
    let r = Regex::star(Regex::sym(Sym(0)));
    let d = Dfa::from_regex(&r, 1).expect("compiles");
    let cast_same = StringCast::new(d.clone(), d.clone());
    let mut group = c.benchmark_group("string_revalidation_identical");
    for &len in &LENGTHS {
        let s = vec![Sym(0); len];
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("ida_cast", len), &s, |bch, s| {
            bch.iter(|| black_box(cast_same.revalidate(s)))
        });
        group.bench_with_input(BenchmarkId::new("dfa_only", len), &s, |bch, s| {
            bch.iter(|| black_box(d.accepts(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
