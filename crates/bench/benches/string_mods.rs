//! §4.3 — string revalidation after modifications: cost vs. edit locality.
//!
//! Source content model `(header, item*, footer)`, target
//! `(header, item+, footer)` — once one `item` has been seen, the residual
//! languages coincide, so the product IDA accepts as soon as the scan
//! reaches unchanged territory. A 10k-symbol member receives one inserted
//! `item`; the editor knows where it inserted, so the *hinted* entry point
//! is used (the paper: tracking the leftmost unmodified position "is
//! straightforward"). Note that inserting an `item` into a uniform run is
//! a boundary-local edit wherever it lands (the common prefix/suffix cover
//! everything else), so every with-mods decision is O(1) here while the
//! plain rescan stays O(n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemacast_automata::{Dfa, Ida, StringCast};
use schemacast_regex::{parse_regex, Alphabet, Sym};
use std::hint::black_box;

fn setup() -> (StringCast, Ida, Vec<Sym>, Alphabet) {
    let mut ab = Alphabet::new();
    let ra = parse_regex("(header, item*, footer)", &mut ab).expect("parse");
    let rb = parse_regex("(header, item+, footer)", &mut ab).expect("parse");
    let a = Dfa::from_regex(&ra, ab.len()).expect("compile");
    let b = Dfa::from_regex(&rb, ab.len()).expect("compile");
    let header = ab.lookup("header").unwrap();
    let item = ab.lookup("item").unwrap();
    let footer = ab.lookup("footer").unwrap();
    let mut s = vec![header];
    s.extend(std::iter::repeat_n(item, 10_000));
    s.push(footer);
    assert!(a.accepts(&s));
    assert!(b.accepts(&s));
    let b_immed = Ida::from_dfa(&b);
    (StringCast::new(a, b).with_reverse(), b_immed, s, ab)
}

fn bench(c: &mut Criterion) {
    let (cast, b_immed, old, ab) = setup();
    let item = ab.lookup("item").unwrap();

    // Three edited versions: an inserted item near the start / middle /
    // end, with the editor-known common prefix/suffix alongside.
    let mut variants: Vec<(&str, Vec<Sym>, usize, usize)> = Vec::new();
    for (name, pos) in [("prefix", 1usize), ("middle", 5_000), ("suffix", 10_000)] {
        let mut v = old.clone();
        v.insert(pos, item);
        // The editor knows: everything before `pos` and everything after it
        // (old.len() - pos symbols) is unchanged.
        variants.push((name, v, pos, old.len() - pos));
    }

    let mut group = c.benchmark_group("string_mods_locality");
    for (name, new, p, k) in &variants {
        group.bench_with_input(
            BenchmarkId::new("with_mods_hinted", name),
            new,
            |bch, new| bch.iter(|| black_box(cast.revalidate_with_mods_hinted(&old, new, *p, *k))),
        );
        group.bench_with_input(
            BenchmarkId::new("with_mods_rediscover", name),
            new,
            |bch, new| bch.iter(|| black_box(cast.revalidate_with_mods(&old, new))),
        );
        group.bench_with_input(BenchmarkId::new("plain_rescan", name), new, |bch, new| {
            bch.iter(|| black_box(b_immed.run(new)))
        });
    }
    group.finish();

    // Sanity: every variant is accepted; edits near an end decide within a
    // few symbols, while a middle edit (with honest editor hints) costs on
    // the order of its distance to the nearer end.
    for (name, new, p, k) in &variants {
        let d = cast.revalidate_with_mods_hinted(&old, new, *p, *k);
        assert!(d.accepted, "{name} should be accepted");
        match *name {
            "middle" => assert!(
                d.symbols_scanned > 1_000 && d.symbols_scanned <= old.len() + 3,
                "middle scanned {}",
                d.symbols_scanned
            ),
            _ => assert!(
                d.symbols_scanned < 100,
                "{name} scanned {}",
                d.symbols_scanned
            ),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
