//! Ablation A-2: IDA content-model checks (§4) on vs. off — the paper's
//! prototype omitted them inside Xerces; here we measure what they add.
//!
//! The effect shows on Experiment 1 *rejections*: without a `billTo`, the
//! product IDA rejects after two symbols of the root content model, while
//! the plain-DFA configuration scans the root's children and then fails on
//! recursion. Both are constant-time for this workload; the IDA's edge
//! grows with content-model length, so we add a synthetic wide-content
//! model case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemacast_bench::Experiment1;
use schemacast_core::{CastContext, CastOptions};
use schemacast_regex::Alphabet;
use schemacast_schema::{SchemaBuilder, SimpleType};
use schemacast_tree::Doc;
use std::hint::black_box;

fn wide_fixture() -> (
    Alphabet,
    schemacast_schema::AbstractSchema,
    schemacast_schema::AbstractSchema,
    Doc,
) {
    // Source: (lead, e1?, e2 … e64); target: (lead, e1, e2 … e64).
    // With e1 present, the IDA accepts after scanning 2 symbols; the plain
    // DFA scans all 65.
    let mut ab = Alphabet::new();
    let n = 64usize;
    let labels: Vec<String> = (1..=n).map(|i| format!("e{i}")).collect();
    let mk = |ab: &mut Alphabet, optional_first: bool| {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let root = b.declare("Root").unwrap();
        let mut model = String::from("lead, e1");
        if optional_first {
            model.push('?');
        }
        for l in &labels[1..] {
            model.push_str(", ");
            model.push_str(l);
        }
        let mut kids: Vec<(&str, schemacast_schema::TypeId)> = vec![("lead", text)];
        for l in &labels {
            kids.push((l.as_str(), text));
        }
        b.complex(root, &model, &kids).unwrap();
        b.root("r", root);
        b.finish().unwrap()
    };
    let source = mk(&mut ab, true);
    let target = mk(&mut ab, false);
    let r = ab.lookup("r").unwrap();
    let lead = ab.lookup("lead").unwrap();
    let mut doc = Doc::new(r);
    let e = doc.add_element(doc.root(), lead);
    doc.add_text(e, "x");
    for l in &labels {
        let sym = ab.lookup(l).unwrap();
        let e = doc.add_element(doc.root(), sym);
        doc.add_text(e, "v");
    }
    assert!(source.accepts_document(&doc));
    assert!(target.accepts_document(&doc));
    (ab, source, target, doc)
}

fn bench(c: &mut Criterion) {
    // Experiment 1 rejection path.
    let fixture = Experiment1::fixture();
    let mut ab = fixture.alphabet.clone();
    let no_bill = schemacast_workload::purchase_order::generate_document(&mut ab, 500, false);
    let with_ida = fixture.context(CastOptions::default());
    let without_ida = fixture.context(CastOptions::paper_prototype());
    assert!(!with_ida.validate(&no_bill).is_valid());
    assert!(!without_ida.validate(&no_bill).is_valid());

    let mut group = c.benchmark_group("ablation_ida_exp1_reject");
    group.bench_with_input(BenchmarkId::new("ida_on", 500), &no_bill, |b, doc| {
        b.iter(|| black_box(with_ida.validate(doc)))
    });
    group.bench_with_input(BenchmarkId::new("ida_off", 500), &no_bill, |b, doc| {
        b.iter(|| black_box(without_ida.validate(doc)))
    });
    group.finish();

    // Wide content model: IDA's early accept vs. full scan of 65 labels.
    let (wab, wsource, wtarget, wdoc) = wide_fixture();
    let ida_on = CastContext::with_options(&wsource, &wtarget, &wab, CastOptions::default());
    let ida_off =
        CastContext::with_options(&wsource, &wtarget, &wab, CastOptions::paper_prototype());
    assert!(ida_on.validate(&wdoc).is_valid());
    assert!(ida_off.validate(&wdoc).is_valid());
    let (_, s_on) = ida_on.validate_with_stats(&wdoc);
    let (_, s_off) = ida_off.validate_with_stats(&wdoc);
    assert!(s_on.content_symbols_scanned < s_off.content_symbols_scanned);

    let mut group = c.benchmark_group("ablation_ida_wide_model");
    group.bench_function("ida_on", |b| b.iter(|| black_box(ida_on.validate(&wdoc))));
    group.bench_function("ida_off", |b| b.iter(|| black_box(ida_off.validate(&wdoc))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
