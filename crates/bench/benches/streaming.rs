//! Streaming vs. tree-building validation: end-to-end cost from XML text to
//! verdict. The streaming path parses and casts in one O(depth)-memory pass
//! (the paper's memory claim); the DOM path parses, builds the tree, then
//! casts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemacast_core::{CastContext, CastOptions, StreamingCast};
use schemacast_regex::Alphabet;
use schemacast_tree::{Doc, WhitespaceMode};
use schemacast_workload::purchase_order as po;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut alphabet = Alphabet::new();
    let source =
        schemacast_schema::xsd::parse_xsd(&po::source_xsd(), &mut alphabet).expect("source");
    let target =
        schemacast_schema::xsd::parse_xsd(&po::target_xsd(), &mut alphabet).expect("target");

    let mut group = c.benchmark_group("streaming_vs_dom");
    for &n in &[100usize, 1000] {
        let text = po::document_xml(&mut alphabet, n);
        let ctx = CastContext::with_options(&source, &target, &alphabet, CastOptions::default());
        let streaming = StreamingCast::new(&ctx);

        // Sanity: both answer valid.
        let (out, _) = streaming
            .validate_str(&text, &alphabet)
            .expect("well-formed");
        assert!(out.is_valid());

        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("stream_parse_and_cast", n),
            &text,
            |b, t| b.iter(|| black_box(streaming.validate_str(t, &alphabet).expect("ok"))),
        );
        group.bench_with_input(
            BenchmarkId::new("dom_parse_build_cast", n),
            &text,
            |b, t| {
                b.iter(|| {
                    let xml = schemacast_xml::parse_document(t).expect("ok");
                    // Lookup-only import: labels are already interned.
                    let mut ab = alphabet.clone();
                    let doc = Doc::from_xml(&xml.root, &mut ab, WhitespaceMode::Trim);
                    black_box(ctx.validate(&doc))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("xml_parse_only", n), &text, |b, t| {
            b.iter(|| black_box(schemacast_xml::parse_document(t).expect("ok")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
