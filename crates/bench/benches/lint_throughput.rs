//! Throughput of the schema-pair linter (`lint_pair`: reachable-pair
//! enumeration, witness synthesis, and the round-trip self-check) on
//! synthetic wide and deep schema pairs from `schemacast-workload`.
//!
//! Wide schemas stress the per-type work (many parts per content model);
//! deep schemas stress the pair-graph traversal and spine construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast_analysis::lint_pair;
use schemacast_core::CastContext;
use schemacast_regex::Alphabet;
use schemacast_schema::AbstractSchema;
use schemacast_workload::synth::{random_schema, SynthConfig};
use std::hint::black_box;

fn synth_pair(cfg: &SynthConfig, seed: u64) -> (AbstractSchema, AbstractSchema, Alphabet) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let original = random_schema(cfg, &mut rng);
    let mut evolved = original.clone();
    for _ in 0..3 {
        evolved.evolve(&mut rng);
    }
    let mut alphabet = Alphabet::new();
    let source = original.build(&mut alphabet);
    let target = evolved.build(&mut alphabet);
    (source, target, alphabet)
}

fn bench(c: &mut Criterion) {
    let shapes = [
        (
            "wide",
            SynthConfig {
                n_complex: 8,
                max_parts: 8,
                choice_prob: 0.3,
            },
        ),
        (
            "deep",
            SynthConfig {
                n_complex: 16,
                max_parts: 2,
                choice_prob: 0.1,
            },
        ),
    ];

    let mut group = c.benchmark_group("lint_throughput");
    for (shape, cfg) in shapes {
        let (source, target, alphabet) = synth_pair(&cfg, 0x5EED);
        let ctx = CastContext::new(&source, &target, &alphabet);
        // The pair must actually exercise the linter, not early-out clean.
        let report = lint_pair(&ctx, &alphabet, None);
        group.bench_with_input(
            BenchmarkId::new("lint_pair", shape),
            &(ctx, &alphabet),
            |bch, (ctx, alphabet)| bch.iter(|| black_box(lint_pair(ctx, alphabet, None))),
        );
        drop(report);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
