//! Figure 3a — Experiment 1: validation time vs. number of `item` elements
//! for a document valid under Figure 1a (`billTo` optional) revalidated
//! against Figure 2 (`billTo` required).
//!
//! Series:
//! * `schema_cast`      — the full algorithm (subsumption + disjointness +
//!   IDA content checks). Expected ~constant in document size.
//! * `paper_prototype`  — the paper's modified-Xerces configuration (no IDA
//!   content checks). Also ~constant here.
//! * `full_validation`  — the unmodified-Xerces baseline. Linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemacast_bench::{Experiment1, ITEM_COUNTS};
use schemacast_core::CastOptions;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fixture = Experiment1::fixture();
    fixture.assert_precondition();
    let cast = fixture.context(CastOptions::default());
    let paper = fixture.context(CastOptions::paper_prototype());
    let full = fixture.full();

    let mut group = c.benchmark_group("fig3a_experiment1");
    for (i, &n) in ITEM_COUNTS.iter().enumerate() {
        let doc = &fixture.docs[i].1;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("schema_cast", n), doc, |b, doc| {
            b.iter(|| black_box(cast.validate(doc)))
        });
        group.bench_with_input(BenchmarkId::new("paper_prototype", n), doc, |b, doc| {
            b.iter(|| black_box(paper.validate(doc)))
        });
        group.bench_with_input(BenchmarkId::new("full_validation", n), doc, |b, doc| {
            b.iter(|| black_box(full.validate(doc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
