//! Ablation A-1: how much of the Experiment 2 win comes from
//! subsumed-subtree skipping vs. disjointness pruning vs. IDA content
//! checks. Four configurations over the 500-item document.

use criterion::{criterion_group, criterion_main, Criterion};
use schemacast_bench::Experiment2;
use schemacast_core::CastOptions;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let fixture = Experiment2::fixture();
    let doc = &fixture.docs.iter().find(|(n, _)| *n == 500).expect("500").1;

    let configs: [(&str, CastOptions); 4] = [
        ("all_on", CastOptions::default()),
        (
            "no_subsumption",
            CastOptions {
                use_subsumption: false,
                use_disjointness: true,
                use_ida: true,
            },
        ),
        (
            "no_disjointness",
            CastOptions {
                use_subsumption: true,
                use_disjointness: false,
                use_ida: true,
            },
        ),
        ("all_off", CastOptions::baseline()),
    ];

    let mut group = c.benchmark_group("ablation_skipping_exp2_500");
    for (name, opts) in configs {
        let ctx = fixture.context(opts);
        assert!(ctx.validate(doc).is_valid());
        group.bench_function(name, |b| b.iter(|| black_box(ctx.validate(doc))));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
