//! Corpus-scale streaming batch: cold vs warm vs in-memory throughput.
//!
//! Four series over one on-disk purchase-order corpus:
//!
//! * `in_memory_batch` — the pre-existing materialize-then-validate path
//!   ([`BatchEngine::validate_xml`] over a `Vec<String>`), the baseline
//!   the streaming pipeline must not lose to.
//! * `cold_stream_no_cache` — the bounded-memory corpus pipeline: paths
//!   streamed through the queue, documents mmap'd, every file validated.
//! * `warm_all_hits` — the same corpus with a fully populated verdict
//!   cache: every document is hashed and replayed, none validated.
//! * `warm_after_1pct_edits` — the incremental headline: the persisted
//!   cache is reloaded each iteration after 1% of the corpus was edited,
//!   so exactly that 1% revalidates (cache load + hash + k validations).
//!
//! Throughput is documents per second; `warm_after_1pct_edits` should sit
//! close to `warm_all_hits` and far above `cold_stream_no_cache`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use schemacast_core::CastContext;
use schemacast_engine::{BatchEngine, CorpusOptions, CorpusSource, VerdictCache};
use schemacast_schema::Session;
use schemacast_workload::purchase_order as po;
use std::hint::black_box;
use std::path::PathBuf;

const DOCS: usize = 400;
/// 1% of the corpus is edited for the incremental series.
const EDITED: usize = DOCS / 100;

fn doc_name(i: usize) -> String {
    format!("doc{i:05}.xml")
}

fn build_corpus(session: &mut Session) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("schemacast-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("corpus dir");
    for i in 0..DOCS {
        let xml = po::document_xml(&mut session.alphabet, 1 + i % 13);
        std::fs::write(dir.join(doc_name(i)), format!("{xml}<!-- doc {i} -->")).expect("write doc");
    }
    dir
}

fn bench(c: &mut Criterion) {
    let mut session = Session::new();
    let source = session.parse_xsd(&po::source_xsd()).expect("source schema");
    let target = session.parse_xsd(&po::target_xsd()).expect("target schema");
    let dir = build_corpus(&mut session);
    let ctx = CastContext::new(&source, &target, &session.alphabet);
    let engine = BatchEngine::new(&ctx);
    engine.warm_up();
    let fp = ctx.fingerprint(&session.alphabet);
    let corpus = CorpusSource::Dir(dir.clone());
    let opts = CorpusOptions::default();

    let texts: Vec<String> = (0..DOCS)
        .map(|i| std::fs::read_to_string(dir.join(doc_name(i))).expect("read doc"))
        .collect();

    let mut group = c.benchmark_group("batch_corpus");
    group.throughput(Throughput::Elements(DOCS as u64));
    group.bench_function("in_memory_batch", |b| {
        b.iter(|| black_box(engine.validate_xml(&texts, &session.alphabet)))
    });
    group.bench_function("cold_stream_no_cache", |b| {
        b.iter(|| {
            black_box(
                engine
                    .validate_corpus(&corpus, &session.alphabet, None, &opts)
                    .expect("cold run"),
            )
        })
    });

    // Populate once; every later pass over the unchanged corpus is hits.
    let mut cache = VerdictCache::empty(fp, 0);
    let populate = engine
        .validate_corpus(&corpus, &session.alphabet, Some(&mut cache), &opts)
        .expect("populate");
    assert_eq!(populate.cache_misses, DOCS);
    group.bench_function("warm_all_hits", |b| {
        b.iter(|| {
            let report = engine
                .validate_corpus(&corpus, &session.alphabet, Some(&mut cache), &opts)
                .expect("warm run");
            debug_assert_eq!(report.cache_hits, DOCS);
            black_box(report)
        })
    });

    // Persist the cache, edit 1% of the corpus, and measure the realistic
    // incremental loop: load cache from disk, revalidate exactly the
    // edited files, replay the rest.
    let cache_path = dir.join("verdicts.scvc");
    cache.save(&cache_path).expect("save cache");
    for i in 0..EDITED {
        let xml = po::document_xml(&mut session.alphabet, 2 + i);
        std::fs::write(dir.join(doc_name(i)), format!("{xml}<!-- edited {i} -->"))
            .expect("rewrite doc");
    }
    group.bench_function("warm_after_1pct_edits", |b| {
        b.iter(|| {
            let mut cache = VerdictCache::load(&cache_path, fp, 0);
            let report = engine
                .validate_corpus(&corpus, &session.alphabet, Some(&mut cache), &opts)
                .expect("incremental run");
            debug_assert_eq!(report.cache_misses, EDITED);
            black_box(report)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
