//! Streaming hot-path throughput (MB/s) on skip-heavy vs. skip-free
//! corpora — the perf trajectory bench behind `BENCH_4.json`.
//!
//! Corpora:
//!
//! * **skip-heavy** — purchase-order documents validated with subsumption
//!   on: almost every subtree's `(source, target)` type pair is in `R_sub`,
//!   so the validator's cost is dominated by how cheaply it can *skip*.
//!   With lexical skipping this is a raw byte scan to the matching end tag.
//! * **skip-free** — the same bytes with subsumption (and disjointness)
//!   disabled: every event is tokenized and fed to the content-model
//!   automata, so this measures the zero-copy tokenizer itself.
//!
//! Paths:
//!
//! * `lexical_skip` — [`StreamingCast::validate_str`], the production fast
//!   path (borrowed events, lexer-interned labels, raw-byte subtree skip).
//! * `event_skip` — [`StreamingCast::validate_events`] over the same pull
//!   parser: the generic depth-counting path that tokenizes every event
//!   inside skipped subtrees (zero-copy "off" for skipping; also the
//!   oracle the property tests compare against).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemacast_core::{CastContext, CastOptions, StreamingCast};
use schemacast_regex::Alphabet;
use schemacast_workload::purchase_order as po;
use schemacast_xml::PullParser;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut alphabet = Alphabet::new();
    let source =
        schemacast_schema::xsd::parse_xsd(&po::source_xsd(), &mut alphabet).expect("source");
    let target =
        schemacast_schema::xsd::parse_xsd(&po::target_xsd(), &mut alphabet).expect("target");

    let mut group = c.benchmark_group("stream_throughput");
    for &n in &[1000usize] {
        let text = po::document_xml(&mut alphabet, n);

        let skip_on =
            CastContext::with_options(&source, &target, &alphabet, CastOptions::default());
        let skip_off = CastContext::with_options(
            &source,
            &target,
            &alphabet,
            CastOptions {
                use_subsumption: false,
                use_disjointness: false,
                ..CastOptions::default()
            },
        );

        // Sanity: all paths agree the corpus is valid.
        for ctx in [&skip_on, &skip_off] {
            let (out, _) = StreamingCast::new(ctx)
                .validate_str(&text, &alphabet)
                .expect("well-formed");
            assert!(out.is_valid());
        }

        group.throughput(Throughput::Bytes(text.len() as u64));
        for (corpus, ctx) in [("skip_heavy", &skip_on), ("skip_free", &skip_off)] {
            let streaming = StreamingCast::new(ctx);
            group.bench_with_input(
                BenchmarkId::new(&format!("lexical_skip/{corpus}"), n),
                &text,
                |b, t| b.iter(|| black_box(streaming.validate_str(t, &alphabet).expect("ok"))),
            );
            group.bench_with_input(
                BenchmarkId::new(&format!("event_skip/{corpus}"), n),
                &text,
                |b, t| {
                    b.iter(|| {
                        black_box(
                            streaming
                                .validate_events(PullParser::new(t), &alphabet)
                                .expect("ok"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
