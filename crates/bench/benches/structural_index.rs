//! Stage-1 structural indexer microbenchmarks (MB/s) — the components
//! behind the `stream_throughput` numbers, measured in isolation.
//!
//! * `build` — one SWAR classification pass producing the structural tape
//!   (a reused [`StructuralIndex`], so this is the steady-state batch
//!   cost: zero allocation).
//! * `tape_parse` — full tokenization through [`PullParser`] running off
//!   the tape (index built per iteration, as `validate_str` does).
//! * `scalar_parse` — the preserved per-byte reference lexer
//!   ([`ScalarParser`]) over the same bytes; the gap to `tape_parse` is
//!   what stage-1 classification buys the tokenizer.
//! * `tape_skip` — parse the root, then [`PullParser::skip_subtree`] every
//!   child: with the tape each skip is an O(1) hop, so this approaches
//!   the `build` cost no matter how large the subtrees are.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemacast_regex::Alphabet;
use schemacast_workload::purchase_order as po;
use schemacast_xml::pull::PullEvent;
use schemacast_xml::{PullParser, ScalarParser, StructuralIndex};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut alphabet = Alphabet::new();
    let n = 1000usize;
    let text = po::document_xml(&mut alphabet, n);

    let mut group = c.benchmark_group("structural_index");
    group.throughput(Throughput::Bytes(text.len() as u64));

    let mut tape = StructuralIndex::build(&text);
    assert!(tape.error().is_none(), "corpus must be well-formed");
    group.bench_with_input(BenchmarkId::new("build", n), &text, |b, t| {
        b.iter(|| {
            tape.rebuild(black_box(t));
            black_box(tape.len())
        })
    });

    group.bench_with_input(BenchmarkId::new("tape_parse", n), &text, |b, t| {
        b.iter(|| {
            let mut events = 0usize;
            for ev in PullParser::new(black_box(t)) {
                ev.expect("well-formed");
                events += 1;
            }
            black_box(events)
        })
    });

    group.bench_with_input(BenchmarkId::new("scalar_parse", n), &text, |b, t| {
        b.iter(|| {
            let mut events = 0usize;
            for ev in ScalarParser::new(black_box(t)) {
                ev.expect("well-formed");
                events += 1;
            }
            black_box(events)
        })
    });

    group.bench_with_input(BenchmarkId::new("tape_skip", n), &text, |b, t| {
        b.iter(|| {
            let mut parser = PullParser::new(black_box(t));
            let mut skipped = 0usize;
            while let Some(ev) = parser.next() {
                if matches!(ev.expect("well-formed"), PullEvent::Start { .. }) && parser.depth() > 1
                {
                    skipped += parser.skip_subtree().expect("well-formed").hops;
                }
            }
            black_box(skipped)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
