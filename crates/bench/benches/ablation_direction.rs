//! Ablation A-3: the reverse-automaton strategy of §4.3. With reverse
//! machinery, a suffix edit on a long string is decided from the back in
//! O(edit); without it, the algorithm falls back to a plain forward scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemacast_automata::{Dfa, Strategy, StringCast};
use schemacast_regex::{parse_regex, Alphabet};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut ab = Alphabet::new();
    let ra = parse_regex("(header, item*, (footerA | footerB))", &mut ab).expect("parse");
    let rb = parse_regex("(header, item*, footerA)", &mut ab).expect("parse");
    let a = Dfa::from_regex(&ra, ab.len()).expect("compile");
    let b = Dfa::from_regex(&rb, ab.len()).expect("compile");
    let header = ab.lookup("header").unwrap();
    let item = ab.lookup("item").unwrap();
    let fa = ab.lookup("footerA").unwrap();
    let fb = ab.lookup("footerB").unwrap();

    let with_reverse = StringCast::new(a.clone(), b.clone()).with_reverse();
    let forward_only = StringCast::new(a, b);

    let mut group = c.benchmark_group("ablation_direction_suffix_edit");
    for &len in &[1_000usize, 10_000, 100_000] {
        let mut old = vec![header];
        old.extend(std::iter::repeat_n(item, len));
        old.push(fb);
        let mut new = old.clone();
        let last = new.len() - 1;
        new[last] = fa;

        let d = with_reverse.revalidate_with_mods(&old, &new);
        assert!(d.accepted && d.strategy == Strategy::BackwardWithMods);
        let d2 = forward_only.revalidate_with_mods(&old, &new);
        assert!(d2.accepted);

        group.bench_with_input(
            BenchmarkId::new("with_reverse", len),
            &(old.clone(), new.clone()),
            |bch, (old, new)| bch.iter(|| black_box(with_reverse.revalidate_with_mods(old, new))),
        );
        group.bench_with_input(
            BenchmarkId::new("forward_only", len),
            &(old, new),
            |bch, (old, new)| bch.iter(|| black_box(forward_only.revalidate_with_mods(old, new))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
