#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Shared fixtures for the benchmark suite and the `paper_report` binary.
//!
//! One fixture per experiment of the paper, so every bench and the report
//! measure exactly the same workloads:
//!
//! * [`Experiment1`] — Figure 1a source vs. Figure 2 target (`billTo`
//!   optional → required), documents with a `billTo`.
//! * [`Experiment2`] — Figure 2 with `maxExclusive=200` vs. Figure 2
//!   (`=100`), quantities below 100.
//!
//! The paper's document sizes: 2, 50, 100, 200, 500, 1000 items.

use schemacast_core::{CastContext, CastOptions, FullValidator};
use schemacast_regex::Alphabet;
use schemacast_schema::AbstractSchema;
use schemacast_tree::Doc;
use schemacast_workload::purchase_order as po;

/// The item counts of Tables 2–3 and Figures 3a/3b.
pub const ITEM_COUNTS: [usize; 6] = [2, 50, 100, 200, 500, 1000];

/// A schema pair plus pre-generated documents for each item count.
pub struct Fixture {
    /// Shared alphabet.
    pub alphabet: Alphabet,
    /// Source schema (documents are valid for it).
    pub source: AbstractSchema,
    /// Target schema (the cast target).
    pub target: AbstractSchema,
    /// One document per entry of [`ITEM_COUNTS`].
    pub docs: Vec<(usize, Doc)>,
}

impl Fixture {
    fn build(source_xsd: &str, target_xsd: &str) -> Fixture {
        let mut alphabet = Alphabet::new();
        let source =
            schemacast_schema::xsd::parse_xsd(source_xsd, &mut alphabet).expect("source XSD");
        let target =
            schemacast_schema::xsd::parse_xsd(target_xsd, &mut alphabet).expect("target XSD");
        let docs = ITEM_COUNTS
            .iter()
            .map(|&n| (n, po::generate_document(&mut alphabet, n, true)))
            .collect();
        Fixture {
            alphabet,
            source,
            target,
            docs,
        }
    }

    /// A cast context with the given options.
    pub fn context(&self, options: CastOptions) -> CastContext<'_> {
        CastContext::with_options(&self.source, &self.target, &self.alphabet, options)
    }

    /// The baseline validator for the target schema.
    pub fn full(&self) -> FullValidator<'_> {
        FullValidator::new(&self.target)
    }

    /// Sanity-check that every document is valid for the source (the cast
    /// precondition) — call once per bench setup.
    pub fn assert_precondition(&self) {
        for (n, doc) in &self.docs {
            assert!(
                self.source.accepts_document(doc),
                "{n}-item document is not source-valid"
            );
        }
    }
}

/// Experiment 1 fixture (Figure 3a).
pub struct Experiment1;

impl Experiment1 {
    /// Builds the fixture.
    pub fn fixture() -> Fixture {
        Fixture::build(&po::source_xsd(), &po::target_xsd())
    }
}

/// Experiment 2 fixture (Figure 3b, Table 3).
pub struct Experiment2;

impl Experiment2 {
    /// Builds the fixture.
    pub fn fixture() -> Fixture {
        Fixture::build(&po::source_maxex200_xsd(), &po::target_xsd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_satisfy_preconditions() {
        let f1 = Experiment1::fixture();
        f1.assert_precondition();
        let f2 = Experiment2::fixture();
        f2.assert_precondition();
        // Experiment 1 documents (with billTo) are also target-valid.
        let ctx = f1.context(CastOptions::default());
        for (_, doc) in &f1.docs {
            assert!(ctx.validate(doc).is_valid());
        }
    }
}
