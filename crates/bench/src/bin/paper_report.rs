//! Regenerates every table and figure of the paper's evaluation (§6) as
//! text, with the paper's reported numbers alongside for shape comparison.
//!
//! Run with: `cargo run --release -p schemacast-bench --bin paper_report`

use schemacast_bench::{Experiment1, Experiment2, Fixture, ITEM_COUNTS};
use schemacast_core::CastOptions;
use schemacast_regex::Alphabet;
use schemacast_workload::purchase_order as po;
use std::time::Instant;

/// Paper Table 2: input file sizes in bytes.
const PAPER_TABLE2: [usize; 6] = [990, 11_358, 22_158, 43_758, 108_558, 216_558];
/// Paper Table 3: nodes traversed (schema cast, Xerces 2.4).
const PAPER_TABLE3_CAST: [usize; 6] = [35, 611, 1_211, 2_411, 6_011, 12_011];
const PAPER_TABLE3_FULL: [usize; 6] = [74, 794, 1_544, 3_044, 7_544, 15_044];

fn median_time_us(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[runs / 2]
}

fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

fn table2() {
    println!("== Table 2: input document file sizes ==");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "# items", "ours (bytes)", "paper (bytes)", "ratio"
    );
    let mut ab = Alphabet::new();
    for (i, &n) in ITEM_COUNTS.iter().enumerate() {
        let size = po::document_xml(&mut ab, n).len();
        println!(
            "{:>8} {:>16} {:>16} {:>8.2}",
            n,
            size,
            PAPER_TABLE2[i],
            size as f64 / PAPER_TABLE2[i] as f64
        );
    }
    println!();
}

fn figure3a(fixture: &Fixture) {
    println!("== Figure 3a: Experiment 1 validation times (µs, median of 15) ==");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "# items", "cast µs", "paper-cfg µs", "full µs"
    );
    let cast = fixture.context(CastOptions::default());
    let paper = fixture.context(CastOptions::paper_prototype());
    let full = fixture.full();
    let mut xs = Vec::new();
    let mut cast_ys = Vec::new();
    let mut full_ys = Vec::new();
    for (n, doc) in &fixture.docs {
        let c = median_time_us(15, || {
            assert!(cast.validate(doc).is_valid());
        });
        let p = median_time_us(15, || {
            assert!(paper.validate(doc).is_valid());
        });
        let f = median_time_us(15, || {
            assert!(full.validate(doc).is_valid());
        });
        println!("{:>8} {:>12.2} {:>14.2} {:>12.2}", n, c, p, f);
        xs.push(*n as f64);
        cast_ys.push(c);
        full_ys.push(f);
    }
    let (cast_slope, _) = linear_fit(&xs, &cast_ys);
    let (full_slope, _) = linear_fit(&xs, &full_ys);
    println!(
        "shape check: cast slope {:.4} µs/item (≈0 expected), full slope {:.4} µs/item (>0 expected)",
        cast_slope, full_slope
    );
    println!("paper claim: cast constant in document size, Xerces linear.\n");
}

fn figure3b_and_table3(fixture: &Fixture) {
    println!("== Figure 3b: Experiment 2 validation times (µs, median of 15) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "# items", "cast µs", "full µs", "speedup"
    );
    let cast = fixture.context(CastOptions::default());
    let full = fixture.full();
    let mut speedups = Vec::new();
    for (n, doc) in &fixture.docs {
        let c = median_time_us(15, || {
            assert!(cast.validate(doc).is_valid());
        });
        let f = median_time_us(15, || {
            assert!(full.validate(doc).is_valid());
        });
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>9.1}%",
            n,
            c,
            f,
            (1.0 - c / f) * 100.0
        );
        if *n >= 100 {
            speedups.push(1.0 - c / f);
        }
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "shape check: mean improvement on large documents {:.0}% (paper: ≈30%)\n",
        mean * 100.0
    );

    println!("== Table 3: nodes traversed in Experiment 2 ==");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "# items", "cast", "full", "paper cast", "paper full", "ratio ours", "ratio paper"
    );
    for (i, (n, doc)) in fixture.docs.iter().enumerate() {
        let (out, stats) = cast.validate_with_stats(doc);
        assert!(out.is_valid());
        let (_, full_stats) = full.validate_with_stats(doc);
        println!(
            "{:>8} {:>12} {:>12} {:>14} {:>14} {:>12.2} {:>12.2}",
            n,
            stats.nodes_visited,
            full_stats.nodes_visited,
            PAPER_TABLE3_CAST[i],
            PAPER_TABLE3_FULL[i],
            stats.nodes_visited as f64 / full_stats.nodes_visited as f64,
            PAPER_TABLE3_CAST[i] as f64 / PAPER_TABLE3_FULL[i] as f64
        );
    }
    println!(
        "note: absolute counts differ (Xerces counted DOM nodes incl. whitespace text); the\n\
         claim is the shape — cast visits a constant fraction, savings grow linearly.\n"
    );
}

fn experiment1_rejection(fixture: &Fixture) {
    println!("== Experiment 1, rejection path (no billTo) ==");
    let cast = fixture.context(CastOptions::default());
    let mut ab = fixture.alphabet.clone();
    println!("{:>8} {:>14} {:>12}", "# items", "doc nodes", "visits");
    for &n in &ITEM_COUNTS {
        let doc = po::generate_document(&mut ab, n, false);
        let (out, stats) = cast.validate_with_stats(&doc);
        assert!(!out.is_valid());
        println!(
            "{:>8} {:>14} {:>12}",
            n,
            doc.node_count(),
            stats.nodes_visited
        );
    }
    println!("shape check: constant visits — the IDA rejects inside the root content model.\n");
}

fn main() {
    println!("schemacast — paper evaluation report (EDBT 2004, §6)\n");
    table2();
    let f1 = Experiment1::fixture();
    f1.assert_precondition();
    figure3a(&f1);
    experiment1_rejection(&f1);
    let f2 = Experiment2::fixture();
    f2.assert_precondition();
    figure3b_and_table3(&f2);
}
