//! Nondeterministic finite automata and the subset construction.
//!
//! NFAs appear in two places: as the Glushkov automaton of a content model
//! that is not one-unambiguous (we determinize it), and as the *reverse* of a
//! DFA (used by the with-modifications revalidation of §4.3 — the paper notes
//! "the reverse automata of a deterministic automata may be
//! non-deterministic").

use crate::dfa::{Dfa, StateId};
use schemacast_regex::{GlushkovNfa, Sym};
use std::collections::HashMap;

/// An ε-free NFA over a dense alphabet `0..alphabet_len`.
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet_len: usize,
    /// `trans[q]` = list of `(symbol, target)`.
    trans: Vec<Vec<(Sym, StateId)>>,
    starts: Vec<StateId>,
    finals: Vec<bool>,
}

impl Nfa {
    /// Creates an NFA with `states` states and no transitions.
    pub fn new(states: usize, alphabet_len: usize) -> Self {
        Nfa {
            alphabet_len,
            trans: vec![Vec::new(); states],
            starts: Vec::new(),
            finals: vec![false; states],
        }
    }

    /// Converts a Glushkov automaton, widening to `alphabet_len` symbols.
    pub fn from_glushkov(g: &GlushkovNfa, alphabet_len: usize) -> Self {
        let mut nfa = Nfa::new(g.state_count(), alphabet_len);
        nfa.starts.push(g.start() as StateId);
        for q in 0..g.state_count() {
            if g.is_final(q) {
                nfa.finals[q] = true;
            }
            for (sym, t) in g.transitions(q) {
                debug_assert!(sym.index() < alphabet_len);
                nfa.trans[q].push((sym, t as StateId));
            }
        }
        nfa
    }

    /// Marks `q` as a start state.
    pub fn add_start(&mut self, q: StateId) {
        if !self.starts.contains(&q) {
            self.starts.push(q);
        }
    }

    /// Marks `q` as accepting.
    pub fn set_final(&mut self, q: StateId) {
        self.finals[q as usize] = true;
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: StateId, sym: Sym, to: StateId) {
        self.trans[from as usize].push((sym, to));
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Word acceptance by breadth simulation (reference/testing).
    pub fn accepts(&self, input: &[Sym]) -> bool {
        let mut current: Vec<bool> = vec![false; self.state_count()];
        for &q in &self.starts {
            current[q as usize] = true;
        }
        for &s in input {
            let mut next = vec![false; self.state_count()];
            for (q, _) in current.iter().enumerate().filter(|(_, &on)| on) {
                for &(sym, t) in &self.trans[q] {
                    if sym == s {
                        next[t as usize] = true;
                    }
                }
            }
            current = next;
        }
        current
            .iter()
            .zip(&self.finals)
            .any(|(&on, &fin)| on && fin)
    }

    /// Determinizes via the subset construction. The result is complete
    /// (a sink is materialized for missing transitions).
    pub fn determinize(&self) -> Dfa {
        let mut start_set: Vec<StateId> = self.starts.clone();
        start_set.sort_unstable();
        start_set.dedup();

        let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
        let mut subsets: Vec<Vec<StateId>> = Vec::new();
        let mut trans: Vec<StateId> = Vec::new();
        let mut finals: Vec<bool> = Vec::new();

        index.insert(start_set.clone(), 0);
        subsets.push(start_set);

        let mut work = 0usize;
        while work < subsets.len() {
            let subset = subsets[work].clone();
            finals.push(subset.iter().any(|&q| self.finals[q as usize]));
            let base = trans.len();
            trans.resize(base + self.alphabet_len, StateId::MAX);
            for sym_idx in 0..self.alphabet_len {
                let sym = Sym(sym_idx as u32);
                let mut target: Vec<StateId> = Vec::new();
                for &q in &subset {
                    for &(s, t) in &self.trans[q as usize] {
                        if s == sym {
                            target.push(t);
                        }
                    }
                }
                target.sort_unstable();
                target.dedup();
                let next_id = *index.entry(target.clone()).or_insert_with(|| {
                    subsets.push(target);
                    (subsets.len() - 1) as StateId
                });
                trans[base + sym_idx] = next_id;
            }
            work += 1;
        }

        Dfa::from_parts(self.alphabet_len, 0, trans, finals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet, Regex};

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn determinize_preserves_language() {
        // 1-ambiguous: (a a) | (a b)
        let r = Regex::alt(vec![
            Regex::concat(vec![Regex::sym(s(0)), Regex::sym(s(0))]),
            Regex::concat(vec![Regex::sym(s(0)), Regex::sym(s(1))]),
        ]);
        let g = GlushkovNfa::new(&r).expect("no repeats");
        assert!(!g.is_deterministic());
        let nfa = Nfa::from_glushkov(&g, 2);
        let dfa = nfa.determinize();
        for input in [
            vec![],
            vec![s(0)],
            vec![s(0), s(0)],
            vec![s(0), s(1)],
            vec![s(1), s(0)],
            vec![s(0), s(0), s(0)],
        ] {
            assert_eq!(dfa.accepts(&input), r.matches(&input), "input {input:?}");
        }
    }

    #[test]
    fn determinize_parsed_model() {
        let mut ab = Alphabet::new();
        let r = parse_regex("(a|b)*, c", &mut ab).expect("parse");
        let g = GlushkovNfa::new(&r).expect("no repeats");
        let dfa = Nfa::from_glushkov(&g, ab.len()).determinize();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        assert!(dfa.accepts(&[c]));
        assert!(dfa.accepts(&[a, b, b, c]));
        assert!(!dfa.accepts(&[a, b]));
        assert!(!dfa.accepts(&[c, c]));
    }

    #[test]
    fn multi_start_nfa() {
        // Two start states; accepts "x" from one and "y" from the other.
        let mut nfa = Nfa::new(4, 2);
        nfa.add_start(0);
        nfa.add_start(1);
        nfa.add_transition(0, s(0), 2);
        nfa.add_transition(1, s(1), 3);
        nfa.set_final(2);
        nfa.set_final(3);
        assert!(nfa.accepts(&[s(0)]));
        assert!(nfa.accepts(&[s(1)]));
        assert!(!nfa.accepts(&[s(0), s(1)]));
        let dfa = nfa.determinize();
        assert!(dfa.accepts(&[s(0)]));
        assert!(dfa.accepts(&[s(1)]));
        assert!(!dfa.accepts(&[]));
    }
}
