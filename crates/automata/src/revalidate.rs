//! String schema-cast revalidation (§4.2) and revalidation after
//! modifications (§4.3).
//!
//! [`StringCast`] preprocesses a pair of DFAs `(a, b)` once; at runtime,
//! strings known to be in `L(a)` are tested for membership in `L(b)` with as
//! little scanning as the immediate decision automaton permits (optimal per
//! Prop. 3). For modified strings, the changed region is scanned with
//! `b_immed` and the unchanged remainder with `c_immed` (Prop. 2); when the
//! edits sit near the end of the string, the same algorithm runs over the
//! *reverse* automata instead, so the scan cost tracks the edited region, not
//! the string length.

use crate::dfa::Dfa;
use crate::ida::{Ida, IdaOutcome, ProductIda};
use schemacast_regex::Sym;

/// The result of a revalidation call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Whether the string is in the target language.
    pub accepted: bool,
    /// Total symbols consumed across all scanning phases (the paper's cost
    /// measure: how much of the input had to be looked at).
    pub symbols_scanned: usize,
    /// Which strategy the with-modifications entry point chose.
    pub strategy: Strategy,
}

/// Scanning strategy chosen for a with-modifications revalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Pure schema cast from the start state (no modifications).
    Forward,
    /// Changed prefix with `b_immed`, unchanged suffix with `c_immed`.
    ForwardWithMods,
    /// Reverse-automaton variant: changed suffix first, unchanged prefix via
    /// the reversed product.
    BackwardWithMods,
    /// Plain scan of the new string with `b_immed` (no locality to exploit).
    PlainScan,
}

/// Preprocessed machinery for revalidating members of `L(a)` against `L(b)`.
#[derive(Debug, Clone)]
pub struct StringCast {
    a: Dfa,
    b_immed: Ida,
    c_immed: ProductIda,
    reverse: Option<Box<ReverseMachinery>>,
}

#[derive(Debug, Clone)]
struct ReverseMachinery {
    a_rev: Dfa,
    b_rev_immed: Ida,
    c_rev_immed: ProductIda,
}

impl StringCast {
    /// Preprocesses the pair `(a, b)`. Does not build reverse automata; see
    /// [`StringCast::with_reverse`].
    pub fn new(a: Dfa, b: Dfa) -> StringCast {
        let b_immed = Ida::from_dfa(&b);
        let c_immed = ProductIda::new(&a, &b);
        StringCast {
            a,
            b_immed,
            c_immed,
            reverse: None,
        }
    }

    /// Additionally preprocesses the reverse automata of `a` and `b`
    /// (determinized), enabling the backward strategy for edits near the end
    /// of strings. The paper notes the reverse of a DFA may be
    /// nondeterministic — we pay the subset construction once, statically.
    pub fn with_reverse(mut self) -> StringCast {
        let b = self.b_immed.dfa().clone();
        let a_rev = self.a.reversed();
        let b_rev = b.reversed();
        let b_rev_immed = Ida::from_dfa(&b_rev);
        let c_rev_immed = ProductIda::new(&a_rev, &b_rev);
        self.reverse = Some(Box::new(ReverseMachinery {
            a_rev,
            b_rev_immed,
            c_rev_immed,
        }));
        self
    }

    /// The single-schema update configuration (`b = a`): revalidating a
    /// string of `L(a)` after edits, against `a` itself.
    pub fn for_updates(a: Dfa) -> StringCast {
        StringCast::new(a.clone(), a)
    }

    /// The source DFA `a`.
    pub fn source(&self) -> &Dfa {
        &self.a
    }

    /// The target's stand-alone IDA (`b_immed`).
    pub fn target_ida(&self) -> &Ida {
        &self.b_immed
    }

    /// The product IDA (`c_immed`).
    pub fn product_ida(&self) -> &ProductIda {
        &self.c_immed
    }

    /// §4.2: decides `s ∈ L(b)` for `s ∈ L(a)`, scanning as few symbols as
    /// possible.
    ///
    /// The precondition `s ∈ L(a)` is the caller's responsibility (it holds
    /// by construction in schema-cast validation); if violated, the answer
    /// may be arbitrary — use [`Ida::run`] on the target for unknown input.
    pub fn revalidate(&self, s: &[Sym]) -> Decision {
        let out = self.c_immed.run(s);
        Decision {
            accepted: out.accepted(),
            symbols_scanned: out.consumed(),
            strategy: Strategy::Forward,
        }
    }

    /// §4.3: decides `new ∈ L(b)` given that `old ∈ L(a)` and `new` was
    /// obtained from `old` by edits. Chooses forward, backward, or plain
    /// scanning based on where the strings differ.
    ///
    /// Computes the longest common prefix/suffix itself (O(unchanged
    /// region)); an editor that already tracks where its edits landed — the
    /// paper notes this is "straightforward to keep track of" — should call
    /// [`StringCast::revalidate_with_mods_hinted`] instead and skip the
    /// rediscovery scan entirely.
    pub fn revalidate_with_mods(&self, old: &[Sym], new: &[Sym]) -> Decision {
        let (n, m) = (old.len(), new.len());
        // Longest common prefix / suffix of old and new.
        let p = old
            .iter()
            .zip(new.iter())
            .take_while(|(o, s)| o == s)
            .count();
        let mut k = 0;
        while k < n.min(m) && old[n - 1 - k] == new[m - 1 - k] {
            k += 1;
        }
        self.revalidate_with_mods_hinted(old, new, p, k)
    }

    /// §4.3 with caller-supplied edit locality: `common_prefix` symbols at
    /// the start and `common_suffix` symbols at the end of `new` are known
    /// unchanged from `old`. Any under-estimate is sound (extra symbols are
    /// just rescanned); over-estimates are the caller's bug.
    ///
    /// # Panics
    /// Panics (debug) if the hints exceed the string lengths.
    pub fn revalidate_with_mods_hinted(
        &self,
        old: &[Sym],
        new: &[Sym],
        common_prefix: usize,
        common_suffix: usize,
    ) -> Decision {
        let (n, m) = (old.len(), new.len());
        let p = common_prefix;
        let k = common_suffix;
        debug_assert!(p <= n.min(m) && k <= n.min(m), "hints out of range");
        debug_assert!(old[..p] == new[..p], "prefix hint wrong");
        debug_assert!(old[n - k..] == new[m - k..], "suffix hint wrong");

        // Cost estimates: symbols each strategy must look at.
        let forward_cost = (m - k) + (n - k);
        let backward_cost = (m - p) + (n - p);
        let plain_cost = m;

        if forward_cost <= backward_cost && forward_cost < plain_cost {
            self.forward_with_mods(old, new, k)
        } else if self.reverse.is_some() && backward_cost < plain_cost {
            self.backward_with_mods(old, new, p)
        } else {
            let out = self.b_immed.run(new);
            Decision {
                accepted: out.accepted(),
                symbols_scanned: out.consumed(),
                strategy: Strategy::PlainScan,
            }
        }
    }

    /// Forward Prop. 2 with a known common suffix length `k`.
    fn forward_with_mods(&self, old: &[Sym], new: &[Sym], k: usize) -> Decision {
        let (n, m) = (old.len(), new.len());
        let i = m - k; // first index of the unchanged suffix in `new`
                       // Step 1: evaluate new[0..i] with b_immed.
        let (out, qb) = self
            .b_immed
            .run_from_with_state(self.b_immed.dfa().start(), &new[..i]);
        match out {
            IdaOutcome::Accept {
                early: true,
                consumed,
            } => {
                return Decision {
                    accepted: true,
                    symbols_scanned: consumed,
                    strategy: Strategy::ForwardWithMods,
                }
            }
            IdaOutcome::Reject {
                early: true,
                consumed,
            } => {
                return Decision {
                    accepted: false,
                    symbols_scanned: consumed,
                    strategy: Strategy::ForwardWithMods,
                }
            }
            // Not early: i symbols consumed, continue from qb.
            _ => {}
        }
        // Step 2: evaluate old[0..n-k] with a.
        let qa = self.a.run_from(self.a.start(), &old[..n - k]);
        // Steps 3–4: continue over the unchanged suffix with c_immed.
        let out = self.c_immed.run_from_pair(qa, qb, &new[i..]);
        Decision {
            accepted: out.accepted(),
            symbols_scanned: i + (n - k) + out.consumed(),
            strategy: Strategy::ForwardWithMods,
        }
    }

    /// Backward variant over the reverse automata, with a known common
    /// prefix length `p`: `new ∈ L(b)` iff `rev(new) ∈ L(rev(b))`, and
    /// `rev(new)` has the unchanged region `rev(old[..p])` as its suffix.
    fn backward_with_mods(&self, old: &[Sym], new: &[Sym], p: usize) -> Decision {
        let rev = self.reverse.as_ref().expect("reverse machinery built");
        let (n, m) = (old.len(), new.len());

        let new_rev_prefix: Vec<Sym> = new[p..].iter().rev().copied().collect();
        let (out, qb) = rev
            .b_rev_immed
            .run_from_with_state(rev.b_rev_immed.dfa().start(), &new_rev_prefix);
        match out {
            IdaOutcome::Accept {
                early: true,
                consumed,
            } => {
                return Decision {
                    accepted: true,
                    symbols_scanned: consumed,
                    strategy: Strategy::BackwardWithMods,
                }
            }
            IdaOutcome::Reject {
                early: true,
                consumed,
            } => {
                return Decision {
                    accepted: false,
                    symbols_scanned: consumed,
                    strategy: Strategy::BackwardWithMods,
                }
            }
            _ => {}
        }

        let old_rev_prefix: Vec<Sym> = old[p..].iter().rev().copied().collect();
        let qa = rev.a_rev.run_from(rev.a_rev.start(), &old_rev_prefix);

        // The unchanged region is scanned lazily in reverse: an immediate
        // accept (typical when the reversed residuals coincide past the
        // edit) touches O(1) symbols of a potentially huge prefix.
        let out = rev
            .c_rev_immed
            .run_from_pair_iter(qa, qb, old[..p].iter().rev().copied());
        Decision {
            accepted: out.accepted(),
            symbols_scanned: (m - p) + (n - p) + out.consumed(),
            strategy: Strategy::BackwardWithMods,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    fn setup(src: &str, tgt: &str) -> (StringCast, Alphabet, Dfa, Dfa) {
        let mut ab = Alphabet::new();
        let a = compile(src, &mut ab);
        let b = compile(tgt, &mut ab);
        (
            StringCast::new(a.clone(), b.clone()).with_reverse(),
            ab,
            a,
            b,
        )
    }

    #[test]
    fn revalidate_decides_membership_in_b() {
        let (cast, ab, a, b) = setup("(x | y)*, z", "x*, (y | z)+");
        let syms: Vec<Sym> = ab.symbols().collect();
        let mut inputs: Vec<Vec<Sym>> = vec![vec![]];
        for _ in 0..5 {
            let mut next = Vec::new();
            for base in &inputs {
                for &s in &syms {
                    let mut v = base.clone();
                    v.push(s);
                    next.push(v);
                }
            }
            inputs.extend(next);
        }
        inputs.retain(|i| a.accepts(i));
        for input in &inputs {
            let d = cast.revalidate(input);
            assert_eq!(d.accepted, b.accepts(input), "input {input:?}");
            assert!(d.symbols_scanned <= input.len());
        }
    }

    #[test]
    fn identical_schemas_accept_immediately() {
        let (cast, ab, _, _) = setup("(a, b?, c)", "(a, b?, c)");
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        // a == b, so the start pair already satisfies L(qa) ⊆ L(qb):
        // zero symbols scanned.
        let d = cast.revalidate(&[a, b, c]);
        assert!(d.accepted);
        assert_eq!(d.symbols_scanned, 0);
    }

    #[test]
    fn with_mods_prefix_edit_uses_forward() {
        // Long tail unchanged: forward strategy, cost independent of tail
        // scanning thanks to the product IDA reaching an IA state.
        let (cast, ab, a, b) = setup("(h1 | h2), t*", "h2, t*");
        let h1 = ab.lookup("h1").unwrap();
        let h2 = ab.lookup("h2").unwrap();
        let t = ab.lookup("t").unwrap();

        let mut old = vec![h1];
        old.extend(std::iter::repeat_n(t, 500));
        assert!(a.accepts(&old));
        // Edit: relabel the head h1 → h2.
        let mut new = old.clone();
        new[0] = h2;
        assert!(b.accepts(&new));

        let d = cast.revalidate_with_mods(&old, &new);
        assert!(d.accepted);
        assert_eq!(d.strategy, Strategy::ForwardWithMods);
        // After the changed head, both machines sit in "t*" states whose
        // languages coincide — the IDA should accept far before the end.
        assert!(
            d.symbols_scanned < 20,
            "scanned {} symbols",
            d.symbols_scanned
        );
    }

    #[test]
    fn with_mods_suffix_edit_uses_backward() {
        let (cast, ab, a, b) = setup("h, t*, (e1 | e2)", "h, t*, e2");
        let h = ab.lookup("h").unwrap();
        let t = ab.lookup("t").unwrap();
        let e1 = ab.lookup("e1").unwrap();
        let e2 = ab.lookup("e2").unwrap();

        let mut old = vec![h];
        old.extend(std::iter::repeat_n(t, 500));
        old.push(e1);
        assert!(a.accepts(&old));
        let mut new = old.clone();
        let last = new.len() - 1;
        new[last] = e2;
        assert!(b.accepts(&new));

        let d = cast.revalidate_with_mods(&old, &new);
        assert!(d.accepted);
        assert_eq!(d.strategy, Strategy::BackwardWithMods);
        assert!(
            d.symbols_scanned < 20,
            "scanned {} symbols",
            d.symbols_scanned
        );
    }

    #[test]
    fn with_mods_agrees_with_direct_check_on_edit_scripts() {
        let (cast, ab, a, b) = setup("(x | y)+, z", "x+, z");
        let x = ab.lookup("x").unwrap();
        let y = ab.lookup("y").unwrap();
        let z = ab.lookup("z").unwrap();

        let old = vec![x, y, x, z];
        assert!(a.accepts(&old));
        let candidates: Vec<Vec<Sym>> = vec![
            vec![x, x, x, z],    // relabel y→x: valid in b
            vec![x, y, x, z],    // unchanged: invalid in b (contains y)
            vec![x, x, z],       // delete: valid
            vec![x, x, x, x, z], // insert: valid
            vec![z],             // heavy edit: invalid (x+ required)
            vec![x, z],          // valid
            vec![y, z],          // invalid
        ];
        for new in &candidates {
            let d = cast.revalidate_with_mods(&old, new);
            assert_eq!(d.accepted, b.accepts(new), "new {new:?}");
        }
    }

    #[test]
    fn for_updates_single_schema() {
        let mut ab = Alphabet::new();
        let a = compile("(item*, total)", &mut ab);
        let cast = StringCast::for_updates(a.clone()).with_reverse();
        let item = ab.lookup("item").unwrap();
        let total = ab.lookup("total").unwrap();

        let old = vec![item, item, total];
        assert!(a.accepts(&old));
        // Insert an item at the front: still valid.
        let new = vec![item, item, item, total];
        assert!(cast.revalidate_with_mods(&old, &new).accepted);
        // Delete the total: invalid.
        let new = vec![item, item];
        assert!(!cast.revalidate_with_mods(&old, &new).accepted);
    }

    #[test]
    fn unmodified_string_costs_nothing_when_subsumed() {
        let (cast, ab, a, _) = setup("(a, b)", "(a, b) | c");
        let sa = ab.lookup("a").unwrap();
        let sb = ab.lookup("b").unwrap();
        let old = vec![sa, sb];
        assert!(a.accepts(&old));
        let d = cast.revalidate_with_mods(&old, &old);
        assert!(d.accepted);
        // L(a) ⊆ L(b): start pair is IA, decision after zero symbols.
        assert_eq!(d.symbols_scanned, 0);
    }
}
