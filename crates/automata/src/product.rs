//! Intersection (product) automata.
//!
//! The product is built over **all** pairs `Q_a × Q_b`, not just the pairs
//! reachable from `(q_a⁰, q_b⁰)`: the with-modifications algorithm of §4.3
//! enters the product at an arbitrary pair `(q_a, q_b)` computed by running
//! the two automata over different strings, so every pair must be addressable
//! and every pair's `IA`/`IR` classification must be precomputed.

use crate::dfa::{Dfa, StateId};
use schemacast_regex::Sym;

/// The intersection automaton `c` of two DFAs `a` and `b`, with dense pair
/// indexing: state `(q_a, q_b)` has index `q_a · |Q_b| + q_b`.
#[derive(Debug, Clone)]
pub struct Product {
    dfa: Dfa,
    na: usize,
    nb: usize,
}

impl Product {
    /// Builds the full product of `a` and `b`. The alphabet is the wider of
    /// the two (symbols missing from one machine's table go to its sink, as
    /// with any [`Dfa::step`]).
    pub fn new(a: &Dfa, b: &Dfa) -> Product {
        let alphabet = a.alphabet_len().max(b.alphabet_len());
        let (na, nb) = (a.state_count(), b.state_count());
        let n = na * nb;
        let mut trans = vec![0 as StateId; n * alphabet];
        let mut finals = vec![false; n];
        for qa in 0..na as StateId {
            for qb in 0..nb as StateId {
                let q = qa as usize * nb + qb as usize;
                finals[q] = a.is_final(qa) && b.is_final(qb);
                for s in 0..alphabet {
                    let sym = Sym(s as u32);
                    let ta = a.step(qa, sym);
                    let tb = b.step(qb, sym);
                    trans[q * alphabet + s] = (ta as usize * nb + tb as usize) as StateId;
                }
            }
        }
        let start = a.start() as usize * nb + b.start() as usize;
        let dfa = Dfa::from_parts(alphabet, start as StateId, trans, finals);
        Product { dfa, na, nb }
    }

    /// The product DFA (`L = L(a) ∩ L(b)`).
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Index of the pair state `(q_a, q_b)`.
    #[inline]
    pub fn pair(&self, qa: StateId, qb: StateId) -> StateId {
        debug_assert!((qa as usize) < self.na && (qb as usize) < self.nb);
        (qa as usize * self.nb + qb as usize) as StateId
    }

    /// The `(q_a, q_b)` components of a pair state.
    ///
    /// Returns `None` for the synthetic sink that [`Dfa::from_parts`] may
    /// have appended beyond the `na·nb` grid (never happens in practice —
    /// the `(sink_a, sink_b)` pair already serves as the product sink).
    #[inline]
    pub fn unpair(&self, q: StateId) -> Option<(StateId, StateId)> {
        let q = q as usize;
        if q < self.na * self.nb {
            Some(((q / self.nb) as StateId, (q % self.nb) as StateId))
        } else {
            None
        }
    }

    /// Number of `a`-states.
    pub fn a_states(&self) -> usize {
        self.na
    }

    /// Number of `b`-states.
    pub fn b_states(&self) -> usize {
        self.nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        // Defer table width to the caller's alphabet as it stands now; the
        // product widens as needed.
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn product_accepts_intersection() {
        let mut ab = Alphabet::new();
        let d1 = compile("(a | b)*, c", &mut ab);
        let d2 = compile("a, (b | c)*", &mut ab);
        let p = Product::new(&d1, &d2);
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        // In both: starts with a, ends with c, middle from {b,c}/{a,b}…
        assert!(p.dfa().accepts(&[a, c]));
        assert!(p.dfa().accepts(&[a, b, c]));
        assert!(!p.dfa().accepts(&[c])); // not in d2
        assert!(!p.dfa().accepts(&[a, b])); // not in d1
        assert!(!p.dfa().accepts(&[]));
    }

    #[test]
    fn product_with_different_alphabet_widths() {
        let mut ab = Alphabet::new();
        let d1 = compile("a", &mut ab); // table width 1
        let d2 = compile("a | b", &mut ab); // table width 2
        let p = Product::new(&d1, &d2);
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        assert!(p.dfa().accepts(&[a]));
        assert!(!p.dfa().accepts(&[b])); // d1 rejects b via sink widening
    }

    #[test]
    fn pair_round_trip() {
        let mut ab = Alphabet::new();
        let d1 = compile("a, b", &mut ab);
        let d2 = compile("a, b?", &mut ab);
        let p = Product::new(&d1, &d2);
        for qa in 0..d1.state_count() as StateId {
            for qb in 0..d2.state_count() as StateId {
                let q = p.pair(qa, qb);
                assert_eq!(p.unpair(q), Some((qa, qb)));
            }
        }
    }

    #[test]
    fn product_start_is_pair_of_starts() {
        let mut ab = Alphabet::new();
        let d1 = compile("a*", &mut ab);
        let d2 = compile("a?", &mut ab);
        let p = Product::new(&d1, &d2);
        assert_eq!(p.dfa().start(), p.pair(d1.start(), d2.start()));
    }
}
