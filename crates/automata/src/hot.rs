//! Branchless hot-path transition tables.
//!
//! [`Dfa::step`] carries a per-step branch (`sym.index() < alphabet_len`)
//! to route symbols interned after the DFA was built to the sink, and the
//! streaming validator's IDA path follows it with two bitset probes
//! (`IA`/`IR` membership). [`HotDfa`] flattens all of that into data:
//!
//! * the transition table grows one extra **sink column**, and the column
//!   index is clamped with `min` (a `cmov`, not a branch), so unknown
//!   symbols take the same indexed load as known ones;
//! * per-state facts (final / immediate-accept / immediate-reject) are
//!   packed into one flag byte per state, so a decision probe is a single
//!   byte load instead of two bitset word lookups.
//!
//! The inner validation loop becomes: one multiply, one clamped load, one
//! byte load, one test — no data-dependent branches until a decision
//! actually fires. `HotDfa` is a *view* derived from a [`Dfa`] (plus
//! optional decision sets); the `Dfa` remains the source of truth for
//! every offline algorithm.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, StateId};

/// State-flag bits of a [`HotDfa`].
pub mod state_flags {
    /// The state is accepting.
    pub const FINAL: u8 = 1;
    /// The state is immediate-accept (`IA`, Definition 6/7).
    pub const IA: u8 = 2;
    /// The state is immediate-reject (`IR`, Definition 6/7).
    pub const IR: u8 = 4;
}

/// A dense, branchless transition table derived from a [`Dfa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotDfa {
    /// Columns per row: `alphabet_len + 1`; the last column is the sink
    /// column every out-of-alphabet symbol clamps to.
    width: usize,
    /// Row-major `state_count × width` table.
    trans: Vec<StateId>,
    /// One flag byte per state ([`state_flags`]).
    flags: Vec<u8>,
    start: StateId,
    sink: StateId,
}

impl HotDfa {
    /// Builds the hot table of `d` with only [`state_flags::FINAL`] flags.
    pub fn from_dfa(d: &Dfa) -> HotDfa {
        Self::build(d, |_| 0)
    }

    /// Builds the hot table of `d` with `IA`/`IR` decision flags folded in
    /// (the sets of an immediate decision automaton over `d`).
    pub fn with_decisions(d: &Dfa, ia: &BitSet, ir: &BitSet) -> HotDfa {
        Self::build(d, |q| {
            let mut f = 0;
            if ia.contains(q) {
                f |= state_flags::IA;
            }
            if ir.contains(q) {
                f |= state_flags::IR;
            }
            f
        })
    }

    fn build(d: &Dfa, extra: impl Fn(usize) -> u8) -> HotDfa {
        let n = d.state_count();
        let alen = d.alphabet_len();
        let width = alen + 1;
        let mut trans = Vec::with_capacity(n * width);
        let mut flags = Vec::with_capacity(n);
        for q in 0..n {
            trans.extend_from_slice(d.row(q as StateId));
            trans.push(d.sink());
            let mut f = extra(q);
            if d.is_final(q as StateId) {
                f |= state_flags::FINAL;
            }
            flags.push(f);
        }
        HotDfa {
            width,
            trans,
            flags,
            start: d.start(),
            sink: d.sink(),
        }
    }

    /// Columns per row (`alphabet_len + 1`).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The sink (dead) state.
    #[inline]
    pub fn sink(&self) -> StateId {
        self.sink
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.flags.len()
    }

    /// One branchless transition step. `col` is the symbol's dense index;
    /// out-of-range columns (symbols interned after the DFA was built)
    /// clamp to the sink column, so the semantics match [`Dfa::step`]
    /// without its range branch.
    #[inline]
    pub fn step(&self, q: StateId, col: usize) -> StateId {
        self.trans[q as usize * self.width + col.min(self.width - 1)]
    }

    /// The flag byte of `q` ([`state_flags`]).
    #[inline]
    pub fn flags(&self, q: StateId) -> u8 {
        self.flags[q as usize]
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.flags(q) & state_flags::FINAL != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ida::{Ida, ProductIda};
    use schemacast_regex::{parse_regex, Alphabet, Sym};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn hot_step_agrees_with_dfa_step_everywhere() {
        let mut ab = Alphabet::new();
        let d = compile("(a | b)*, c, (a, c)?", &mut ab);
        let hot = HotDfa::from_dfa(&d);
        assert_eq!(hot.start(), d.start());
        assert_eq!(hot.sink(), d.sink());
        assert_eq!(hot.state_count(), d.state_count());
        assert_eq!(hot.width(), d.alphabet_len() + 1);
        for q in 0..d.state_count() as StateId {
            assert_eq!(hot.is_final(q), d.is_final(q), "finality of {q}");
            // In-alphabet columns, the sink column, and far-out-of-range
            // columns (late-interned symbols) all agree with Dfa::step.
            for col in 0..d.alphabet_len() + 4 {
                assert_eq!(
                    hot.step(q, col),
                    d.step(q, Sym(col as u32)),
                    "step({q}, {col})"
                );
            }
        }
    }

    #[test]
    fn decision_flags_mirror_the_ida_sets() {
        let mut ab = Alphabet::new();
        let a = compile("(shipTo, billTo?, items)", &mut ab);
        let b = compile("(shipTo, billTo, items)", &mut ab);
        let c = ProductIda::new(&a, &b);
        let ida = c.ida();
        let hot = ida.hot();
        let mut saw_ia = false;
        let mut saw_ir = false;
        for q in 0..ida.dfa().state_count() as StateId {
            let f = hot.flags(q);
            assert_eq!(f & state_flags::IA != 0, ida.is_ia(q), "IA of {q}");
            assert_eq!(f & state_flags::IR != 0, ida.is_ir(q), "IR of {q}");
            assert_eq!(f & state_flags::FINAL != 0, ida.dfa().is_final(q));
            saw_ia |= ida.is_ia(q);
            saw_ir |= ida.is_ir(q);
        }
        assert!(saw_ia && saw_ir, "test DFA pair exercises both flag kinds");
    }

    #[test]
    fn plain_ida_carries_final_flags_only_where_expected() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b)", &mut ab);
        let ida = Ida::from_dfa(&d);
        let hot = ida.hot();
        // The sink is IR; the flag byte says so in one load.
        assert_eq!(
            hot.flags(d.sink()) & state_flags::IR,
            state_flags::IR,
            "sink is immediate-reject"
        );
        assert_eq!(hot.flags(d.sink()) & state_flags::FINAL, 0);
    }
}
