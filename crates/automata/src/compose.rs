//! Hop-by-hop composition of cast relations along a schema-evolution chain.
//!
//! A chain `v_1 → v_2 → … → v_N` carries one `(R_sub, R_dis)` relation pair
//! per hop. This module computes the *end-to-end* relation from every
//! version to the final one, using only the compositions that are sound:
//!
//! * **Subsumption composes transitively.** `L(τ_1) ⊆ L(τ_2)` and
//!   `L(τ_2) ⊆ L(τ_3)` give `L(τ_1) ⊆ L(τ_3)` — a relational product of the
//!   per-hop `R_sub` tables.
//! * **Disjointness does not compose with itself.** `L(τ_1) ∩ L(τ_2) = ∅`
//!   and `L(τ_2) ∩ L(τ_3) = ∅` say nothing about `τ_1` vs `τ_3` (the two
//!   languages may be equal). The only sound transport is through a
//!   subsumption prefix: `L(τ_1) ⊆ L(τ_k)` and `L(τ_k) ∩ L(τ_N) = ∅` give
//!   `L(τ_1) ∩ L(τ_N) = ∅`. Hence a composed disjointness here is always
//!   `sub* · dis` with the disjoint step on the final hop.
//!
//! Pairs the composition cannot decide are the caller's problem — the chain
//! analyzer falls back to computing the relations (and the product IDA)
//! directly over the composed `(v_1, v_N)` pair.
//!
//! Every composed membership records the *middle type* that witnessed it,
//! so the full witness tuple `(τ_1, τ_2, …, τ_N)` can be recovered by
//! following the per-level middles — that tuple is exactly what a
//! composition certificate needs.

use crate::bitset::BitSet;

/// Sentinel middle type for the last level, where the composed relation is
/// the hop relation itself and no middle type exists.
pub const NO_MID: u32 = u32::MAX;

/// One hop's relation tables: row `s` holds the target types `t` with
/// `(s, t)` in the relation.
#[derive(Debug, Clone)]
pub struct HopRelations {
    /// Source-side type count (row count).
    pub rows: usize,
    /// Target-side type count (bit width of each row).
    pub cols: usize,
    /// `R_sub` rows, one [`BitSet`] of width `cols` per source type.
    pub sub: Vec<BitSet>,
    /// `R_dis` rows, same layout.
    pub dis: Vec<BitSet>,
}

/// The composed relation from one chain version to the final version, with
/// per-pair middle-type witnesses. Grids are row-major: pair `(s, t)` lives
/// at `s * cols + t`.
#[derive(Debug, Clone)]
pub struct ComposedLevel {
    /// Type count of this level's version.
    pub rows: usize,
    /// Type count of the final version.
    pub cols: usize,
    /// Composed subsumption membership.
    pub sub: Vec<bool>,
    /// For composed-subsumed pairs: the witness middle type in the next
    /// version ([`NO_MID`] on the last level, where the hop fact is direct).
    pub sub_mid: Vec<u32>,
    /// Composed disjointness membership (`sub* · dis` shape).
    pub dis: Vec<bool>,
    /// Middle-type witnesses for composed-disjoint pairs, as for `sub_mid`.
    pub dis_mid: Vec<u32>,
}

impl ComposedLevel {
    /// Whether `(s, t)` is in the composed subsumption relation.
    pub fn subsumed(&self, s: usize, t: usize) -> bool {
        self.sub[s * self.cols + t]
    }

    /// Whether `(s, t)` is in the composed disjointness relation.
    pub fn disjoint(&self, s: usize, t: usize) -> bool {
        self.dis[s * self.cols + t]
    }
}

/// Composes a chain of per-hop relations into one [`ComposedLevel`] per
/// version: `levels[i]` relates version `i`'s types to the final version's.
///
/// Computed backward: the last level is the last hop verbatim; level `i`
/// joins hop `i`'s `R_sub` with level `i + 1` (subsumption with composed
/// subsumption, and — soundly — subsumption with composed disjointness).
///
/// # Panics
///
/// Panics if `hops` is empty or adjacent hops disagree on the shared
/// version's type count.
pub fn compose_chain(hops: &[HopRelations]) -> Vec<ComposedLevel> {
    assert!(!hops.is_empty(), "a chain needs at least one hop");
    for w in hops.windows(2) {
        assert_eq!(
            w[0].cols, w[1].rows,
            "adjacent hops disagree on the shared version's type count"
        );
    }
    let final_cols = hops.last().expect("non-empty").cols;
    let mut levels: Vec<ComposedLevel> = Vec::with_capacity(hops.len());

    // Last level: the hop relation itself.
    let last = hops.last().expect("non-empty");
    let mut level = ComposedLevel {
        rows: last.rows,
        cols: final_cols,
        sub: vec![false; last.rows * final_cols],
        sub_mid: vec![NO_MID; last.rows * final_cols],
        dis: vec![false; last.rows * final_cols],
        dis_mid: vec![NO_MID; last.rows * final_cols],
    };
    for s in 0..last.rows {
        for t in last.sub[s].iter() {
            level.sub[s * final_cols + t] = true;
        }
        for t in last.dis[s].iter() {
            level.dis[s * final_cols + t] = true;
        }
    }
    levels.push(level);

    // Earlier levels, back to front: join hop i's R_sub with level i + 1.
    for hop in hops[..hops.len() - 1].iter().rev() {
        let next = levels.last().expect("pushed above");
        let mut level = ComposedLevel {
            rows: hop.rows,
            cols: final_cols,
            sub: vec![false; hop.rows * final_cols],
            sub_mid: vec![NO_MID; hop.rows * final_cols],
            dis: vec![false; hop.rows * final_cols],
            dis_mid: vec![NO_MID; hop.rows * final_cols],
        };
        for s in 0..hop.rows {
            for m in hop.sub[s].iter() {
                for t in 0..final_cols {
                    let q = s * final_cols + t;
                    if !level.sub[q] && next.sub[m * final_cols + t] {
                        level.sub[q] = true;
                        level.sub_mid[q] = m as u32;
                    }
                    if !level.dis[q] && next.dis[m * final_cols + t] {
                        level.dis[q] = true;
                        level.dis_mid[q] = m as u32;
                    }
                }
            }
        }
        levels.push(level);
    }

    levels.reverse();
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(
        rows: usize,
        cols: usize,
        sub: &[(usize, usize)],
        dis: &[(usize, usize)],
    ) -> HopRelations {
        let mut h = HopRelations {
            rows,
            cols,
            sub: vec![BitSet::new(cols); rows],
            dis: vec![BitSet::new(cols); rows],
        };
        for &(s, t) in sub {
            h.sub[s].insert(t);
        }
        for &(s, t) in dis {
            h.dis[s].insert(t);
        }
        h
    }

    #[test]
    fn sub_composes_transitively() {
        // 0 ⊑ 1 (hop 1), 1 ⊑ 2 (hop 2) ⇒ 0 ⊑ 2 composed, middle = 1.
        let hops = [hop(2, 3, &[(0, 1)], &[]), hop(3, 2, &[(1, 0)], &[])];
        let levels = compose_chain(&hops);
        assert_eq!(levels.len(), 2);
        assert!(levels[0].subsumed(0, 0));
        assert_eq!(levels[0].sub_mid[0], 1);
        assert!(!levels[0].subsumed(1, 0));
        // Last level is hop 2 verbatim, no middle.
        assert!(levels[1].subsumed(1, 0));
        // Row 1, column 0 of the 3×2 last level: `1 * cols + 0`.
        assert_eq!(levels[1].sub_mid[2], NO_MID);
    }

    #[test]
    fn dis_transports_only_through_a_sub_prefix() {
        // dis·dis does NOT compose; sub·dis does.
        let dis_dis = [hop(1, 1, &[], &[(0, 0)]), hop(1, 1, &[], &[(0, 0)])];
        let levels = compose_chain(&dis_dis);
        assert!(!levels[0].disjoint(0, 0), "dis after dis must not compose");

        let sub_dis = [hop(1, 1, &[(0, 0)], &[]), hop(1, 1, &[], &[(0, 0)])];
        let levels = compose_chain(&sub_dis);
        assert!(levels[0].disjoint(0, 0));
        assert_eq!(levels[0].dis_mid[0], 0);
        assert!(!levels[0].subsumed(0, 0));
    }

    #[test]
    fn three_hop_tuples_recover_through_mids() {
        let hops = [
            hop(1, 2, &[(0, 1)], &[]),
            hop(2, 2, &[(1, 0)], &[]),
            hop(2, 1, &[(0, 0)], &[]),
        ];
        let levels = compose_chain(&hops);
        assert!(levels[0].subsumed(0, 0));
        // Follow the mids: v1:0 → v2:1 → v3:0 → v4:0.
        let m1 = levels[0].sub_mid[0] as usize;
        assert_eq!(m1, 1);
        let m2 = levels[1].sub_mid[m1 * levels[1].cols] as usize;
        assert_eq!(m2, 0);
        assert_eq!(levels[2].sub_mid[m2 * levels[2].cols], NO_MID);
    }
}
