//! DFA minimization by partition refinement.
//!
//! Hopcroft-style refinement over the reachable part of the automaton. We use
//! the conservative worklist rule (requeue both halves of a split), which
//! keeps the implementation compact and is amply fast for content-model-sized
//! machines; the asymptotic refinement structure is unchanged.

use crate::dfa::{Dfa, StateId};

/// Returns the minimal DFA equivalent to `d` (unique up to isomorphism for
/// complete DFAs).
pub fn minimize(d: &Dfa) -> Dfa {
    let alphabet = d.alphabet_len();

    // Compact to reachable states (always keep the sink so the result stays
    // complete without re-materializing one).
    let reach = d.reachable();
    let mut compact: Vec<StateId> = vec![StateId::MAX; d.state_count()];
    let mut states: Vec<StateId> = Vec::new();
    for q in reach.iter() {
        compact[q] = states.len() as StateId;
        states.push(q as StateId);
    }
    if compact[d.sink() as usize] == StateId::MAX {
        compact[d.sink() as usize] = states.len() as StateId;
        states.push(d.sink());
    }
    let n = states.len();

    // Reverse edges per symbol over the compacted automaton.
    let mut rev: Vec<Vec<Vec<StateId>>> = vec![vec![Vec::new(); n]; alphabet];
    for (cq, &q) in states.iter().enumerate() {
        let row = d.row(q);
        for (s, &t) in row.iter().enumerate() {
            let ct = compact[t as usize];
            // Targets are reachable whenever the source is, except the row of
            // the sink we may have force-added; its targets are itself.
            rev[s][ct as usize].push(cq as StateId);
        }
    }

    // Initial partition: finals vs. non-finals.
    let mut block_of: Vec<usize> = vec![0; n];
    let mut blocks: Vec<Vec<StateId>> = vec![Vec::new(), Vec::new()];
    for (cq, &q) in states.iter().enumerate() {
        let b = usize::from(!d.is_final(q));
        block_of[cq] = b;
        blocks[b].push(cq as StateId);
    }
    blocks.retain(|b| !b.is_empty());
    for (i, b) in blocks.iter().enumerate() {
        for &q in b {
            block_of[q as usize] = i;
        }
    }

    let mut work: Vec<usize> = (0..blocks.len()).collect();
    let mut in_x: Vec<bool> = vec![false; n];

    while let Some(a_idx) = work.pop() {
        let a_states = blocks[a_idx].clone();
        for rev_s in rev.iter() {
            // X = predecessors of A on this symbol, grouped by current block.
            let mut touched: Vec<usize> = Vec::new();
            let mut hits: Vec<Vec<StateId>> = Vec::new();
            for &aq in &a_states {
                for &p in &rev_s[aq as usize] {
                    if in_x[p as usize] {
                        continue;
                    }
                    in_x[p as usize] = true;
                    let b = block_of[p as usize];
                    match touched.iter().position(|&t| t == b) {
                        Some(i) => hits[i].push(p),
                        None => {
                            touched.push(b);
                            hits.push(vec![p]);
                        }
                    }
                }
            }
            for (b_idx, hit) in touched.into_iter().zip(hits) {
                for &p in &hit {
                    in_x[p as usize] = false;
                }
                if hit.len() == blocks[b_idx].len() {
                    continue; // no split
                }
                // Split: blocks[b_idx] keeps the non-hit states.
                let mut marked = vec![false; n];
                for &p in &hit {
                    marked[p as usize] = true;
                }
                blocks[b_idx].retain(|&q| !marked[q as usize]);
                let new_idx = blocks.len();
                for &p in &hit {
                    block_of[p as usize] = new_idx;
                }
                blocks.push(hit);
                // Conservative rule: requeue both halves.
                if !work.contains(&b_idx) {
                    work.push(b_idx);
                }
                work.push(new_idx);
            }
        }
    }

    // Assemble the quotient automaton.
    let m = blocks.len();
    let mut trans = vec![0 as StateId; m * alphabet];
    let mut finals = vec![false; m];
    for (b_idx, block) in blocks.iter().enumerate() {
        let rep = states[block[0] as usize];
        finals[b_idx] = d.is_final(rep);
        let row = d.row(rep);
        for s in 0..alphabet {
            let t = row[s];
            trans[b_idx * alphabet + s] = block_of[compact[t as usize] as usize] as StateId;
        }
    }
    let start = block_of[compact[d.start() as usize] as usize] as StateId;
    Dfa::from_parts(alphabet, start, trans, finals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use schemacast_regex::{parse_regex, Alphabet, Sym};

    fn compile(text: &str) -> (Dfa, Alphabet) {
        let mut ab = Alphabet::new();
        let r = parse_regex(text, &mut ab).expect("parse");
        (Dfa::from_regex(&r, ab.len()).expect("compile"), ab)
    }

    fn enumerate_strings(k: usize, len: usize) -> Vec<Vec<Sym>> {
        let mut out: Vec<Vec<Sym>> = vec![vec![]];
        let mut frontier = out.clone();
        for _ in 0..len {
            let mut next = Vec::new();
            for base in &frontier {
                for s in 0..k {
                    let mut v = base.clone();
                    v.push(Sym(s as u32));
                    next.push(v);
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }

    #[test]
    fn minimization_preserves_language() {
        for text in [
            "(a, b?, c)",
            "(a | b)*, c+",
            "(a, a) | (a, b)",
            "a{2,5}",
            "(a, (b | c)*, a?)",
        ] {
            let (d, ab) = compile(text);
            let m = minimize(&d);
            assert!(m.state_count() <= d.state_count());
            for input in enumerate_strings(ab.len(), 5) {
                assert_eq!(
                    d.accepts(&input),
                    m.accepts(&input),
                    "text={text} input={input:?}"
                );
            }
        }
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // (a, c) | (b, c) compiles to a Glushkov automaton with two distinct
        // c-positions that are language-equivalent; minimization merges them.
        let (d, _) = compile("(a, c) | (b, c)");
        let m = minimize(&d);
        assert!(m.state_count() < d.state_count());
    }

    #[test]
    fn minimal_dfa_is_fixed_point() {
        let (d, _) = compile("(a | b)*, c");
        let m1 = minimize(&d);
        let m2 = minimize(&m1);
        assert_eq!(m1.state_count(), m2.state_count());
    }

    #[test]
    fn empty_language_minimizes_to_sink_machine() {
        let d = Dfa::from_regex(&schemacast_regex::Regex::Empty, 2).expect("compile");
        let m = minimize(&d);
        assert!(m.is_empty_language());
        // start block + (possibly merged) sink — at most 2 states.
        assert!(m.state_count() <= 2);
    }
}
