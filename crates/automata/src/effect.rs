//! Edit-effect composition over content-model words.
//!
//! The per-edit analysis of [`crate::safety`] classifies *one* symbol edit
//! universally — over every source word and position. A whole edit script,
//! though, may touch one child list several times, and the verdict that
//! matters is for the *net* effect: an insert later deleted never happened,
//! a rename renamed again is one rename, a rename back to the original
//! label is no edit at all. This module gives scripts a canonical form:
//!
//! * [`EffectOp`] — one primitive word edit in evolving-word coordinates
//!   (positions index the *current* view, deleted placeholders included —
//!   exactly the coordinates of `schemacast_tree::DeltaDoc`);
//! * [`NetEffect::compose`] — replays a script over a view of the original
//!   word, emitting one [`NormStep`] per op. The normalization laws
//!   (insert/delete cancellation, rename/rename-back cancellation,
//!   same-position overwrite collapse, commutation of position-disjoint
//!   edits) are *emergent*: equivalent scripts converge to the same net
//!   word and provenance, and each step is re-checkable from the view state
//!   alone — which is what lets an independent checker replay the trace;
//! * [`NetEffect::decide`] — membership of the net word in the target
//!   model, run in lockstep with the source word so the product IDA's
//!   `IA`/`IR` sets can settle the verdict as soon as the run passes the
//!   last touched position (the remaining effect is the identity, so the
//!   source suffix is guaranteed and the pair's decision set is decisive).
//!
//! Unlike the per-edit verdicts, the decision here is for a *concrete*
//! word: the caller knows the child list being edited. That is why the
//! script analyzer decides a strict superset of the per-edit fast path —
//! `Dynamic` per-edit verdicts ("depends on the word") become definite once
//! the word is in hand.

use crate::dfa::Dfa;
use crate::ida::ProductIda;
use schemacast_regex::Sym;

/// One primitive edit on a content-model word, in evolving-word
/// coordinates: `pos` indexes the current view, *including* deleted
/// placeholders (mirroring `DeltaDoc`'s child lists, where deleted nodes
/// remain as placeholders and insert-then-deleted nodes vanish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectOp {
    /// Insert a fresh symbol at `pos` (`pos ≤ len`).
    Insert {
        /// Position in the current view.
        pos: usize,
        /// The inserted symbol.
        sym: Sym,
    },
    /// Delete the entry at `pos` (`pos < len`, entry not already deleted).
    Delete {
        /// Position in the current view.
        pos: usize,
    },
    /// Relabel the entry at `pos` to `sym`.
    Relabel {
        /// Position in the current view.
        pos: usize,
        /// The new symbol.
        sym: Sym,
    },
}

/// One normalization-trace step: what an op did to the view, stated in
/// terms of the view state right before the op. A checker replaying the
/// ops over its own view derives the same steps or rejects the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormStep {
    /// An insert created a fresh entry.
    InsertFresh {
        /// View position of the new entry.
        pos: usize,
        /// Its symbol.
        sym: Sym,
    },
    /// A delete removed an entry this script itself inserted — the
    /// insert/delete pair cancels and the entry vanishes from the view.
    CancelInserted {
        /// View position of the cancelled entry.
        pos: usize,
        /// The symbol it carried when deleted.
        sym: Sym,
    },
    /// A delete marked an original entry deleted (it stays as a
    /// placeholder).
    DeleteOriginal {
        /// View position.
        pos: usize,
        /// Index in the original word.
        origin: usize,
    },
    /// A relabel of an entry this script inserted — the earlier symbol is
    /// overwritten and never survives (same-position overwrite collapse).
    OverwriteInserted {
        /// View position.
        pos: usize,
        /// Symbol before the op.
        from: Sym,
        /// Symbol after the op.
        to: Sym,
    },
    /// A relabel restored an original entry's own label — the rename and
    /// its rename-back cancel.
    RenameBack {
        /// View position.
        pos: usize,
        /// Index in the original word.
        origin: usize,
        /// The restored (original) symbol.
        sym: Sym,
    },
    /// A relabel gave an original entry a non-original label. A later
    /// relabel of the same entry overwrites this one (collapse).
    RenameOriginal {
        /// View position.
        pos: usize,
        /// Index in the original word.
        origin: usize,
        /// Symbol before the op.
        from: Sym,
        /// Symbol after the op.
        to: Sym,
    },
}

/// Where a net-word symbol came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Original symbol, label unchanged (its subtree is untouched).
    Kept(usize),
    /// Original position, label changed (its subtree is kept).
    Renamed(usize),
    /// Inserted by the script (a fresh, childless entry).
    Fresh,
}

/// The fate of one original-word position under the net effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Survives with its own label.
    Kept,
    /// Survives under a new label.
    Renamed(Sym),
    /// Deleted.
    Deleted,
}

/// How the IDA settled a decision early, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlySettle {
    /// Source-side state after consuming the touched prefix of the
    /// original word (deleted positions included).
    pub qa: u32,
    /// Target-side state after consuming the touched prefix of the net
    /// word.
    pub qb: u32,
    /// Net-word symbols consumed before the decision.
    pub net_consumed: usize,
    /// Original-word symbols consumed before the decision.
    pub orig_consumed: usize,
    /// `true` if the pair was in `IA` (accept), `false` if in `IR`.
    pub ia: bool,
}

/// Outcome of deciding a net effect against a content-model pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectOutcome {
    /// Whether the net word is in the target language.
    pub accepted: bool,
    /// The early IA/IR settle, when the decision sets cut the run short.
    pub early: Option<EarlySettle>,
}

/// One view entry during replay.
#[derive(Debug, Clone, Copy)]
struct Entry {
    sym: Sym,
    origin: Option<usize>,
    deleted: bool,
}

/// The canonical form of a script's effect on one word: the net word with
/// per-symbol provenance, plus the normalization trace that derived it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetEffect {
    orig: Vec<Sym>,
    ops: Vec<EffectOp>,
    trace: Vec<NormStep>,
    word: Vec<Sym>,
    prov: Vec<Provenance>,
}

impl NetEffect {
    /// Replays `ops` over `orig`, producing the canonical net effect, or
    /// `None` if any op is invalid (position out of range, or editing an
    /// already-deleted placeholder) — the cases where the dynamic apply
    /// would error.
    pub fn compose(orig: &[Sym], ops: &[EffectOp]) -> Option<NetEffect> {
        let mut view: Vec<Entry> = orig
            .iter()
            .enumerate()
            .map(|(i, &sym)| Entry {
                sym,
                origin: Some(i),
                deleted: false,
            })
            .collect();
        let mut trace = Vec::with_capacity(ops.len());
        for op in ops {
            let step = match *op {
                EffectOp::Insert { pos, sym } => {
                    if pos > view.len() {
                        return None;
                    }
                    view.insert(
                        pos,
                        Entry {
                            sym,
                            origin: None,
                            deleted: false,
                        },
                    );
                    NormStep::InsertFresh { pos, sym }
                }
                EffectOp::Delete { pos } => {
                    let e = *view.get(pos)?;
                    if e.deleted {
                        return None;
                    }
                    match e.origin {
                        None => {
                            view.remove(pos);
                            NormStep::CancelInserted { pos, sym: e.sym }
                        }
                        Some(origin) => {
                            view[pos].deleted = true;
                            NormStep::DeleteOriginal { pos, origin }
                        }
                    }
                }
                EffectOp::Relabel { pos, sym } => {
                    let e = *view.get(pos)?;
                    if e.deleted {
                        return None;
                    }
                    view[pos].sym = sym;
                    match e.origin {
                        None => NormStep::OverwriteInserted {
                            pos,
                            from: e.sym,
                            to: sym,
                        },
                        Some(origin) if sym == orig[origin] => {
                            NormStep::RenameBack { pos, origin, sym }
                        }
                        Some(origin) => NormStep::RenameOriginal {
                            pos,
                            origin,
                            from: e.sym,
                            to: sym,
                        },
                    }
                }
            };
            trace.push(step);
        }
        let mut word = Vec::new();
        let mut prov = Vec::new();
        for e in &view {
            if e.deleted {
                continue;
            }
            word.push(e.sym);
            prov.push(match e.origin {
                None => Provenance::Fresh,
                Some(o) if e.sym == orig[o] => Provenance::Kept(o),
                Some(o) => Provenance::Renamed(o),
            });
        }
        Some(NetEffect {
            orig: orig.to_vec(),
            ops: ops.to_vec(),
            trace,
            word,
            prov,
        })
    }

    /// The original word the effect was composed over.
    pub fn orig(&self) -> &[Sym] {
        &self.orig
    }

    /// The ops the effect was composed from.
    pub fn ops(&self) -> &[EffectOp] {
        &self.ops
    }

    /// The per-op normalization trace.
    pub fn trace(&self) -> &[NormStep] {
        &self.trace
    }

    /// The net word (the edited child word, placeholders dropped).
    pub fn word(&self) -> &[Sym] {
        &self.word
    }

    /// Per-net-symbol provenance, parallel to [`NetEffect::word`].
    pub fn provenance(&self) -> &[Provenance] {
        &self.prov
    }

    /// The fate of each original position.
    pub fn fates(&self) -> Vec<Fate> {
        let mut fates = vec![Fate::Deleted; self.orig.len()];
        for (i, p) in self.prov.iter().enumerate() {
            match *p {
                Provenance::Kept(o) => fates[o] = Fate::Kept,
                Provenance::Renamed(o) => fates[o] = Fate::Renamed(self.word[i]),
                Provenance::Fresh => {}
            }
        }
        fates
    }

    /// Whether the net effect is the identity: the net word is the
    /// original word, position for position. (Provenance never reorders
    /// originals, so all-kept at full length is exactly the identity.)
    pub fn is_identity(&self) -> bool {
        self.word.len() == self.orig.len()
            && self.prov.iter().all(|p| matches!(p, Provenance::Kept(_)))
    }

    /// Whether normalization genuinely rewrote the script: some op
    /// cancelled an earlier insert, restored an original label, or
    /// overwrote an earlier symbol. Such scripts are exactly the ones
    /// whose net effect has fewer primitive edits than the script.
    pub fn normalized(&self) -> bool {
        self.trace.iter().any(|s| {
            matches!(
                s,
                NormStep::CancelInserted { .. }
                    | NormStep::RenameBack { .. }
                    | NormStep::OverwriteInserted { .. }
            )
        })
    }

    /// The boundary of the untouched suffix: the smallest `(net, orig)`
    /// index pair such that every net entry from `net` on is `Kept` with
    /// contiguous origins `orig..orig_len` — past it the effect is the
    /// identity.
    pub fn untouched_tail(&self) -> (usize, usize) {
        let mut j = self.word.len();
        let mut o = self.orig.len();
        while j > 0 {
            match self.prov[j - 1] {
                Provenance::Kept(oo) if oo + 1 == o => {
                    j -= 1;
                    o -= 1;
                }
                _ => break,
            }
        }
        (j, o)
    }

    /// Decides membership of the net word in `L(b)`, assuming the original
    /// word is in `L(a)` (the caller's validity precondition).
    ///
    /// Runs `a` over the original word and `b` over the net word in
    /// lockstep through the touched region (deleted originals advance the
    /// source side only, fresh inserts the target side only). At the
    /// untouched-tail boundary the remaining net suffix *is* the remaining
    /// original suffix, which the precondition guarantees to be in
    /// `L_a(q_a)` — so the product IDA's decision sets are decisive there:
    /// `IA` accepts and `IR` rejects without scanning the tail. When
    /// neither holds, the run finishes on the target side alone.
    ///
    /// `ida` must have been built from exactly `(a, b)`.
    pub fn decide(&self, a: &Dfa, b: &Dfa, ida: &ProductIda) -> EffectOutcome {
        debug_assert_eq!(ida.product().a_states(), a.state_count());
        debug_assert_eq!(ida.product().b_states(), b.state_count());
        let (tail_net, tail_orig) = self.untouched_tail();
        let mut qa = a.start();
        let mut qb = b.start();
        let mut oi = 0usize;
        for j in 0..tail_net {
            match self.prov[j] {
                Provenance::Fresh => {}
                Provenance::Kept(o) | Provenance::Renamed(o) => {
                    while oi < o {
                        qa = a.step(qa, self.orig[oi]);
                        oi += 1;
                    }
                    qa = a.step(qa, self.orig[oi]);
                    oi += 1;
                }
            }
            qb = b.step(qb, self.word[j]);
        }
        while oi < tail_orig {
            qa = a.step(qa, self.orig[oi]);
            oi += 1;
        }
        let p = ida.product().pair(qa, qb);
        let settle = |ia| {
            Some(EarlySettle {
                qa,
                qb,
                net_consumed: tail_net,
                orig_consumed: tail_orig,
                ia,
            })
        };
        if ida.ida().is_ia(p) {
            return EffectOutcome {
                accepted: true,
                early: settle(true),
            };
        }
        if ida.ida().is_ir(p) {
            return EffectOutcome {
                accepted: false,
                early: settle(false),
            };
        }
        for &sym in &self.word[tail_net..] {
            qb = b.step(qb, sym);
        }
        EffectOutcome {
            accepted: b.is_final(qb),
            early: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    fn syms(ids: &[u32]) -> Vec<Sym> {
        ids.iter().map(|&i| Sym(i)).collect()
    }

    /// Oracle: apply ops the slow way over a `(Sym, inserted, deleted)`
    /// list and return the surviving symbols.
    fn apply_oracle(orig: &[Sym], ops: &[EffectOp]) -> Option<Vec<Sym>> {
        let mut view: Vec<(Sym, bool, bool)> = orig.iter().map(|&s| (s, false, false)).collect();
        for op in ops {
            match *op {
                EffectOp::Insert { pos, sym } => {
                    if pos > view.len() {
                        return None;
                    }
                    view.insert(pos, (sym, true, false));
                }
                EffectOp::Delete { pos } => {
                    let &(_, inserted, deleted) = view.get(pos)?;
                    if deleted {
                        return None;
                    }
                    if inserted {
                        view.remove(pos);
                    } else {
                        view[pos].2 = true;
                    }
                }
                EffectOp::Relabel { pos, sym } => {
                    let &(_, _, deleted) = view.get(pos)?;
                    if deleted {
                        return None;
                    }
                    view[pos].0 = sym;
                }
            }
        }
        Some(
            view.iter()
                .filter(|&&(_, _, d)| !d)
                .map(|&(s, _, _)| s)
                .collect(),
        )
    }

    /// Deterministic op-script generator: enumerates scripts of length
    /// `len` over a word of length `n` with `k` symbols via mixed-radix
    /// counting on `seed`.
    fn gen_script(orig_len: usize, k: u32, len: usize, mut seed: u64) -> Vec<EffectOp> {
        let mut ops = Vec::with_capacity(len);
        let mut cur_len = orig_len;
        for _ in 0..len {
            let kind = (seed % 3) as usize;
            seed /= 3;
            match kind {
                0 => {
                    let pos = (seed % (cur_len as u64 + 1)) as usize;
                    seed /= cur_len as u64 + 1;
                    let sym = Sym((seed % k as u64) as u32);
                    seed /= k as u64;
                    ops.push(EffectOp::Insert { pos, sym });
                    cur_len += 1;
                }
                1 if cur_len > 0 => {
                    let pos = (seed % cur_len as u64) as usize;
                    seed /= cur_len as u64;
                    ops.push(EffectOp::Delete { pos });
                    // The view length only shrinks when the entry was
                    // inserted; for generation purposes keep the bound
                    // conservative (a placeholder stays in the view).
                }
                _ if cur_len > 0 => {
                    let pos = (seed % cur_len as u64) as usize;
                    seed /= cur_len as u64;
                    let sym = Sym((seed % k as u64) as u32);
                    seed /= k as u64;
                    ops.push(EffectOp::Relabel { pos, sym });
                }
                _ => {}
            }
        }
        ops
    }

    #[test]
    fn compose_matches_apply_oracle() {
        let orig = syms(&[0, 1, 0, 2]);
        for len in 0..=4usize {
            for seed in 0..2000u64 {
                let ops = gen_script(orig.len(), 3, len, seed.wrapping_mul(2_654_435_761));
                let net = NetEffect::compose(&orig, &ops);
                let oracle = apply_oracle(&orig, &ops);
                match (net, oracle) {
                    (Some(n), Some(o)) => assert_eq!(n.word(), &o[..], "ops {ops:?}"),
                    (None, None) => {}
                    (n, o) => panic!("compose/oracle disagree on validity: {ops:?} {n:?} {o:?}"),
                }
            }
        }
    }

    #[test]
    fn insert_then_delete_cancels_to_identity() {
        let orig = syms(&[0, 1]);
        let ops = [
            EffectOp::Insert {
                pos: 1,
                sym: Sym(2),
            },
            EffectOp::Delete { pos: 1 },
        ];
        let net = NetEffect::compose(&orig, &ops).unwrap();
        assert!(net.is_identity());
        assert!(net.normalized());
        assert_eq!(
            net.trace(),
            &[
                NormStep::InsertFresh {
                    pos: 1,
                    sym: Sym(2)
                },
                NormStep::CancelInserted {
                    pos: 1,
                    sym: Sym(2)
                },
            ]
        );
    }

    #[test]
    fn rename_and_rename_back_cancel() {
        let orig = syms(&[0, 1]);
        let ops = [
            EffectOp::Relabel {
                pos: 0,
                sym: Sym(2),
            },
            EffectOp::Relabel {
                pos: 0,
                sym: Sym(0),
            },
        ];
        let net = NetEffect::compose(&orig, &ops).unwrap();
        assert!(net.is_identity());
        assert!(net.normalized());
        assert_eq!(net.fates(), vec![Fate::Kept, Fate::Kept]);
    }

    #[test]
    fn same_position_overwrites_collapse() {
        let orig = syms(&[0]);
        // Two relabels: only the last symbol survives.
        let ops = [
            EffectOp::Relabel {
                pos: 0,
                sym: Sym(1),
            },
            EffectOp::Relabel {
                pos: 0,
                sym: Sym(2),
            },
        ];
        let net = NetEffect::compose(&orig, &ops).unwrap();
        assert_eq!(net.word(), &[Sym(2)]);
        assert_eq!(net.fates(), vec![Fate::Renamed(Sym(2))]);
        // Insert then relabel: the inserted symbol is overwritten.
        let ops = [
            EffectOp::Insert {
                pos: 0,
                sym: Sym(1),
            },
            EffectOp::Relabel {
                pos: 0,
                sym: Sym(2),
            },
        ];
        let net = NetEffect::compose(&orig, &ops).unwrap();
        assert_eq!(net.word(), &[Sym(2), Sym(0)]);
        assert!(net.normalized());
        assert_eq!(net.provenance(), &[Provenance::Fresh, Provenance::Kept(0)]);
    }

    #[test]
    fn position_disjoint_edits_commute() {
        let orig = syms(&[0, 1, 2, 0]);
        // Delete at 3 and relabel at 1 touch different entries; either
        // order yields the same net effect. (A delete keeps a placeholder,
        // so later positions are stable across the swap.)
        let ab_order = [
            EffectOp::Delete { pos: 3 },
            EffectOp::Relabel {
                pos: 1,
                sym: Sym(2),
            },
        ];
        let ba_order = [
            EffectOp::Relabel {
                pos: 1,
                sym: Sym(2),
            },
            EffectOp::Delete { pos: 3 },
        ];
        let n1 = NetEffect::compose(&orig, &ab_order).unwrap();
        let n2 = NetEffect::compose(&orig, &ba_order).unwrap();
        assert_eq!(n1.word(), n2.word());
        assert_eq!(n1.provenance(), n2.provenance());
        assert_eq!(n1.fates(), n2.fates());
    }

    #[test]
    fn untouched_tail_is_the_identity_suffix() {
        let orig = syms(&[0, 1, 2]);
        let ops = [EffectOp::Relabel {
            pos: 0,
            sym: Sym(1),
        }];
        let net = NetEffect::compose(&orig, &ops).unwrap();
        assert_eq!(net.untouched_tail(), (1, 1));
        // Identity script: the whole word is tail.
        let net = NetEffect::compose(&orig, &[]).unwrap();
        assert!(net.is_identity());
        assert_eq!(net.untouched_tail(), (0, 0));
        // Trailing delete: the tail is empty.
        let ops = [EffectOp::Delete { pos: 2 }];
        let net = NetEffect::compose(&orig, &ops).unwrap();
        assert_eq!(net.untouched_tail(), (2, 3));
    }

    /// All words of `L(a)` up to `max_len`, over the first `ab_len` symbols.
    fn words_up_to(a: &Dfa, ab_len: usize, max_len: usize) -> Vec<Vec<Sym>> {
        let mut all: Vec<Vec<Sym>> = vec![vec![]];
        let mut frontier: Vec<Vec<Sym>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for base in &frontier {
                for s in 0..ab_len {
                    let mut w = base.clone();
                    w.push(Sym(s as u32));
                    next.push(w);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        all.retain(|w| a.accepts(w));
        all
    }

    #[test]
    fn decide_agrees_with_membership_across_model_pairs() {
        let models = [
            "x*",
            "(x, y?)",
            "(x | y)*",
            "(x, y, z)",
            "(x?, (y | z)+)",
            "((x, y) | z)*",
        ];
        let mut ab = Alphabet::new();
        for s in ["x", "y", "z"] {
            ab.intern(s);
        }
        let mut early_hits = 0usize;
        let mut checked = 0usize;
        for sa in &models {
            for sb in &models {
                let a = compile(sa, &mut ab);
                let b = compile(sb, &mut ab);
                let ida = ProductIda::new(&a, &b);
                for w in words_up_to(&a, 3, 4) {
                    for len in 0..=3usize {
                        for seed in [0u64, 7, 91, 1234, 65537, 999_983] {
                            let ops = gen_script(w.len(), 3, len, seed);
                            let Some(net) = NetEffect::compose(&w, &ops) else {
                                continue;
                            };
                            let out = net.decide(&a, &b, &ida);
                            assert_eq!(
                                out.accepted,
                                b.accepts(net.word()),
                                "{sa} -> {sb}, w={w:?}, ops={ops:?}"
                            );
                            checked += 1;
                            early_hits += usize::from(out.early.is_some());
                        }
                    }
                }
            }
        }
        assert!(checked > 500, "anti-vacuity: ran {checked} decisions");
        assert!(early_hits > 0, "anti-vacuity: IA/IR never settled early");
    }

    #[test]
    fn identity_effect_settles_at_the_start_pair() {
        let mut ab = Alphabet::new();
        let a = compile("x*", &mut ab);
        let b = compile("x*", &mut ab);
        let ida = ProductIda::new(&a, &b);
        let w = syms(&[0, 0, 0]);
        let net = NetEffect::compose(&w, &[]).unwrap();
        let out = net.decide(&a, &b, &ida);
        assert!(out.accepted);
        let early = out.early.expect("identical models settle immediately");
        assert!(early.ia);
        assert_eq!(early.net_consumed, 0);
        assert_eq!(early.orig_consumed, 0);
    }

    #[test]
    fn concrete_word_beats_universal_dynamic_verdict() {
        // The per-edit analysis says inserting billTo into
        // (shipTo, billTo?, items) -> (shipTo, billTo, items) is Dynamic:
        // it depends on the position and the word. With the concrete word
        // (shipTo, items) and the concrete position, the net effect
        // decides.
        let mut ab = Alphabet::new();
        let a = compile("(shipTo, billTo?, items)", &mut ab);
        let b = compile("(shipTo, billTo, items)", &mut ab);
        let ida = ProductIda::new(&a, &b);
        let ship = ab.lookup("shipTo").unwrap();
        let bill = ab.lookup("billTo").unwrap();
        let items = ab.lookup("items").unwrap();
        let w = vec![ship, items];
        // Insert billTo at position 1: accepted.
        let good = NetEffect::compose(&w, &[EffectOp::Insert { pos: 1, sym: bill }]).unwrap();
        assert!(good.decide(&a, &b, &ida).accepted);
        // Insert billTo at position 0: rejected.
        let bad = NetEffect::compose(&w, &[EffectOp::Insert { pos: 0, sym: bill }]).unwrap();
        assert!(!bad.decide(&a, &b, &ida).accepted);
    }

    #[test]
    fn invalid_ops_fail_composition() {
        let orig = syms(&[0]);
        assert!(NetEffect::compose(
            &orig,
            &[EffectOp::Insert {
                pos: 2,
                sym: Sym(1)
            }]
        )
        .is_none());
        assert!(NetEffect::compose(&orig, &[EffectOp::Delete { pos: 1 }]).is_none());
        // Double delete of the same original: the placeholder is dead.
        assert!(NetEffect::compose(
            &orig,
            &[EffectOp::Delete { pos: 0 }, EffectOp::Delete { pos: 0 }]
        )
        .is_none());
        // Relabel of a deleted placeholder.
        assert!(NetEffect::compose(
            &orig,
            &[
                EffectOp::Delete { pos: 0 },
                EffectOp::Relabel {
                    pos: 0,
                    sym: Sym(1)
                }
            ]
        )
        .is_none());
    }
}
