//! Word-level static safety of single-symbol edits.
//!
//! Given a source content model `a` and a target content model `b`, the
//! product IDA of §4 already stores, for every pair `(q_a, q_b)`, whether
//! *every* continuation guaranteed by `a` is accepted by `b` (`IA`) or *no*
//! continuation is (`IR`). Those two sets answer a purely static question
//! about edit scripts: does inserting, deleting, or relabelling one symbol
//! of a word `w ∈ L(a)` always, never, or sometimes produce a word of
//! `L(b)`?
//!
//! The construction quantifies over every way the edit can apply. An
//! application of "insert `ℓ`" is a split `w = u·v` with the edited word
//! `u·ℓ·v`; running the product over `u` lands in a reachable pair
//! `p = (q_a, q_b)`, and after consuming the inserted symbol on the target
//! side only, the remaining run sits at `p' = (q_a, δ_b(q_b, ℓ))` with the
//! guarantee `v ∈ L_a(q_a)`. Hence:
//!
//! * `p' ∈ IA` — this application always yields a `b`-word;
//! * `p' ∈ IR` — this application never does;
//! * otherwise — the outcome depends on `v` (data-dependent).
//!
//! Deleting `ℓ` shifts the *source* side (`p' = (δ_a(q_a, ℓ), q_b)`, with
//! the guarantee restricted to splits where `δ_a(q_a, ℓ)` is co-accessible,
//! i.e. `ℓ` can actually occur at this position of some accepted word), and
//! relabelling `ℓ → m` shifts both (`p' = (δ_a(q_a, ℓ), δ_b(q_b, m))`).
//! Aggregating `p'` over all reachable applications yields the verdict
//! lattice of [`SafetyVerdict`]: all `IA` → `Safe`, all `IR` → `Unsafe`,
//! no application at all → `Inapplicable`, otherwise `Dynamic`.

use crate::bitset::BitSet;
use crate::dfa::Dfa;
use crate::ida::ProductIda;
use schemacast_regex::Sym;

/// Static classification of an edit shape against a schema pair.
///
/// `Safe` and `Unsafe` are universally quantified over every source-valid
/// word and every position the edit can apply to; `Dynamic` means the
/// outcome genuinely depends on the document and must be revalidated;
/// `Inapplicable` means no source-valid word admits the edit at all (the
/// engine treats it like `Dynamic` and lets the runtime path surface the
/// error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SafetyVerdict {
    /// Every application of the edit to every word of `L(a)` stays in
    /// `L(b)`.
    Safe,
    /// No application of the edit to any word of `L(a)` lands in `L(b)`.
    Unsafe,
    /// Some applications stay valid and some do not: revalidate at runtime.
    Dynamic,
    /// The edit cannot apply to any word of `L(a)` (e.g. deleting a label
    /// that never occurs).
    Inapplicable,
}

impl SafetyVerdict {
    /// Lower-case name for rendering (`safe`, `unsafe`, `dynamic`,
    /// `inapplicable`).
    pub fn as_str(self) -> &'static str {
        match self {
            SafetyVerdict::Safe => "safe",
            SafetyVerdict::Unsafe => "unsafe",
            SafetyVerdict::Dynamic => "dynamic",
            SafetyVerdict::Inapplicable => "inapplicable",
        }
    }

    /// Whether the verdict decides the edit statically (Safe or Unsafe).
    pub fn is_decided(self) -> bool {
        matches!(self, SafetyVerdict::Safe | SafetyVerdict::Unsafe)
    }
}

/// Aggregates per-application classifications into a [`SafetyVerdict`].
#[derive(Debug, Clone, Copy)]
struct Tally {
    applicable: bool,
    all_ia: bool,
    all_ir: bool,
}

impl Tally {
    fn new() -> Tally {
        Tally {
            applicable: false,
            all_ia: true,
            all_ir: true,
        }
    }

    fn observe(&mut self, ia: bool, ir: bool) {
        self.applicable = true;
        self.all_ia &= ia;
        self.all_ir &= ir;
        // IA and IR are disjoint, so at most one of the flags survives.
    }

    fn verdict(self) -> SafetyVerdict {
        if !self.applicable {
            SafetyVerdict::Inapplicable
        } else if self.all_ia {
            SafetyVerdict::Safe
        } else if self.all_ir {
            SafetyVerdict::Unsafe
        } else {
            SafetyVerdict::Dynamic
        }
    }

    /// Once both universal claims have failed the verdict is pinned at
    /// `Dynamic`; callers can stop scanning.
    fn settled(self) -> bool {
        self.applicable && !self.all_ia && !self.all_ir
    }
}

/// Word-level edit analysis for one `(source, target)` content-model pair.
///
/// Borrows the product IDA (typically the cached `Arc<ProductIda>` the
/// revalidator already built for this pair) plus the source DFA, and
/// precomputes the reachable product pairs and the co-accessible states of
/// the source, so each per-label query is a single sweep over the reachable
/// pairs.
#[derive(Debug)]
pub struct EditWordAnalysis<'a> {
    ida: &'a ProductIda,
    a: &'a Dfa,
    b: &'a Dfa,
    /// Reachable pairs of the product, as `(q_a, q_b)` components.
    reach: Vec<(u32, u32)>,
    /// Co-accessible states of the source DFA.
    a_live: BitSet,
}

impl<'a> EditWordAnalysis<'a> {
    /// Prepares the analysis for the pair `(a, b)` whose product IDA is
    /// `ida` (it must have been built from exactly these two DFAs).
    pub fn new(a: &'a Dfa, b: &'a Dfa, ida: &'a ProductIda) -> EditWordAnalysis<'a> {
        debug_assert_eq!(ida.product().a_states(), a.state_count());
        debug_assert_eq!(ida.product().b_states(), b.state_count());
        let reach = ida
            .ida()
            .dfa()
            .reachable()
            .iter()
            // The synthetic sink `from_parts` may append past the pair grid
            // has no `(q_a, q_b)` reading and is never entered by a prefix
            // run, so it carries no application.
            .filter_map(|q| ida.product().unpair(q as u32))
            .collect();
        EditWordAnalysis {
            ida,
            a,
            b,
            reach,
            a_live: a.coaccessible(),
        }
    }

    #[inline]
    fn classify(&self, qa: u32, qb: u32, tally: &mut Tally) {
        let p = self.ida.product().pair(qa, qb);
        tally.observe(self.ida.ida().is_ia(p), self.ida.ida().is_ir(p));
    }

    /// Verdict for inserting one occurrence of `label` at an arbitrary
    /// position of an arbitrary word of `L(a)`.
    pub fn insert(&self, label: Sym) -> SafetyVerdict {
        let mut tally = Tally::new();
        for &(qa, qb) in &self.reach {
            // The split u·v applies iff some v completes the word, i.e. qa
            // is co-accessible.
            if !self.a_live.contains(qa as usize) {
                continue;
            }
            self.classify(qa, self.b.step(qb, label), &mut tally);
            if tally.settled() {
                break;
            }
        }
        tally.verdict()
    }

    /// Verdict for deleting one occurrence of `label` from an arbitrary word
    /// of `L(a)` that contains it.
    pub fn delete(&self, label: Sym) -> SafetyVerdict {
        let mut tally = Tally::new();
        for &(qa, qb) in &self.reach {
            let qa2 = self.a.step(qa, label);
            // The split u·label·v applies iff label can occur here, i.e.
            // δ_a(q_a, label) still reaches a final state.
            if !self.a_live.contains(qa2 as usize) {
                continue;
            }
            self.classify(qa2, qb, &mut tally);
            if tally.settled() {
                break;
            }
        }
        tally.verdict()
    }

    /// Verdict for relabelling one occurrence of `from` to `to` in an
    /// arbitrary word of `L(a)` that contains `from`.
    pub fn relabel(&self, from: Sym, to: Sym) -> SafetyVerdict {
        let mut tally = Tally::new();
        for &(qa, qb) in &self.reach {
            let qa2 = self.a.step(qa, from);
            if !self.a_live.contains(qa2 as usize) {
                continue;
            }
            self.classify(qa2, self.b.step(qb, to), &mut tally);
            if tally.settled() {
                break;
            }
        }
        tally.verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    /// All words of `L(a)` up to `max_len`, over the first `ab_len` symbols.
    fn words_up_to(a: &Dfa, ab_len: usize, max_len: usize) -> Vec<Vec<Sym>> {
        let mut all: Vec<Vec<Sym>> = vec![vec![]];
        let mut frontier: Vec<Vec<Sym>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for base in &frontier {
                for s in 0..ab_len {
                    let mut w = base.clone();
                    w.push(Sym(s as u32));
                    next.push(w);
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        all.retain(|w| a.accepts(w));
        all
    }

    #[derive(Clone, Copy)]
    enum Kind {
        Insert(Sym),
        Delete(Sym),
        Relabel(Sym, Sym),
    }

    /// Brute-force verdict: enumerate every application of the edit over all
    /// words of `L(a)` up to a length bound and check membership in `L(b)`.
    fn brute(a: &Dfa, b: &Dfa, ab_len: usize, kind: Kind, max_len: usize) -> SafetyVerdict {
        let mut tally = Tally::new();
        for w in words_up_to(a, ab_len, max_len) {
            match kind {
                Kind::Insert(l) => {
                    for i in 0..=w.len() {
                        let mut e = w.clone();
                        e.insert(i, l);
                        let ok = b.accepts(&e);
                        tally.observe(ok, !ok);
                    }
                }
                Kind::Delete(l) => {
                    for i in 0..w.len() {
                        if w[i] != l {
                            continue;
                        }
                        let mut e = w.clone();
                        e.remove(i);
                        let ok = b.accepts(&e);
                        tally.observe(ok, !ok);
                    }
                }
                Kind::Relabel(from, to) => {
                    for i in 0..w.len() {
                        if w[i] != from {
                            continue;
                        }
                        let mut e = w.clone();
                        e[i] = to;
                        let ok = b.accepts(&e);
                        tally.observe(ok, !ok);
                    }
                }
            }
        }
        tally.verdict()
    }

    #[test]
    fn insert_into_star_is_safe() {
        let mut ab = Alphabet::new();
        let a = compile("x*", &mut ab);
        let b = compile("x*", &mut ab);
        let ida = ProductIda::new(&a, &b);
        let an = EditWordAnalysis::new(&a, &b, &ida);
        let x = ab.lookup("x").unwrap();
        assert_eq!(an.insert(x), SafetyVerdict::Safe);
        assert_eq!(an.delete(x), SafetyVerdict::Safe);
    }

    #[test]
    fn insert_unknown_label_is_unsafe() {
        let mut ab = Alphabet::new();
        ab.intern("x");
        let y = ab.intern("y");
        // Both symbols are interned up front so y has a (sink) column.
        let a = compile("x*", &mut ab);
        let b = compile("x*", &mut ab);
        let ida = ProductIda::new(&a, &b);
        let an = EditWordAnalysis::new(&a, &b, &ida);
        assert_eq!(an.insert(y), SafetyVerdict::Unsafe);
        assert_eq!(an.delete(y), SafetyVerdict::Inapplicable);
    }

    #[test]
    fn delete_required_symbol_is_unsafe() {
        let mut ab = Alphabet::new();
        let a = compile("(a, b?, c)", &mut ab);
        let b = compile("(a, b?, c)", &mut ab);
        let ida = ProductIda::new(&a, &b);
        let an = EditWordAnalysis::new(&a, &b, &ida);
        let la = ab.lookup("a").unwrap();
        let lb = ab.lookup("b").unwrap();
        assert_eq!(an.delete(la), SafetyVerdict::Unsafe);
        assert_eq!(an.delete(lb), SafetyVerdict::Safe);
        assert_eq!(an.insert(lb), SafetyVerdict::Dynamic); // position-dependent
    }

    #[test]
    fn insert_into_evolved_target_dynamic() {
        // Source billTo optional, target billTo required: inserting billTo
        // fixes some positions and breaks others.
        let mut ab = Alphabet::new();
        let a = compile("(shipTo, billTo?, items)", &mut ab);
        let b = compile("(shipTo, billTo, items)", &mut ab);
        let ida = ProductIda::new(&a, &b);
        let an = EditWordAnalysis::new(&a, &b, &ida);
        let bi = ab.lookup("billTo").unwrap();
        assert_eq!(an.insert(bi), SafetyVerdict::Dynamic);
        // Deleting billTo always leaves (shipTo, items) ∉ L(b).
        assert_eq!(an.delete(bi), SafetyVerdict::Unsafe);
    }

    #[test]
    fn relabel_tracks_both_sides() {
        let mut ab = Alphabet::new();
        let a = compile("(old, body)", &mut ab);
        let b = compile("(new, body)", &mut ab);
        let ida = ProductIda::new(&a, &b);
        let an = EditWordAnalysis::new(&a, &b, &ida);
        let old = ab.lookup("old").unwrap();
        let new = ab.lookup("new").unwrap();
        let body = ab.lookup("body").unwrap();
        assert_eq!(an.relabel(old, new), SafetyVerdict::Safe);
        assert_eq!(an.relabel(old, body), SafetyVerdict::Unsafe);
        assert_eq!(an.relabel(body, new), SafetyVerdict::Unsafe);
    }

    #[test]
    fn agrees_with_brute_force_over_word_pairs() {
        let models = [
            "x*",
            "(x, y?)",
            "(x | y)*",
            "(x, y, z)",
            "(x?, (y | z)+)",
            "((x, y) | z)*",
            "(x, z*) | y",
        ];
        let mut ab = Alphabet::new();
        for s in ["x", "y", "z"] {
            ab.intern(s);
        }
        let syms: Vec<Sym> = (0..3).map(|i| Sym(i as u32)).collect();
        for sa in &models {
            for sb in &models {
                let a = compile(sa, &mut ab);
                let b = compile(sb, &mut ab);
                let ida = ProductIda::new(&a, &b);
                let an = EditWordAnalysis::new(&a, &b, &ida);
                for &l in &syms {
                    assert_eq!(
                        an.insert(l),
                        brute(&a, &b, 3, Kind::Insert(l), 6),
                        "insert {l:?} for {sa} -> {sb}"
                    );
                    assert_eq!(
                        an.delete(l),
                        brute(&a, &b, 3, Kind::Delete(l), 6),
                        "delete {l:?} for {sa} -> {sb}"
                    );
                    for &m in &syms {
                        assert_eq!(
                            an.relabel(l, m),
                            brute(&a, &b, 3, Kind::Relabel(l, m), 6),
                            "relabel {l:?}->{m:?} for {sa} -> {sb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn useful_symbols_of_source() {
        let mut ab = Alphabet::new();
        ab.intern("x");
        ab.intern("y");
        ab.intern("z");
        let a = compile("(x, y?)", &mut ab);
        let useful = a.useful_symbols();
        assert!(useful.contains(ab.lookup("x").unwrap().index()));
        assert!(useful.contains(ab.lookup("y").unwrap().index()));
        assert!(!useful.contains(ab.lookup("z").unwrap().index()));
    }
}
