//! A small fixed-capacity bitset used for state sets.
//!
//! Kept internal to the workspace to avoid an external dependency; automata
//! here are content-model sized (tens to a few thousand states), so a plain
//! `Vec<u64>` representation is ideal.

/// A fixed-capacity set of `usize` indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity (one past the largest storable index).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`. Returns whether the bit was newly set.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "index {i} out of capacity {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`. Returns whether the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "index {i} out of capacity {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set-complement within capacity, in place.
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        // Clear bits beyond `len`.
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// In-place union. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Iterates over set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn invert_respects_capacity() {
        let mut s = BitSet::new(70);
        s.insert(3);
        s.invert();
        assert!(!s.contains(3));
        assert!(s.contains(0));
        assert!(s.contains(69));
        assert_eq!(s.count(), 69);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn iter_order() {
        let s: BitSet = [5usize, 1, 64, 127].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 64, 127]);
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
