#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Finite-automata substrate for schema-cast revalidation.
//!
//! Implements §4 of *Efficient Schema-Based Revalidation of XML* (EDBT 2004):
//!
//! * dense complete [`Dfa`]s compiled from content-model regular expressions,
//! * [Hopcroft-style minimization](minimize()),
//! * [intersection automata](product::Product) over all state pairs,
//! * language [checks] (inclusion, disjointness, `P*`-restricted
//!   intersection emptiness) that seed the paper's `R_sub`/`R_nondis`
//!   fixpoints,
//! * [immediate decision automata](ida) (`IA`/`IR` sets, Definitions 6–8),
//! * [edit-effect composition](effect) — whole-script normalization to one
//!   net effect per content word, decided with IA/IR early exit,
//! * branchless [hot transition tables](hot) (sink-column clamping +
//!   per-state flag bytes) for the streaming validator's inner loop,
//! * [string revalidation](revalidate) with and without modifications
//!   (Theorem 3, Prop. 2), including the reverse-automaton strategy for
//!   append-heavy edits,
//! * [hop-relation composition](compose) along schema-evolution chains —
//!   the sound end-to-end joins (`sub·sub`, `sub·dis`) with middle-type
//!   witnesses for composition certificates.

pub mod bitset;
pub mod certify;
pub mod checks;
pub mod compose;
pub mod dfa;
pub mod editdist;
pub mod effect;
pub mod hot;
pub mod ida;
pub mod minimize;
pub mod nfa;
pub mod product;
pub mod revalidate;
pub mod safety;
pub mod witness;

pub use bitset::BitSet;
pub use certify::{
    difference_path_cert, ida_cert, raw_dfa, restricted_pair_invariant, simulation_relation,
};
pub use checks::{
    equivalent, intersection_nonempty_restricted, language_subset, languages_disjoint,
    nonempty_restricted,
};
pub use compose::{compose_chain, ComposedLevel, HopRelations, NO_MID};
pub use dfa::{Dfa, StateId};
pub use editdist::{apply_repair, repair_string, shortest_witness, StringRepairOp};
pub use effect::{EarlySettle, EffectOp, EffectOutcome, Fate, NetEffect, NormStep, Provenance};
pub use hot::HotDfa;
pub use ida::{Ida, IdaOutcome, ProductIda};
pub use minimize::minimize;
pub use nfa::Nfa;
pub use product::Product;
pub use revalidate::{Decision, Strategy, StringCast};
pub use safety::{EditWordAnalysis, SafetyVerdict};
pub use witness::{
    pair_trace, shortest_accepted, shortest_accepted_nonempty, shortest_accepted_through,
    shortest_in_a_not_b, shortest_in_both,
};
