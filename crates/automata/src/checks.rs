//! Language-level decision procedures on DFAs.
//!
//! These are the static tests that seed the paper's fixpoint computations:
//! `L(regexp_τ) ⊆ L(regexp_τ')` for `R_sub` (Definition 4, condition ii) and
//! `L(regexp_τ) ∩ L(regexp_τ') ∩ P* ≠ ∅` for `R_nondis` (Definition 5). All
//! walk the pair graph lazily, so a one-off check never materializes a full
//! product table.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, StateId};
use schemacast_regex::Sym;
use std::collections::HashSet;

fn alphabet_width(a: &Dfa, b: &Dfa) -> usize {
    a.alphabet_len().max(b.alphabet_len())
}

/// Whether `L(a) ⊆ L(b)`.
///
/// BFS over reachable pairs; a counterexample is a pair with an `a`-final,
/// non-`b`-final state.
pub fn language_subset(a: &Dfa, b: &Dfa) -> bool {
    let width = alphabet_width(a, b);
    let mut seen: HashSet<(StateId, StateId)> = HashSet::new();
    let mut stack = vec![(a.start(), b.start())];
    seen.insert((a.start(), b.start()));
    while let Some((qa, qb)) = stack.pop() {
        if a.is_final(qa) && !b.is_final(qb) {
            return false;
        }
        for s in 0..width {
            let sym = Sym(s as u32);
            let next = (a.step(qa, sym), b.step(qb, sym));
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    true
}

/// Whether `L(a) ∩ L(b) = ∅`.
pub fn languages_disjoint(a: &Dfa, b: &Dfa) -> bool {
    !intersection_nonempty_restricted(a, b, None)
}

/// Whether `L(a) = L(b)`.
pub fn equivalent(a: &Dfa, b: &Dfa) -> bool {
    language_subset(a, b) && language_subset(b, a)
}

/// Whether `L(a) ∩ L(b) ∩ P* ≠ ∅`, where `P` is a set of permitted symbols
/// (`None` = all of Σ).
///
/// This is exactly the test in step 3 of the `R_nondis` algorithm: a witness
/// must be accepted by both automata *and* use only labels whose child-type
/// pair is already known non-disjoint.
pub fn intersection_nonempty_restricted(a: &Dfa, b: &Dfa, allowed: Option<&BitSet>) -> bool {
    let width = alphabet_width(a, b);
    let mut seen: HashSet<(StateId, StateId)> = HashSet::new();
    let mut stack = vec![(a.start(), b.start())];
    seen.insert((a.start(), b.start()));
    while let Some((qa, qb)) = stack.pop() {
        if a.is_final(qa) && b.is_final(qb) {
            return true;
        }
        for s in 0..width {
            if let Some(p) = allowed {
                if s >= p.capacity() || !p.contains(s) {
                    continue;
                }
            }
            let sym = Sym(s as u32);
            let next = (a.step(qa, sym), b.step(qb, sym));
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    false
}

/// Whether `L(a) ∩ P* ≠ ∅` — the productivity test of §3: a complex type is
/// productive iff its content model accepts some string over its productive
/// child labels.
pub fn nonempty_restricted(a: &Dfa, allowed: &BitSet) -> bool {
    let mut seen = BitSet::new(a.state_count());
    let mut stack = vec![a.start()];
    seen.insert(a.start() as usize);
    while let Some(q) = stack.pop() {
        if a.is_final(q) {
            return true;
        }
        for s in allowed.iter() {
            let t = a.step(q, Sym(s as u32));
            if seen.insert(t as usize) {
                stack.push(t);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn figure1_subset_direction() {
        // Figure 1: target (billTo required) ⊆ source (billTo optional),
        // but not vice versa.
        let mut ab = Alphabet::new();
        let source = compile("(shipTo, billTo?, items)", &mut ab);
        let target = compile("(shipTo, billTo, items)", &mut ab);
        assert!(language_subset(&target, &source));
        assert!(!language_subset(&source, &target));
        assert!(!languages_disjoint(&source, &target));
    }

    #[test]
    fn subset_reflexive_and_with_star() {
        let mut ab = Alphabet::new();
        let d1 = compile("(a, b)", &mut ab);
        let d2 = compile("(a | b)*", &mut ab);
        assert!(language_subset(&d1, &d1));
        assert!(language_subset(&d1, &d2));
        assert!(!language_subset(&d2, &d1));
        assert!(equivalent(&d2, &d2));
        assert!(!equivalent(&d1, &d2));
    }

    #[test]
    fn disjointness() {
        let mut ab = Alphabet::new();
        let d1 = compile("(a, a)", &mut ab);
        let d2 = compile("(b, b)", &mut ab);
        let d3 = compile("a, a?", &mut ab);
        assert!(languages_disjoint(&d1, &d2));
        assert!(!languages_disjoint(&d1, &d3));
    }

    #[test]
    fn restricted_intersection() {
        let mut ab = Alphabet::new();
        let d1 = compile("(a | b)+", &mut ab);
        let d2 = compile("(a | b)+", &mut ab);
        let a_idx = ab.lookup("a").unwrap().index();
        let b_idx = ab.lookup("b").unwrap().index();

        // Allowed = {a}: witness "a…" exists.
        let mut only_a = BitSet::new(ab.len());
        only_a.insert(a_idx);
        assert!(intersection_nonempty_restricted(&d1, &d2, Some(&only_a)));

        // Allowed = ∅: no witness (ε not accepted by either).
        let none = BitSet::new(ab.len());
        assert!(!intersection_nonempty_restricted(&d1, &d2, Some(&none)));

        // ε case: nullable languages intersect even with P = ∅.
        let d3 = compile("a*", &mut ab);
        let d4 = compile("b*", &mut ab);
        let none2 = BitSet::new(ab.len());
        assert!(intersection_nonempty_restricted(&d3, &d4, Some(&none2)));
        let _ = b_idx;
    }

    #[test]
    fn productivity_restriction() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b) | c", &mut ab);
        let a_idx = ab.lookup("a").unwrap().index();
        let c_idx = ab.lookup("c").unwrap().index();

        // Only c productive: "c" is a witness.
        let mut only_c = BitSet::new(ab.len());
        only_c.insert(c_idx);
        assert!(nonempty_restricted(&d, &only_c));

        // Only a productive: neither "(a,b)" nor "c" fits.
        let mut only_a = BitSet::new(ab.len());
        only_a.insert(a_idx);
        assert!(!nonempty_restricted(&d, &only_a));
    }
}
