//! Shortest-word witness extraction over DFAs and DFA pairs.
//!
//! The lint subsystem (`schemacast-analysis`) explains *why* a type pair is
//! incompatible by exhibiting a concrete word: the shortest member of
//! `L(a) ∖ L(b)` is a children sequence valid for the source content model
//! and invalid for the target one, and the position at which the product
//! automaton enters an immediately-rejecting state maps back to the
//! offending particle. The certificate layer (`crate::certify`) reuses the
//! same searches to extract witness words for `R_nondis` proofs and
//! difference paths, so all searches share one parent-pointer frontier
//! (the private `Bfs`): returned words are length-minimal (ties broken by smallest
//! symbol index), and every search accepts an optional symbol restriction —
//! witness words may only use labels whose child types can actually be
//! instantiated as finite subtrees.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, StateId};
use schemacast_regex::Sym;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

fn allows(allowed: Option<&BitSet>, s: usize) -> bool {
    match allowed {
        Some(p) => s < p.capacity() && p.contains(s),
        None => true,
    }
}

/// A breadth-first frontier with parent pointers, generic over the node
/// key — single states, state pairs, or `(state, flag)` products. All
/// witness searches differ only in their node type, successor function and
/// goal predicate; the queue/seen/unwind machinery lives here once.
struct Bfs<K> {
    start: K,
    parent: HashMap<K, (K, Sym)>,
    queue: VecDeque<K>,
}

impl<K: Hash + Eq + Copy> Bfs<K> {
    fn new(start: K) -> Self {
        let mut parent = HashMap::new();
        // The start's sentinel parent marks it seen; `word_to` stops there.
        parent.insert(start, (start, Sym(u32::MAX)));
        Bfs {
            start,
            parent,
            queue: VecDeque::from([start]),
        }
    }

    fn pop(&mut self) -> Option<K> {
        self.queue.pop_front()
    }

    /// Enqueues `to` (reached from `from` via `sym`) unless already seen.
    fn offer(&mut self, from: K, sym: Sym, to: K) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.parent.entry(to) {
            e.insert((from, sym));
            self.queue.push_back(to);
        }
    }

    /// Reconstructs the word leading from the start to `q`, then `last`.
    fn word_through(&self, mut q: K, last: Sym) -> Vec<Sym> {
        let mut word = vec![last];
        while q != self.start {
            let (p, s) = self.parent[&q];
            word.push(s);
            q = p;
        }
        word.reverse();
        word
    }
}

/// The shortest word of `L(d) ∩ P*`, if any (`allowed = None` means `P = Σ`).
pub fn shortest_accepted(d: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    shortest_accepted_from(d, d.start(), allowed, true)
}

/// The shortest *nonempty* word of `L(d) ∩ P*`, if any.
pub fn shortest_accepted_nonempty(d: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    shortest_accepted_from(d, d.start(), allowed, false)
}

fn shortest_accepted_from(
    d: &Dfa,
    start: StateId,
    allowed: Option<&BitSet>,
    accept_empty: bool,
) -> Option<Vec<Sym>> {
    if accept_empty && d.is_final(start) {
        return Some(Vec::new());
    }
    let mut bfs = Bfs::new(start);
    while let Some(q) = bfs.pop() {
        for s in 0..d.alphabet_len() {
            if !allows(allowed, s) {
                continue;
            }
            let sym = Sym(s as u32);
            let t = d.step(q, sym);
            if d.is_final(t) {
                return Some(bfs.word_through(q, sym));
            }
            bfs.offer(q, sym, t);
        }
    }
    None
}

/// The shortest word of `L(a) ∖ L(b)` over the permitted symbols, if any —
/// BFS over the pair graph to a `(final-in-a, non-final-in-b)` pair, the
/// state that seeds the product IDA's `IR` set.
pub fn shortest_in_a_not_b(a: &Dfa, b: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    let goal = |(qa, qb): (StateId, StateId)| a.is_final(qa) && !b.is_final(qb);
    // Symbols at or beyond a's table width step `a` into its absorbing,
    // non-final sink, from which the goal is unreachable — skip them.
    shortest_pair_word(a, b, a.alphabet_len(), allowed, &goal)
}

/// The shortest word of `L(a) ∩ L(b)` over the permitted symbols, if any —
/// the same pair-graph BFS aimed at a jointly final pair. This is the
/// witness extractor for `R_nondis` certificates: a children sequence both
/// content models accept.
pub fn shortest_in_both(a: &Dfa, b: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    let goal = |(qa, qb): (StateId, StateId)| a.is_final(qa) && b.is_final(qb);
    // A goal needs both components final, so symbols beyond either table's
    // width (which sink that side) can never be on a shortest path.
    let width = a.alphabet_len().min(b.alphabet_len());
    shortest_pair_word(a, b, width, allowed, &goal)
}

/// Shared pair-graph search behind [`shortest_in_a_not_b`] and
/// [`shortest_in_both`].
fn shortest_pair_word(
    a: &Dfa,
    b: &Dfa,
    width: usize,
    allowed: Option<&BitSet>,
    goal: &dyn Fn((StateId, StateId)) -> bool,
) -> Option<Vec<Sym>> {
    let start = (a.start(), b.start());
    if goal(start) {
        return Some(Vec::new());
    }
    let mut bfs = Bfs::new(start);
    while let Some((qa, qb)) = bfs.pop() {
        for s in 0..width {
            if !allows(allowed, s) {
                continue;
            }
            let sym = Sym(s as u32);
            let next = (a.step(qa, sym), b.step(qb, sym));
            if goal(next) {
                return Some(bfs.word_through((qa, qb), sym));
            }
            bfs.offer((qa, qb), sym, next);
        }
    }
    None
}

/// The pair-state trace `word` induces on `(a, b)` from the start pair:
/// `word.len() + 1` entries, one per prefix. Used to build path
/// certificates — the checker replays the same steps on its own tables.
pub fn pair_trace(a: &Dfa, b: &Dfa, word: &[Sym]) -> Vec<(StateId, StateId)> {
    let mut states = Vec::with_capacity(word.len() + 1);
    let mut qa = a.start();
    let mut qb = b.start();
    states.push((qa, qb));
    for &s in word {
        qa = a.step(qa, s);
        qb = b.step(qb, s);
        states.push((qa, qb));
    }
    states
}

/// The shortest word of `L(d) ∩ P*` containing at least one occurrence of
/// `via` (which is permitted regardless of `allowed`), if any. BFS over
/// `(state, seen-via)` pairs.
pub fn shortest_accepted_through(d: &Dfa, via: Sym, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    type Node = (StateId, bool);
    let start: Node = (d.start(), false);
    let mut bfs = Bfs::new(start);
    while let Some((q, used)) = bfs.pop() {
        for s in 0..d.alphabet_len() {
            let sym = Sym(s as u32);
            if sym != via && !allows(allowed, s) {
                continue;
            }
            let next: Node = (d.step(q, sym), used || sym == via);
            if next.1 && d.is_final(next.0) {
                return Some(bfs.word_through((q, used), sym));
            }
            bfs.offer((q, used), sym, next);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn shortest_accepted_is_minimal() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b, c) | (a, c)", &mut ab);
        let w = shortest_accepted(&d, None).expect("nonempty");
        assert_eq!(w.len(), 2);
        assert!(d.accepts(&w));
    }

    #[test]
    fn empty_language_has_no_witness() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b)", &mut ab);
        let a = ab.lookup("a").unwrap();
        let mut only_a = BitSet::new(ab.len());
        only_a.insert(a.index());
        assert_eq!(shortest_accepted(&d, Some(&only_a)), None);
    }

    #[test]
    fn nonempty_variant_skips_epsilon() {
        let mut ab = Alphabet::new();
        let d = compile("a*", &mut ab);
        assert_eq!(shortest_accepted(&d, None), Some(vec![]));
        let w = shortest_accepted_nonempty(&d, None).expect("a exists");
        assert_eq!(w.len(), 1);
        assert!(d.accepts(&w));
    }

    #[test]
    fn difference_witness_figure1() {
        // billTo optional vs. required: shortest distinguishing word drops it.
        let mut ab = Alphabet::new();
        let source = compile("(shipTo, billTo?, items)", &mut ab);
        let target = compile("(shipTo, billTo, items)", &mut ab);
        let w = shortest_in_a_not_b(&source, &target, None).expect("not subsumed");
        assert!(source.accepts(&w));
        assert!(!target.accepts(&w));
        assert_eq!(w.len(), 2); // shipTo, items
                                // The other direction is subsumed: no witness.
        assert_eq!(shortest_in_a_not_b(&target, &source, None), None);
    }

    #[test]
    fn intersection_witness() {
        let mut ab = Alphabet::new();
        let a = compile("(x, y?, z)", &mut ab);
        let b = compile("(x, y, z) | (x, w)", &mut ab);
        let w = shortest_in_both(&a, &b, None).expect("xyz shared");
        assert!(a.accepts(&w));
        assert!(b.accepts(&w));
        assert_eq!(w.len(), 3);
        // Restricting away `y` empties the intersection.
        let y = ab.lookup("y").unwrap();
        let mut no_y = BitSet::new(ab.len());
        for s in 0..ab.len() {
            if s != y.index() {
                no_y.insert(s);
            }
        }
        assert_eq!(shortest_in_both(&a, &b, Some(&no_y)), None);
    }

    #[test]
    fn pair_trace_replays_word() {
        let mut ab = Alphabet::new();
        let a = compile("(x, y)", &mut ab);
        let b = compile("(x, y?)", &mut ab);
        let w = shortest_in_both(&a, &b, None).expect("xy shared");
        let trace = pair_trace(&a, &b, &w);
        assert_eq!(trace.len(), w.len() + 1);
        assert_eq!(trace[0], (a.start(), b.start()));
        let (fa, fb) = *trace.last().unwrap();
        assert!(a.is_final(fa) && b.is_final(fb));
        for (i, &s) in w.iter().enumerate() {
            let (qa, qb) = trace[i];
            assert_eq!(trace[i + 1], (a.step(qa, s), b.step(qb, s)));
        }
    }

    #[test]
    fn through_requires_the_symbol() {
        let mut ab = Alphabet::new();
        let d = compile("(a | b), c?", &mut ab);
        let c = ab.lookup("c").unwrap();
        let w = shortest_accepted_through(&d, c, None).expect("c reachable");
        assert!(d.accepts(&w));
        assert!(w.contains(&c));
        // `via` is exempt from the restriction, the rest is not.
        let a = ab.lookup("a").unwrap();
        let mut only_a = BitSet::new(ab.len());
        only_a.insert(a.index());
        let w2 = shortest_accepted_through(&d, c, Some(&only_a)).expect("a then c");
        assert_eq!(w2, vec![a, c]);
    }
}
