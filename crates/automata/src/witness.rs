//! Shortest-word witness extraction over DFAs and DFA pairs.
//!
//! The lint subsystem (`schemacast-analysis`) explains *why* a type pair is
//! incompatible by exhibiting a concrete word: the shortest member of
//! `L(a) ∖ L(b)` is a children sequence valid for the source content model
//! and invalid for the target one, and the position at which the product
//! automaton enters an immediately-rejecting state maps back to the
//! offending particle. All searches here are breadth-first with parent
//! pointers, so returned words are length-minimal (ties broken by smallest
//! symbol index), and all accept an optional symbol restriction — witness
//! words may only use labels whose child types can actually be instantiated
//! as finite subtrees.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, StateId};
use schemacast_regex::Sym;
use std::collections::{HashMap, HashSet, VecDeque};

fn allows(allowed: Option<&BitSet>, s: usize) -> bool {
    match allowed {
        Some(p) => s < p.capacity() && p.contains(s),
        None => true,
    }
}

/// Reconstructs the word leading to `q` from the BFS parent pointers.
fn unwind<K: std::hash::Hash + Eq + Copy>(
    parent: &HashMap<K, (K, Sym)>,
    start: K,
    mut q: K,
) -> Vec<Sym> {
    let mut word = Vec::new();
    while q != start {
        let (p, s) = parent[&q];
        word.push(s);
        q = p;
    }
    word.reverse();
    word
}

/// The shortest word of `L(d) ∩ P*`, if any (`allowed = None` means `P = Σ`).
pub fn shortest_accepted(d: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    shortest_accepted_from(d, d.start(), allowed, true)
}

/// The shortest *nonempty* word of `L(d) ∩ P*`, if any.
pub fn shortest_accepted_nonempty(d: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    shortest_accepted_from(d, d.start(), allowed, false)
}

fn shortest_accepted_from(
    d: &Dfa,
    start: StateId,
    allowed: Option<&BitSet>,
    accept_empty: bool,
) -> Option<Vec<Sym>> {
    if accept_empty && d.is_final(start) {
        return Some(Vec::new());
    }
    let mut parent: HashMap<StateId, (StateId, Sym)> = HashMap::new();
    let mut seen = BitSet::new(d.state_count());
    seen.insert(start as usize);
    let mut queue: VecDeque<StateId> = VecDeque::from([start]);
    while let Some(q) = queue.pop_front() {
        for s in 0..d.alphabet_len() {
            if !allows(allowed, s) {
                continue;
            }
            let sym = Sym(s as u32);
            let t = d.step(q, sym);
            if d.is_final(t) {
                let mut word = unwind(&parent, start, q);
                word.push(sym);
                return Some(word);
            }
            if seen.insert(t as usize) {
                parent.insert(t, (q, sym));
                queue.push_back(t);
            }
        }
    }
    None
}

/// The shortest word of `L(a) ∖ L(b)` over the permitted symbols, if any —
/// BFS over the pair graph to a `(final-in-a, non-final-in-b)` pair, the
/// state that seeds the product IDA's `IR` set.
pub fn shortest_in_a_not_b(a: &Dfa, b: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    let start = (a.start(), b.start());
    let goal = |(qa, qb): (StateId, StateId)| a.is_final(qa) && !b.is_final(qb);
    if goal(start) {
        return Some(Vec::new());
    }
    let mut parent: HashMap<(StateId, StateId), ((StateId, StateId), Sym)> = HashMap::new();
    let mut seen: HashSet<(StateId, StateId)> = HashSet::from([start]);
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::from([start]);
    // Symbols at or beyond a's table width step `a` into its absorbing,
    // non-final sink, from which the goal is unreachable — skip them.
    while let Some((qa, qb)) = queue.pop_front() {
        for s in 0..a.alphabet_len() {
            if !allows(allowed, s) {
                continue;
            }
            let sym = Sym(s as u32);
            let next = (a.step(qa, sym), b.step(qb, sym));
            if goal(next) {
                let mut word = unwind(&parent, start, (qa, qb));
                word.push(sym);
                return Some(word);
            }
            if seen.insert(next) {
                parent.insert(next, ((qa, qb), sym));
                queue.push_back(next);
            }
        }
    }
    None
}

/// The shortest word of `L(d) ∩ P*` containing at least one occurrence of
/// `via` (which is permitted regardless of `allowed`), if any. BFS over
/// `(state, seen-via)` pairs.
pub fn shortest_accepted_through(d: &Dfa, via: Sym, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    type Node = (StateId, bool);
    let start: Node = (d.start(), false);
    let mut parent: HashMap<Node, (Node, Sym)> = HashMap::new();
    let mut seen: HashSet<Node> = HashSet::from([start]);
    let mut queue: VecDeque<Node> = VecDeque::from([start]);
    while let Some((q, used)) = queue.pop_front() {
        for s in 0..d.alphabet_len() {
            let sym = Sym(s as u32);
            if sym != via && !allows(allowed, s) {
                continue;
            }
            let next: Node = (d.step(q, sym), used || sym == via);
            if next.1 && d.is_final(next.0) {
                let mut word = unwind(&parent, start, (q, used));
                word.push(sym);
                return Some(word);
            }
            if seen.insert(next) {
                parent.insert(next, ((q, used), sym));
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn shortest_accepted_is_minimal() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b, c) | (a, c)", &mut ab);
        let w = shortest_accepted(&d, None).expect("nonempty");
        assert_eq!(w.len(), 2);
        assert!(d.accepts(&w));
    }

    #[test]
    fn empty_language_has_no_witness() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b)", &mut ab);
        let a = ab.lookup("a").unwrap();
        let mut only_a = BitSet::new(ab.len());
        only_a.insert(a.index());
        assert_eq!(shortest_accepted(&d, Some(&only_a)), None);
    }

    #[test]
    fn nonempty_variant_skips_epsilon() {
        let mut ab = Alphabet::new();
        let d = compile("a*", &mut ab);
        assert_eq!(shortest_accepted(&d, None), Some(vec![]));
        let w = shortest_accepted_nonempty(&d, None).expect("a exists");
        assert_eq!(w.len(), 1);
        assert!(d.accepts(&w));
    }

    #[test]
    fn difference_witness_figure1() {
        // billTo optional vs. required: shortest distinguishing word drops it.
        let mut ab = Alphabet::new();
        let source = compile("(shipTo, billTo?, items)", &mut ab);
        let target = compile("(shipTo, billTo, items)", &mut ab);
        let w = shortest_in_a_not_b(&source, &target, None).expect("not subsumed");
        assert!(source.accepts(&w));
        assert!(!target.accepts(&w));
        assert_eq!(w.len(), 2); // shipTo, items
                                // The other direction is subsumed: no witness.
        assert_eq!(shortest_in_a_not_b(&target, &source, None), None);
    }

    #[test]
    fn through_requires_the_symbol() {
        let mut ab = Alphabet::new();
        let d = compile("(a | b), c?", &mut ab);
        let c = ab.lookup("c").unwrap();
        let w = shortest_accepted_through(&d, c, None).expect("c reachable");
        assert!(d.accepts(&w));
        assert!(w.contains(&c));
        // `via` is exempt from the restriction, the rest is not.
        let a = ab.lookup("a").unwrap();
        let mut only_a = BitSet::new(ab.len());
        only_a.insert(a.index());
        let w2 = shortest_accepted_through(&d, c, Some(&only_a)).expect("a then c");
        assert_eq!(w2, vec![a, c]);
    }
}
