//! Minimal edits taking a string into a regular language.
//!
//! Supports the repair direction of the paper's future work ("how a system
//! may automatically correct a document valid according to one schema so
//! that it conforms to a new schema"): given a children-label string that a
//! target content model rejects, find the cheapest sequence of
//! keep/substitute/delete/insert operations producing a member of the
//! language.
//!
//! Implemented as 0–1 Dijkstra over the `(position, state)` graph — `O(n ·
//! |Q| · |Σ|)` — with predecessor tracking for script reconstruction.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, StateId};
use schemacast_regex::Sym;
use std::collections::VecDeque;

/// One operation of a string repair script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringRepairOp {
    /// The original symbol stays.
    Keep(Sym),
    /// Replace `from` with `to`.
    Subst {
        /// The original symbol.
        from: Sym,
        /// Its replacement.
        to: Sym,
    },
    /// Remove a symbol.
    Delete(Sym),
    /// Insert a new symbol.
    Insert(Sym),
}

impl StringRepairOp {
    /// Whether the op changes the string.
    pub fn is_change(self) -> bool {
        !matches!(self, StringRepairOp::Keep(_))
    }
}

/// The shortest member of `L(dfa)` restricted to `allowed` symbols
/// (`None` = all), or `None` if that restricted language is empty.
pub fn shortest_witness(dfa: &Dfa, allowed: Option<&BitSet>) -> Option<Vec<Sym>> {
    let n = dfa.state_count();
    let mut prev: Vec<Option<(StateId, Sym)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[dfa.start() as usize] = true;
    queue.push_back(dfa.start());
    let mut goal: Option<StateId> = dfa.is_final(dfa.start()).then_some(dfa.start());
    'bfs: while let Some(q) = queue.pop_front() {
        if goal.is_some() {
            break;
        }
        for s in 0..dfa.alphabet_len() {
            if let Some(a) = allowed {
                if s >= a.capacity() || !a.contains(s) {
                    continue;
                }
            }
            let sym = Sym(s as u32);
            let t = dfa.step(q, sym);
            if !seen[t as usize] {
                seen[t as usize] = true;
                prev[t as usize] = Some((q, sym));
                if dfa.is_final(t) {
                    goal = Some(t);
                    break 'bfs;
                }
                queue.push_back(t);
            }
        }
    }
    let mut at = goal?;
    let mut out = Vec::new();
    while let Some((p, sym)) = prev[at as usize] {
        out.push(sym);
        at = p;
    }
    out.reverse();
    Some(out)
}

/// Finds a minimum-cost repair script turning `input` into a member of
/// `L(dfa)`, using only `allowed` symbols (`None` = all) for substitutions
/// and insertions. Returns `None` when the (restricted) language is empty.
///
/// Cost model: keep = 0, substitute/delete/insert = 1.
pub fn repair_string(
    dfa: &Dfa,
    input: &[Sym],
    allowed: Option<&BitSet>,
) -> Option<(Vec<StringRepairOp>, usize)> {
    let n = input.len();
    let states = dfa.state_count();
    let live = dfa.coaccessible();
    if !live.contains(dfa.start() as usize) {
        return None;
    }
    let idx = |i: usize, q: StateId| i * states + q as usize;
    let size = (n + 1) * states;
    let mut dist = vec![usize::MAX; size];
    let mut prev: Vec<Option<(usize, StateId, StringRepairOp)>> = vec![None; size];
    let mut deque: VecDeque<(usize, StateId)> = VecDeque::new();

    dist[idx(0, dfa.start())] = 0;
    deque.push_back((0, dfa.start()));

    let usable = |s: usize| -> bool {
        match allowed {
            Some(a) => s < a.capacity() && a.contains(s),
            None => true,
        }
    };

    while let Some((i, q)) = deque.pop_front() {
        let d = dist[idx(i, q)];
        let relax = |deque: &mut VecDeque<(usize, StateId)>,
                     dist: &mut Vec<usize>,
                     prev: &mut Vec<Option<(usize, StateId, StringRepairOp)>>,
                     ni: usize,
                     nq: StateId,
                     cost: usize,
                     op: StringRepairOp| {
            let nd = d + cost;
            let key = idx(ni, nq);
            if nd < dist[key] {
                dist[key] = nd;
                prev[key] = Some((i, q, op));
                if cost == 0 {
                    deque.push_front((ni, nq));
                } else {
                    deque.push_back((ni, nq));
                }
            }
        };

        if i < n {
            let sym = input[i];
            // Keep (only if the symbol is usable in the target language;
            // stepping into a dead state is pointless but harmless — prune
            // to live states to keep the frontier small).
            let t = dfa.step(q, sym);
            if live.contains(t as usize) {
                relax(
                    &mut deque,
                    &mut dist,
                    &mut prev,
                    i + 1,
                    t,
                    0,
                    StringRepairOp::Keep(sym),
                );
            }
            // Delete.
            relax(
                &mut deque,
                &mut dist,
                &mut prev,
                i + 1,
                q,
                1,
                StringRepairOp::Delete(sym),
            );
            // Substitute.
            for s in 0..dfa.alphabet_len() {
                if !usable(s) || Sym(s as u32) == sym {
                    continue;
                }
                let t = dfa.step(q, Sym(s as u32));
                if live.contains(t as usize) {
                    relax(
                        &mut deque,
                        &mut dist,
                        &mut prev,
                        i + 1,
                        t,
                        1,
                        StringRepairOp::Subst {
                            from: sym,
                            to: Sym(s as u32),
                        },
                    );
                }
            }
        }
        // Insert.
        for s in 0..dfa.alphabet_len() {
            if !usable(s) {
                continue;
            }
            let t = dfa.step(q, Sym(s as u32));
            if live.contains(t as usize) {
                relax(
                    &mut deque,
                    &mut dist,
                    &mut prev,
                    i,
                    t,
                    1,
                    StringRepairOp::Insert(Sym(s as u32)),
                );
            }
        }
    }

    // Best accepting endpoint.
    let mut best: Option<(usize, StateId)> = None;
    for q in 0..states as StateId {
        if dfa.is_final(q)
            && dist[idx(n, q)] != usize::MAX
            && best.is_none_or(|(bd, _)| dist[idx(n, q)] < bd)
        {
            best = Some((dist[idx(n, q)], q));
        }
    }
    let (cost, mut q) = best?;
    let mut i = n;
    let mut ops = Vec::new();
    while let Some((pi, pq, op)) = prev[idx(i, q)] {
        ops.push(op);
        i = pi;
        q = pq;
        if i == 0 && q == dfa.start() && prev[idx(i, q)].is_none() {
            break;
        }
    }
    ops.reverse();
    Some((ops, cost))
}

/// Applies a repair script, producing the repaired string.
pub fn apply_repair(ops: &[StringRepairOp]) -> Vec<Sym> {
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            StringRepairOp::Keep(s) => out.push(*s),
            StringRepairOp::Subst { to, .. } => out.push(*to),
            StringRepairOp::Delete(_) => {}
            StringRepairOp::Insert(s) => out.push(*s),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn witness_is_shortest() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b, c) | (a, c)", &mut ab);
        let w = shortest_witness(&d, None).expect("nonempty");
        assert_eq!(w.len(), 2);
        assert!(d.accepts(&w));

        let empty = Dfa::from_regex(&schemacast_regex::Regex::Empty, 2).expect("compile");
        assert!(shortest_witness(&empty, None).is_none());
    }

    #[test]
    fn witness_respects_restriction() {
        let mut ab = Alphabet::new();
        let d = compile("(a, a) | b", &mut ab);
        let a_idx = ab.lookup("a").unwrap().index();
        let mut only_a = BitSet::new(ab.len());
        only_a.insert(a_idx);
        let w = shortest_witness(&d, Some(&only_a)).expect("still nonempty");
        assert_eq!(w.len(), 2); // forced to use (a, a)
    }

    #[test]
    fn repair_missing_required_element() {
        // Figure 1 at string level: (shipTo, items) repaired for
        // (shipTo, billTo, items) by one insertion.
        let mut ab = Alphabet::new();
        let d = compile("(shipTo, billTo, items)", &mut ab);
        let sh = ab.lookup("shipTo").unwrap();
        let bi = ab.lookup("billTo").unwrap();
        let it = ab.lookup("items").unwrap();
        let (ops, cost) = repair_string(&d, &[sh, it], None).expect("repairable");
        assert_eq!(cost, 1);
        assert_eq!(
            ops,
            vec![
                StringRepairOp::Keep(sh),
                StringRepairOp::Insert(bi),
                StringRepairOp::Keep(it)
            ]
        );
        assert!(d.accepts(&apply_repair(&ops)));
    }

    #[test]
    fn repair_extra_element_deletes() {
        let mut ab = Alphabet::new();
        let d = compile("(a, c)", &mut ab);
        let a = ab.lookup("a").unwrap();
        let c = ab.lookup("c").unwrap();
        let b = ab.intern("b");
        let d2 = compile("(a, c)", &mut ab); // recompile over widened alphabet
        let (ops, cost) = repair_string(&d2, &[a, b, c], None).expect("repairable");
        assert_eq!(cost, 1);
        assert!(ops.contains(&StringRepairOp::Delete(b)));
        assert!(d2.accepts(&apply_repair(&ops)));
        let _ = d;
    }

    #[test]
    fn repair_prefers_substitution_over_two_ops() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b)", &mut ab);
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let (ops, cost) = repair_string(&d, &[a, a], None).expect("repairable");
        assert_eq!(cost, 1);
        assert_eq!(
            ops,
            vec![
                StringRepairOp::Keep(a),
                StringRepairOp::Subst { from: a, to: b }
            ]
        );
    }

    #[test]
    fn already_valid_strings_cost_zero() {
        let mut ab = Alphabet::new();
        let d = compile("(a | b)+", &mut ab);
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let (ops, cost) = repair_string(&d, &[a, b, a], None).expect("repairable");
        assert_eq!(cost, 0);
        assert!(ops.iter().all(|o| !o.is_change()));
    }

    #[test]
    fn empty_language_is_unrepairable() {
        let d = Dfa::from_regex(&schemacast_regex::Regex::Empty, 2).expect("compile");
        assert!(repair_string(&d, &[Sym(0)], None).is_none());
    }

    #[test]
    fn repair_from_empty_string_synthesizes_witness() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b, c)", &mut ab);
        let (ops, cost) = repair_string(&d, &[], None).expect("repairable");
        assert_eq!(cost, 3);
        assert_eq!(apply_repair(&ops).len(), 3);
        assert!(d.accepts(&apply_repair(&ops)));
    }

    #[test]
    fn repairs_are_minimal_on_random_samples() {
        // Brute-force cross-check on tiny cases: cost equals the minimal
        // number of edits found by exhaustive search up to cost 2.
        let mut ab = Alphabet::new();
        let d = compile("(a, (b | c), a?)", &mut ab);
        let syms: Vec<Sym> = ab.symbols().collect();
        let all_strings = |len: usize| -> Vec<Vec<Sym>> {
            let mut out: Vec<Vec<Sym>> = vec![vec![]];
            for _ in 0..len {
                out = out
                    .into_iter()
                    .flat_map(|v| {
                        syms.iter()
                            .map(move |&s| {
                                let mut w = v.clone();
                                w.push(s);
                                w
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect();
            }
            out
        };
        let mut inputs = Vec::new();
        for len in 0..4 {
            inputs.extend(all_strings(len));
        }
        for input in inputs {
            let Some((ops, cost)) = repair_string(&d, &input, None) else {
                panic!("language is non-empty, repair must exist");
            };
            assert!(d.accepts(&apply_repair(&ops)), "input {input:?}");
            // Lower bound check: cost 0 iff already accepted.
            assert_eq!(cost == 0, d.accepts(&input), "input {input:?}");
            // Edit-distance sanity: deleting everything and inserting a
            // shortest witness is an upper bound.
            let witness = shortest_witness(&d, None).expect("nonempty").len();
            assert!(cost <= input.len() + witness, "input {input:?}");
        }
    }
}
