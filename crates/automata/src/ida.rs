//! Immediate decision automata (§4.1–4.2 of the paper).
//!
//! An immediate decision automaton (IDA) is a DFA extended with two disjoint
//! state sets `IA` (immediate accept) and `IR` (immediate reject): while
//! scanning, reaching an `IA` state proves the whole string will be accepted
//! (given the revalidation precondition) and reaching an `IR` state proves it
//! cannot be.
//!
//! Two constructions are provided:
//!
//! * [`Ida::from_dfa`] — Definition 6: `IA = {q | L(q) = Σ*}`,
//!   `IR = {q | L(q) = ∅}`. Used as `b_immed` when no knowledge about the
//!   input is available (the modified prefix in §4.3).
//! * [`ProductIda::new`] — Definitions 7/8 over the intersection automaton of
//!   `a` and `b`: `IA = {(q_a,q_b) | L(q_a) ⊆ L(q_b)}` and `IR` = states from
//!   which no final state is reachable. Sound only under the precondition
//!   that the remaining input is in `L_a(q_a)` — exactly the schema-cast
//!   setting.
//!
//! Deviation from Definition 7 (documented in DESIGN.md): the paper defines
//! `IR_c` as the *dead* states, which include states unreachable from the
//! product's start. Because the with-modifications algorithm (Prop. 2) enters
//! the product at arbitrary pairs, we use only the "no final state reachable"
//! half; for runs from the start state the two definitions classify every
//! *encountered* state identically, so optimality (Prop. 3) is unaffected.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, StateId};
use crate::hot::HotDfa;
use crate::product::Product;
use schemacast_regex::Sym;

/// The result of running an IDA over (a suffix of) a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdaOutcome {
    /// The string is accepted.
    Accept {
        /// Symbols consumed before the decision.
        consumed: usize,
        /// Whether the decision was made before the end of input via `IA`.
        early: bool,
    },
    /// The string is rejected.
    Reject {
        /// Symbols consumed before the decision.
        consumed: usize,
        /// Whether the decision was made before the end of input via `IR`.
        early: bool,
    },
}

impl IdaOutcome {
    /// Whether the outcome is an accept.
    pub fn accepted(self) -> bool {
        matches!(self, IdaOutcome::Accept { .. })
    }

    /// Number of symbols consumed before the decision.
    pub fn consumed(self) -> usize {
        match self {
            IdaOutcome::Accept { consumed, .. } | IdaOutcome::Reject { consumed, .. } => consumed,
        }
    }

    /// Whether the decision was early (before exhausting the input).
    pub fn early(self) -> bool {
        match self {
            IdaOutcome::Accept { early, .. } | IdaOutcome::Reject { early, .. } => early,
        }
    }
}

/// A DFA with immediate-accept and immediate-reject state sets.
#[derive(Debug, Clone)]
pub struct Ida {
    dfa: Dfa,
    ia: BitSet,
    ir: BitSet,
    /// Branchless hot table with the decision sets folded into per-state
    /// flag bytes — what the streaming validator actually steps.
    hot: HotDfa,
}

/// Computes `{q | L(q) = Σ*}`: states that cannot reach a non-final state.
fn universal_states(d: &Dfa) -> BitSet {
    // Backward reachability from non-final states; IA is the complement.
    let n = d.state_count();
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for q in 0..n {
        for &t in d.row(q as StateId) {
            rev[t as usize].push(q as StateId);
        }
    }
    let mut bad = BitSet::new(n);
    let mut stack: Vec<StateId> = Vec::new();
    for q in 0..n {
        if !d.is_final(q as StateId) && bad.insert(q) {
            stack.push(q as StateId);
        }
    }
    while let Some(q) = stack.pop() {
        for &p in &rev[q as usize] {
            if bad.insert(p as usize) {
                stack.push(p);
            }
        }
    }
    bad.invert();
    bad
}

impl Ida {
    /// Derives the immediate decision automaton of `d` (Definition 6).
    pub fn from_dfa(d: &Dfa) -> Ida {
        let ia = universal_states(d);
        let mut ir = d.coaccessible();
        ir.invert();
        Ida::from_sets(d.clone(), ia, ir)
    }

    /// Constructs an IDA with explicit `IA`/`IR` sets.
    ///
    /// `IA ∩ IR` is resolved in favour of `IR` (rejecting is the safe
    /// decision for a state whose guaranteed language is empty), keeping the
    /// two sets disjoint as the paper requires.
    pub fn from_sets(dfa: Dfa, ia: BitSet, ir: BitSet) -> Ida {
        let mut ia = ia;
        // Make disjoint: drop IA bits that are also IR.
        let mut not_ir = ir.clone();
        not_ir.invert();
        ia.intersect_with(&not_ir);
        debug_assert_eq!(ia.capacity(), dfa.state_count());
        debug_assert_eq!(ir.capacity(), dfa.state_count());
        let hot = HotDfa::with_decisions(&dfa, &ia, &ir);
        Ida { dfa, ia, ir, hot }
    }

    /// The underlying DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The branchless hot table (transitions + `FINAL`/`IA`/`IR` flag
    /// bytes) — the representation the streaming hot loop steps.
    #[inline]
    pub fn hot(&self) -> &HotDfa {
        &self.hot
    }

    /// Whether `q` is an immediate-accept state.
    pub fn is_ia(&self, q: StateId) -> bool {
        self.ia.contains(q as usize)
    }

    /// Whether `q` is an immediate-reject state.
    pub fn is_ir(&self, q: StateId) -> bool {
        self.ir.contains(q as usize)
    }

    /// Runs the IDA from its start state.
    pub fn run(&self, input: &[Sym]) -> IdaOutcome {
        self.run_from(self.dfa.start(), input)
    }

    /// Runs the IDA from an explicit state — the entry point used by the
    /// with-modifications algorithm (Prop. 2).
    ///
    /// The state is checked against `IA`/`IR` before each symbol is
    /// consumed, including before the first (a decision after a strict
    /// prefix, as Definition 6 allows) and after the last.
    pub fn run_from(&self, start: StateId, input: &[Sym]) -> IdaOutcome {
        self.run_from_iter(start, input.iter().copied())
    }

    /// Iterator flavour of [`Ida::run_from`]: symbols are pulled lazily, so
    /// an early decision stops consuming the source — used by the backward
    /// with-modifications path to scan a reversed region without
    /// materializing it.
    pub fn run_from_iter(
        &self,
        start: StateId,
        input: impl IntoIterator<Item = Sym>,
    ) -> IdaOutcome {
        let mut q = start;
        let mut consumed = 0usize;
        for s in input {
            if self.ia.contains(q as usize) {
                return IdaOutcome::Accept {
                    consumed,
                    early: true,
                };
            }
            if self.ir.contains(q as usize) {
                return IdaOutcome::Reject {
                    consumed,
                    early: true,
                };
            }
            q = self.dfa.step(q, s);
            consumed += 1;
        }
        if self.ia.contains(q as usize) {
            return IdaOutcome::Accept {
                consumed,
                early: true,
            };
        }
        if self.ir.contains(q as usize) {
            return IdaOutcome::Reject {
                consumed,
                early: true,
            };
        }
        if self.dfa.is_final(q) {
            IdaOutcome::Accept {
                consumed,
                early: false,
            }
        } else {
            IdaOutcome::Reject {
                consumed,
                early: false,
            }
        }
    }

    /// Like [`Ida::run_from`] but also returns the state reached, for
    /// callers that continue scanning with another automaton. The state is
    /// meaningful only when the outcome was not early.
    pub fn run_from_with_state(&self, start: StateId, input: &[Sym]) -> (IdaOutcome, StateId) {
        let mut q = start;
        for (i, &s) in input.iter().enumerate() {
            if self.ia.contains(q as usize) {
                return (
                    IdaOutcome::Accept {
                        consumed: i,
                        early: true,
                    },
                    q,
                );
            }
            if self.ir.contains(q as usize) {
                return (
                    IdaOutcome::Reject {
                        consumed: i,
                        early: true,
                    },
                    q,
                );
            }
            q = self.dfa.step(q, s);
        }
        let outcome = if self.ia.contains(q as usize) {
            IdaOutcome::Accept {
                consumed: input.len(),
                early: true,
            }
        } else if self.ir.contains(q as usize) {
            IdaOutcome::Reject {
                consumed: input.len(),
                early: true,
            }
        } else if self.dfa.is_final(q) {
            IdaOutcome::Accept {
                consumed: input.len(),
                early: false,
            }
        } else {
            IdaOutcome::Reject {
                consumed: input.len(),
                early: false,
            }
        };
        (outcome, q)
    }
}

/// The immediate decision automaton `c_immed` derived from the intersection
/// automaton of a source DFA `a` and target DFA `b` (Definition 7).
///
/// Sound for inputs known to satisfy the revalidation precondition: when run
/// over a suffix `s` with the guarantee that `s ∈ L_a(q_a)`, the outcome
/// equals `s ∈ L_b(q_b)` (Theorem 3 / Prop. 2).
#[derive(Debug, Clone)]
pub struct ProductIda {
    ida: Ida,
    product: Product,
}

impl ProductIda {
    /// Preprocesses the pair `(a, b)`.
    ///
    /// `IA` is computed by Definition 8 (equivalent to Definition 7 per
    /// Theorem 4): backward reachability from the "bad" pairs
    /// `{(q_a,q_b) | q_a ∈ F_a, q_b ∉ F_b}`; a pair is in `IA` iff it cannot
    /// reach a bad pair. `IR` is backward reachability from final pairs,
    /// complemented. Both are linear in the size of the product automaton.
    pub fn new(a: &Dfa, b: &Dfa) -> ProductIda {
        let product = Product::new(a, b);
        let d = product.dfa();
        let n = d.state_count();

        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for q in 0..n {
            for &t in d.row(q as StateId) {
                rev[t as usize].push(q as StateId);
            }
        }

        // IA = complement of backward-reachable({(qa,qb) : qa∈Fa, qb∉Fb}).
        let mut bad = BitSet::new(n);
        let mut stack: Vec<StateId> = Vec::new();
        for qa in 0..product.a_states() as StateId {
            for qb in 0..product.b_states() as StateId {
                let q = product.pair(qa, qb);
                if a.is_final(qa) && !b.is_final(qb) && bad.insert(q as usize) {
                    stack.push(q);
                }
            }
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q as usize] {
                if bad.insert(p as usize) {
                    stack.push(p);
                }
            }
        }
        let mut ia = bad;
        ia.invert();

        // IR = complement of co-accessible states of the product.
        let mut ir = d.coaccessible();
        ir.invert();

        let ida = Ida::from_sets(d.clone(), ia, ir);
        ProductIda { ida, product }
    }

    /// The underlying IDA over the product DFA.
    pub fn ida(&self) -> &Ida {
        &self.ida
    }

    /// The pair indexing of the product.
    pub fn product(&self) -> &Product {
        &self.product
    }

    /// Runs from the start pair `(q_a⁰, q_b⁰)`. For `s ∈ L(a)`, the outcome
    /// decides `s ∈ L(b)` (Theorem 3), possibly early.
    pub fn run(&self, input: &[Sym]) -> IdaOutcome {
        self.ida.run(input)
    }

    /// Runs from an explicit pair `(q_a, q_b)` — Prop. 2's entry point.
    pub fn run_from_pair(&self, qa: StateId, qb: StateId, input: &[Sym]) -> IdaOutcome {
        self.ida.run_from(self.product.pair(qa, qb), input)
    }

    /// Iterator flavour of [`ProductIda::run_from_pair`]; lazily consumed,
    /// so early decisions stop pulling symbols.
    pub fn run_from_pair_iter(
        &self,
        qa: StateId,
        qb: StateId,
        input: impl IntoIterator<Item = Sym>,
    ) -> IdaOutcome {
        self.ida.run_from_iter(self.product.pair(qa, qb), input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn simple_ida_universal_and_dead() {
        let mut ab = Alphabet::new();
        let d = compile("(a | b)*", &mut ab);
        let ida = Ida::from_dfa(&d);
        // Start state is universal: immediate accept after zero symbols.
        let out = ida.run(&[ab.lookup("a").unwrap()]);
        assert_eq!(
            out,
            IdaOutcome::Accept {
                consumed: 0,
                early: true
            }
        );
    }

    #[test]
    fn simple_ida_rejects_in_sink_early() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b)", &mut ab);
        let ida = Ida::from_dfa(&d);
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        // "b …" enters the sink after one symbol; rejection is immediate even
        // though more input remains.
        let out = ida.run(&[b, a, a, a]);
        assert!(matches!(out, IdaOutcome::Reject { early: true, .. }));
        assert!(out.consumed() <= 2);
        // Valid input runs to completion.
        assert_eq!(
            ida.run(&[a, b]),
            IdaOutcome::Accept {
                consumed: 2,
                early: false
            }
        );
    }

    #[test]
    fn figure1_immediate_accept_after_billto() {
        // Source: (shipTo, billTo?, items); target: (shipTo, billTo, items).
        // After scanning "shipTo billTo" the residual languages coincide
        // ("items"), so c_immed accepts immediately — this is what makes
        // Experiment 1 constant-time.
        let mut ab = Alphabet::new();
        let a = compile("(shipTo, billTo?, items)", &mut ab);
        let b = compile("(shipTo, billTo, items)", &mut ab);
        let c = ProductIda::new(&a, &b);
        let sh = ab.lookup("shipTo").unwrap();
        let bi = ab.lookup("billTo").unwrap();
        let it = ab.lookup("items").unwrap();

        let out = c.run(&[sh, bi, it]);
        assert!(out.accepted());
        assert!(out.early(), "expected early accept, got {out:?}");
        assert_eq!(out.consumed(), 2);

        // Without billTo the target can no longer accept: early reject.
        let out = c.run(&[sh, it]);
        assert!(!out.accepted());
        assert!(out.early());
        assert_eq!(out.consumed(), 2);
    }

    #[test]
    fn product_ida_agrees_with_b_membership() {
        let mut ab = Alphabet::new();
        let a = compile("(x | y)*, z", &mut ab);
        let b = compile("x*, (y | z)+", &mut ab);
        let c = ProductIda::new(&a, &b);
        let x = ab.lookup("x").unwrap();
        let y = ab.lookup("y").unwrap();
        let z = ab.lookup("z").unwrap();
        // Enumerate strings in L(a) up to length 4 and compare against b.
        let syms = [x, y, z];
        let mut inputs: Vec<Vec<Sym>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for base in &inputs {
                for &s in &syms {
                    let mut v = base.clone();
                    v.push(s);
                    next.push(v);
                }
            }
            inputs.extend(next);
        }
        inputs.retain(|i| a.accepts(i));
        assert!(!inputs.is_empty());
        for input in &inputs {
            assert_eq!(c.run(input).accepted(), b.accepts(input), "input {input:?}");
        }
    }

    #[test]
    fn run_from_pair_matches_residual_membership() {
        let mut ab = Alphabet::new();
        let a = compile("(p, q, r)", &mut ab);
        let b = compile("(p, q?, r)", &mut ab);
        let c = ProductIda::new(&a, &b);
        let p = ab.lookup("p").unwrap();
        let q = ab.lookup("q").unwrap();
        let r = ab.lookup("r").unwrap();
        // After "p" in a and "p" in b, residual "q r" ∈ L_a and ∈ L_b.
        let qa = a.run_from(a.start(), &[p]);
        let qb = b.run_from(b.start(), &[p]);
        assert!(c.run_from_pair(qa, qb, &[q, r]).accepted());
        // "r" is in L_b(qb) but not L_a(qa) — the IDA answers for b given
        // the a-guarantee; with a violated precondition (r ∉ L_a(qa)) any
        // answer is permissible, so we only check the accepted cases above.
    }

    #[test]
    fn ia_and_ir_are_disjoint() {
        let mut ab = Alphabet::new();
        let a = compile("(a, b) | c", &mut ab);
        let b = compile("c | (a, b, a)", &mut ab);
        let c = ProductIda::new(&a, &b);
        let d = c.ida().dfa();
        for q in 0..d.state_count() as StateId {
            assert!(
                !(c.ida().is_ia(q) && c.ida().is_ir(q)),
                "state {q} in both IA and IR"
            );
        }
    }
}
