//! Certificate producers for the automata-level claims.
//!
//! Emits the evidence the independent checker (`schemacast-certify`)
//! validates: raw transition-table snapshots, simulation relations for
//! language inclusion, restricted reachable pair sets for disjointness
//! invariants, exact safe/dead grids with rank functions for product IDAs,
//! and replayable difference paths. Nothing here is trusted by the checker
//! — these functions only *package* what the analyses computed into shapes
//! whose correctness can be re-established locally.

use crate::bitset::BitSet;
use crate::dfa::{Dfa, StateId};
use crate::ida::ProductIda;
use crate::witness::{pair_trace, shortest_in_a_not_b};
use schemacast_certify::{DfaRef, IdaCert, PathCert, RawDfa};
use schemacast_regex::Sym;
use std::collections::VecDeque;

/// Snapshots a compiled DFA as the checker's raw table format. The checker
/// re-validates the structural invariants (complete table, absorbing
/// non-final sink) rather than trusting this extraction.
pub fn raw_dfa(d: &Dfa) -> RawDfa {
    let n = d.state_count();
    let w = d.alphabet_len();
    let mut trans = Vec::with_capacity(n * w);
    let mut finals = Vec::with_capacity(n);
    for q in 0..n as StateId {
        for s in 0..w {
            trans.push(d.step(q, Sym(s as u32)));
        }
        finals.push(d.is_final(q));
    }
    RawDfa {
        alphabet_len: w as u32,
        start: d.start(),
        trans,
        finals,
        sink: d.sink(),
    }
}

/// The minimal simulation relation witnessing `L(a) ⊆ L(b)`: the pair set
/// reachable from `(start, start)` stepping both machines in lockstep.
/// Returns `None` if a reachable pair refutes inclusion (`a`-final,
/// `b`-non-final) — then no simulation exists. Minimality matters for the
/// corruption suite: every member is load-bearing, so dropping any pair
/// breaks the checker's start or closure test.
pub fn simulation_relation(a: &Dfa, b: &Dfa) -> Option<Vec<(StateId, StateId)>> {
    let width = a.alphabet_len().max(b.alphabet_len());
    pair_closure(a, b, width, None, &mut |qa, qb| {
        a.is_final(qa) && !b.is_final(qb)
    })
}

/// The pair set reachable from `(start, start)` using only `allowed`
/// symbols — the invariant of a disjointness certificate. Returns `None`
/// if a jointly final pair is reached (the languages share a word over the
/// permitted symbols, so no disjointness invariant exists).
pub fn restricted_pair_invariant(
    a: &Dfa,
    b: &Dfa,
    allowed: &BitSet,
) -> Option<Vec<(StateId, StateId)>> {
    let width = a.alphabet_len().max(b.alphabet_len());
    pair_closure(a, b, width, Some(allowed), &mut |qa, qb| {
        a.is_final(qa) && b.is_final(qb)
    })
}

/// Shared lockstep pair-graph sweep: collects the reachable pair set, or
/// bails with `None` when a pair satisfying `refutes` turns up.
fn pair_closure(
    a: &Dfa,
    b: &Dfa,
    width: usize,
    allowed: Option<&BitSet>,
    refutes: &mut dyn FnMut(StateId, StateId) -> bool,
) -> Option<Vec<(StateId, StateId)>> {
    let nb = b.state_count();
    let mut seen = BitSet::new(a.state_count() * nb);
    let start = (a.start(), b.start());
    if refutes(start.0, start.1) {
        return None;
    }
    seen.insert(start.0 as usize * nb + start.1 as usize);
    let mut pairs = vec![start];
    let mut queue = VecDeque::from([start]);
    while let Some((qa, qb)) = queue.pop_front() {
        for s in 0..width {
            if let Some(p) = allowed {
                if s >= p.capacity() || !p.contains(s) {
                    continue;
                }
            }
            let sym = Sym(s as u32);
            let next = (a.step(qa, sym), b.step(qb, sym));
            if refutes(next.0, next.1) {
                return None;
            }
            if seen.insert(next.0 as usize * nb + next.1 as usize) {
                pairs.push(next);
                queue.push_back(next);
            }
        }
    }
    Some(pairs)
}

/// Exactness certificate for a product IDA: the exact safe/dead pair sets
/// with BFS-distance rank functions, plus the *published* `IA`/`IR` bits
/// exactly as the engine consults them. Returns `None` if the product's
/// state space is not the plain `|Q_a| × |Q_b|` grid (never happens — the
/// `(sink_a, sink_b)` pair always serves as the product sink — but the
/// producer refuses to emit a certificate it cannot ground).
pub fn ida_cert(
    a: &Dfa,
    b: &Dfa,
    ida: &ProductIda,
    source_type: u32,
    target_type: u32,
    a_ref: DfaRef,
    b_ref: DfaRef,
) -> Option<IdaCert> {
    let na = a.state_count();
    let nb = b.state_count();
    if ida.product().a_states() != na
        || ida.product().b_states() != nb
        || ida.product().dfa().state_count() != na * nb
    {
        return None;
    }
    let (safe, safe_rank) = avoid_set_with_ranks(a, b, &|qa, qb| a.is_final(qa) && !b.is_final(qb));
    let (dead, dead_rank) = avoid_set_with_ranks(a, b, &|qa, qb| a.is_final(qa) && b.is_final(qb));
    let n = na * nb;
    let mut ia = vec![false; n];
    let mut ir = vec![false; n];
    let decide = ida.ida();
    for qa in 0..na as StateId {
        for qb in 0..nb as StateId {
            let q = ida.product().pair(qa, qb);
            let i = qa as usize * nb + qb as usize;
            ia[i] = decide.is_ia(q);
            ir[i] = decide.is_ir(q);
        }
    }
    Some(IdaCert {
        source_type,
        target_type,
        a: a_ref,
        b: b_ref,
        safe,
        safe_rank,
        dead,
        dead_rank,
        ia,
        ir,
    })
}

/// For every grid pair: whether it *cannot* reach a goal pair (member of
/// the avoid set), and for non-members the exact BFS distance to the
/// nearest goal — the rank function that certifies the set is not merely
/// closed but exact. Multi-source backward BFS over the pair grid.
fn avoid_set_with_ranks(
    a: &Dfa,
    b: &Dfa,
    goal: &dyn Fn(StateId, StateId) -> bool,
) -> (Vec<bool>, Vec<u32>) {
    let na = a.state_count();
    let nb = b.state_count();
    let n = na * nb;
    let width = a.alphabet_len().max(b.alphabet_len());
    // Reverse adjacency once; the grid is dense so a flat Vec<Vec<_>> is fine.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for qa in 0..na as StateId {
        for qb in 0..nb as StateId {
            let q = qa as usize * nb + qb as usize;
            for s in 0..width {
                let sym = Sym(s as u32);
                let t = a.step(qa, sym) as usize * nb + b.step(qb, sym) as usize;
                rev[t].push(q as u32);
            }
        }
    }
    let mut rank = vec![0u32; n];
    let mut reaches = vec![false; n];
    let mut queue = VecDeque::new();
    for qa in 0..na as StateId {
        for qb in 0..nb as StateId {
            if goal(qa, qb) {
                let q = qa as usize * nb + qb as usize;
                reaches[q] = true;
                queue.push_back(q);
            }
        }
    }
    while let Some(q) = queue.pop_front() {
        for &p in &rev[q] {
            if !reaches[p as usize] {
                reaches[p as usize] = true;
                rank[p as usize] = rank[q] + 1;
                queue.push_back(p as usize);
            }
        }
    }
    let member: Vec<bool> = reaches.iter().map(|&r| !r).collect();
    (member, rank)
}

/// A replayable certificate for the shortest difference witness
/// `w ∈ L(a) ∖ L(b)`, or `None` when the inclusion holds. Reuses the lint
/// subsystem's BFS ([`shortest_in_a_not_b`]) and pairs it with the exact
/// state trace the checker will re-derive step by step.
pub fn difference_path_cert(
    a: &Dfa,
    b: &Dfa,
    source_type: u32,
    target_type: u32,
    a_ref: DfaRef,
    b_ref: DfaRef,
) -> Option<PathCert> {
    let word = shortest_in_a_not_b(a, b, None)?;
    let states = pair_trace(a, b, &word);
    Some(PathCert {
        source_type,
        target_type,
        a: a_ref,
        b: b_ref,
        word: word.into_iter().map(|s| s.0).collect(),
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::language_subset;
    use schemacast_certify::{
        check_bundle, CertBundle, SimulationCert, SubBody, SubCert, SubObligation,
    };
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
        let r = parse_regex(text, ab).expect("parse");
        Dfa::from_regex(&r, ab.len()).expect("compile")
    }

    #[test]
    fn raw_snapshot_agrees_with_dfa() {
        let mut ab = Alphabet::new();
        let d = compile("(a, b?)*", &mut ab);
        let raw = raw_dfa(&d);
        raw.validate_shape().expect("well-formed");
        assert_eq!(raw.state_count(), d.state_count());
        for q in 0..d.state_count() as StateId {
            assert_eq!(raw.is_final(q), d.is_final(q));
            for s in 0..d.alphabet_len() {
                assert_eq!(raw.step(q, s as u32), d.step(q, Sym(s as u32)));
            }
        }
    }

    #[test]
    fn simulation_exists_iff_included() {
        let mut ab = Alphabet::new();
        let small = compile("(a, b)", &mut ab);
        let big = compile("(a, b) | (a, c)", &mut ab);
        assert!(language_subset(&small, &big));
        let rel = simulation_relation(&small, &big).expect("included");
        // The relation checks out against the independent checker.
        let bundle = CertBundle {
            dfas: vec![raw_dfa(&small), raw_dfa(&big)],
            subs: vec![SubCert {
                source_type: 0,
                target_type: 1,
                body: SubBody::Complex {
                    simulation: SimulationCert {
                        a: 0,
                        b: 1,
                        relation: rel,
                    },
                    obligations: useful_axiom_obligations(&raw_dfa(&small), 2),
                },
            }],
            ..CertBundle::default()
        };
        let mut bundle = bundle;
        bundle.subs.push(SubCert {
            source_type: 2,
            target_type: 2,
            body: SubBody::SimpleAxiom,
        });
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);
        // And fails to exist for the non-included direction.
        assert_eq!(simulation_relation(&big, &small), None);
    }

    /// Covers every useful symbol with an obligation pointing at one shared
    /// axiom certificate — enough for structural tests.
    fn useful_axiom_obligations(raw: &RawDfa, axiom_ref: u32) -> Vec<SubObligation> {
        raw.useful_symbols()
            .iter()
            .enumerate()
            .filter(|&(_, &u)| u)
            .map(|(s, _)| SubObligation {
                symbol: s as u32,
                child_source: 2,
                child_target: 2,
                child_ref: axiom_ref - 1,
            })
            .collect()
    }

    #[test]
    fn restricted_invariant_exists_iff_disjoint() {
        let mut ab = Alphabet::new();
        let a = compile("(x, y)", &mut ab);
        let b = compile("(y, x)", &mut ab);
        let mut all = BitSet::new(ab.len());
        for s in 0..ab.len() {
            all.insert(s);
        }
        let inv = restricted_pair_invariant(&a, &b, &all).expect("disjoint");
        assert!(inv.contains(&(a.start(), b.start())));
        // Same language on both sides: jointly final pair reached.
        assert_eq!(restricted_pair_invariant(&a, &a, &all), None);
    }

    #[test]
    fn ida_cert_validates_and_is_exact() {
        let mut ab = Alphabet::new();
        let a = compile("(p, q?, r)", &mut ab);
        let b = compile("(p, q, r)", &mut ab);
        let pida = ProductIda::new(&a, &b);
        let cert = ida_cert(&a, &b, &pida, 0, 1, 0, 1).expect("grid product");
        let bundle = CertBundle {
            dfas: vec![raw_dfa(&a), raw_dfa(&b)],
            idas: vec![cert],
            ..CertBundle::default()
        };
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);
    }

    #[test]
    fn difference_path_replays() {
        let mut ab = Alphabet::new();
        let a = compile("(m, n?)", &mut ab);
        let b = compile("(m, n)", &mut ab);
        let cert = difference_path_cert(&a, &b, 0, 1, 0, 1).expect("not included");
        let bundle = CertBundle {
            dfas: vec![raw_dfa(&a), raw_dfa(&b)],
            paths: vec![cert],
            ..CertBundle::default()
        };
        let report = check_bundle(&bundle);
        assert!(report.all_valid(), "{:?}", report.failures);
        // Included direction yields no path.
        assert_eq!(difference_path_cert(&b, &a, 0, 1, 0, 1), None);
    }
}
