//! Dense, complete deterministic finite automata.
//!
//! Content models are small, so the transition function is a dense
//! `states × |Σ|` table: stepping is one multiply and one load. Every DFA is
//! *complete* — it has a (possibly unreachable) sink state, and symbols
//! interned after the DFA was built (`sym.index() ≥ alphabet_len`) also step
//! to the sink, so a document using labels unknown to a schema is simply
//! rejected by its content models.

use crate::bitset::BitSet;
use crate::nfa::Nfa;
use schemacast_regex::ast::RepeatOverflow;
use schemacast_regex::{GlushkovNfa, Regex, Sym};

/// A DFA state index.
pub type StateId = u32;

/// A complete DFA over a dense alphabet `0..alphabet_len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet_len: usize,
    start: StateId,
    /// Row-major transition table: `trans[q * alphabet_len + s]`.
    trans: Vec<StateId>,
    finals: Vec<bool>,
    sink: StateId,
}

impl Dfa {
    /// Assembles a DFA from raw parts, materializing a sink if the given
    /// machine has no all-looping non-final state.
    ///
    /// # Panics
    /// Panics if `trans.len() != finals.len() * alphabet_len` or a target is
    /// out of range.
    pub fn from_parts(
        alphabet_len: usize,
        start: StateId,
        mut trans: Vec<StateId>,
        mut finals: Vec<bool>,
    ) -> Dfa {
        assert_eq!(trans.len(), finals.len() * alphabet_len);
        let n = finals.len() as StateId;
        assert!(
            trans.iter().all(|&t| t < n),
            "transition target out of range"
        );
        assert!(start < n, "start state out of range");

        let sink = (0..finals.len())
            .find(|&q| {
                !finals[q]
                    && trans[q * alphabet_len..(q + 1) * alphabet_len]
                        .iter()
                        .all(|&t| t == q as StateId)
            })
            .map(|q| q as StateId)
            .unwrap_or_else(|| {
                let q = finals.len() as StateId;
                finals.push(false);
                trans.extend(std::iter::repeat_n(q, alphabet_len));
                q
            });

        Dfa {
            alphabet_len,
            start,
            trans,
            finals,
            sink,
        }
    }

    /// Compiles a regular expression into a DFA over `alphabet_len` symbols.
    ///
    /// One-unambiguous expressions (every well-formed XML content model)
    /// yield their Glushkov automaton directly; others are determinized via
    /// the subset construction.
    ///
    /// # Errors
    /// Fails only if a bounded repetition is too large to expand.
    pub fn from_regex(r: &Regex, alphabet_len: usize) -> Result<Dfa, RepeatOverflow> {
        let g = GlushkovNfa::new(r)?;
        if g.is_deterministic() {
            Ok(Self::from_deterministic_glushkov(&g, alphabet_len))
        } else {
            Ok(Nfa::from_glushkov(&g, alphabet_len).determinize())
        }
    }

    fn from_deterministic_glushkov(g: &GlushkovNfa, alphabet_len: usize) -> Dfa {
        let n = g.state_count();
        // Reserve one extra state up front as the sink.
        let sink = n as StateId;
        let mut trans = vec![sink; (n + 1) * alphabet_len];
        let mut finals = vec![false; n + 1];
        for q in 0..n {
            finals[q] = g.is_final(q);
            for (sym, t) in g.transitions(q) {
                trans[q * alphabet_len + sym.index()] = t as StateId;
            }
        }
        for s in 0..alphabet_len {
            trans[n * alphabet_len + s] = sink;
        }
        Dfa {
            alphabet_len,
            start: g.start() as StateId,
            trans,
            finals,
            sink,
        }
    }

    /// The alphabet size this DFA's table covers.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Number of states (including the sink).
    pub fn state_count(&self) -> usize {
        self.finals.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The sink (dead) state.
    pub fn sink(&self) -> StateId {
        self.sink
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q as usize]
    }

    /// The accepting-state set as a bitset.
    pub fn finals(&self) -> BitSet {
        let mut b = BitSet::new(self.state_count());
        for (q, &f) in self.finals.iter().enumerate() {
            if f {
                b.insert(q);
            }
        }
        b
    }

    /// One transition step. Symbols outside the table's alphabet go to the
    /// sink.
    #[inline]
    pub fn step(&self, q: StateId, s: Sym) -> StateId {
        if s.index() < self.alphabet_len {
            self.trans[q as usize * self.alphabet_len + s.index()]
        } else {
            self.sink
        }
    }

    /// Runs the DFA over `input` starting at `q`.
    pub fn run_from(&self, mut q: StateId, input: &[Sym]) -> StateId {
        for &s in input {
            q = self.step(q, s);
        }
        q
    }

    /// Whether `input ∈ L(self)`.
    pub fn accepts(&self, input: &[Sym]) -> bool {
        self.is_final(self.run_from(self.start, input))
    }

    /// States reachable from the start state.
    pub fn reachable(&self) -> BitSet {
        let mut seen = BitSet::new(self.state_count());
        let mut stack = vec![self.start];
        seen.insert(self.start as usize);
        while let Some(q) = stack.pop() {
            for s in 0..self.alphabet_len {
                let t = self.trans[q as usize * self.alphabet_len + s];
                if seen.insert(t as usize) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// States from which some accepting state is reachable (co-accessible
    /// states). The complement is the set of states whose right language is
    /// empty — the "no final state is reachable" half of the paper's dead
    /// states, and exactly the `IR` set of Definition 6.
    pub fn coaccessible(&self) -> BitSet {
        // Reverse adjacency, then BFS from finals.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.state_count()];
        for q in 0..self.state_count() {
            for s in 0..self.alphabet_len {
                let t = self.trans[q * self.alphabet_len + s];
                rev[t as usize].push(q as StateId);
            }
        }
        let mut live = BitSet::new(self.state_count());
        let mut stack: Vec<StateId> = Vec::new();
        for (q, &f) in self.finals.iter().enumerate() {
            if f && live.insert(q) {
                stack.push(q as StateId);
            }
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q as usize] {
                if live.insert(p as usize) {
                    stack.push(p);
                }
            }
        }
        live
    }

    /// Dead states per the paper's §4.1: unreachable from the start state,
    /// or unable to reach any accepting state.
    pub fn dead_states(&self) -> BitSet {
        let reach = self.reachable();
        let live = self.coaccessible();
        let mut dead = BitSet::new(self.state_count());
        for q in 0..self.state_count() {
            if !reach.contains(q) || !live.contains(q) {
                dead.insert(q);
            }
        }
        dead
    }

    /// Whether `L(self) = ∅`.
    pub fn is_empty_language(&self) -> bool {
        !self.coaccessible().contains(self.start as usize)
    }

    /// Symbols that occur in at least one accepted string: `s` is useful iff
    /// some reachable state has an `s`-transition into a co-accessible state.
    /// The result is a bitset over symbol indices `0..alphabet_len`.
    pub fn useful_symbols(&self) -> BitSet {
        let reach = self.reachable();
        let live = self.coaccessible();
        let mut useful = BitSet::new(self.alphabet_len);
        for q in reach.iter() {
            for s in 0..self.alphabet_len {
                let t = self.trans[q * self.alphabet_len + s];
                if live.contains(t as usize) {
                    useful.insert(s);
                }
            }
        }
        useful
    }

    /// Whether `L(self) = Σ*` (every reachable state accepting).
    pub fn is_universal(&self) -> bool {
        self.reachable().iter().all(|q| self.finals[q])
    }

    /// The reverse NFA: transitions flipped, starts = old finals,
    /// final = old start.
    pub fn reverse_nfa(&self) -> Nfa {
        let mut nfa = Nfa::new(self.state_count(), self.alphabet_len);
        for q in 0..self.state_count() {
            for s in 0..self.alphabet_len {
                let t = self.trans[q * self.alphabet_len + s];
                nfa.add_transition(t, Sym(s as u32), q as StateId);
            }
        }
        for (q, &f) in self.finals.iter().enumerate() {
            if f {
                nfa.add_start(q as StateId);
            }
        }
        nfa.set_final(self.start);
        nfa
    }

    /// A DFA for the reversed language (reverse NFA + subset construction).
    pub fn reversed(&self) -> Dfa {
        self.reverse_nfa().determinize()
    }

    /// The complement DFA (finals flipped; completeness makes this sound).
    pub fn complement(&self) -> Dfa {
        let finals = self.finals.iter().map(|&f| !f).collect();
        Dfa::from_parts(self.alphabet_len, self.start, self.trans.clone(), finals)
    }

    /// A copy of this DFA with a different start state — the per-state
    /// language `L(q)` of §4.1 as a machine. Used by tests to cross-check
    /// the immediate decision sets against Definition 7 directly.
    pub fn with_start(&self, q: StateId) -> Dfa {
        assert!((q as usize) < self.state_count(), "start out of range");
        let mut d = self.clone();
        d.start = q;
        d
    }

    /// Raw transition row for state `q` (one target per symbol).
    pub(crate) fn row(&self, q: StateId) -> &[StateId] {
        &self.trans[q as usize * self.alphabet_len..(q as usize + 1) * self.alphabet_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_regex::{parse_regex, Alphabet};

    fn compile(text: &str) -> (Dfa, Alphabet) {
        let mut ab = Alphabet::new();
        let r = parse_regex(text, &mut ab).expect("parse");
        let d = Dfa::from_regex(&r, ab.len()).expect("compile");
        (d, ab)
    }

    #[test]
    fn purchase_order_content_model() {
        let (d, ab) = compile("(shipTo, billTo?, items)");
        let sh = ab.lookup("shipTo").unwrap();
        let bi = ab.lookup("billTo").unwrap();
        let it = ab.lookup("items").unwrap();
        assert!(d.accepts(&[sh, it]));
        assert!(d.accepts(&[sh, bi, it]));
        assert!(!d.accepts(&[sh, bi]));
        assert!(!d.accepts(&[it]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn out_of_alphabet_symbols_reject() {
        let (d, ab) = compile("(a, b)");
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        // A symbol interned later than DFA construction:
        let unknown = Sym(ab.len() as u32 + 5);
        assert!(d.accepts(&[a, b]));
        assert!(!d.accepts(&[a, unknown]));
        assert_eq!(d.step(d.start(), unknown), d.sink());
    }

    #[test]
    fn dfa_agrees_with_derivative_matcher() {
        let mut ab = Alphabet::new();
        let r = parse_regex("(a|b)*, c, (a, c)?", &mut ab).expect("parse");
        let d = Dfa::from_regex(&r, ab.len()).expect("compile");
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        let syms = [a, b, c];
        // Exhaustive strings up to length 4.
        let mut inputs: Vec<Vec<Sym>> = vec![vec![]];
        for len in 1..=4 {
            let mut next = Vec::new();
            for base in inputs.iter().filter(|v| v.len() == len - 1) {
                for &s in &syms {
                    let mut v = base.clone();
                    v.push(s);
                    next.push(v);
                }
            }
            inputs.extend(next);
        }
        for input in &inputs {
            assert_eq!(d.accepts(input), r.matches(input), "input {input:?}");
        }
    }

    #[test]
    fn dead_states_and_emptiness() {
        let (d, _) = compile("(a, b)");
        let dead = d.dead_states();
        assert!(dead.contains(d.sink() as usize));
        assert!(!d.is_empty_language());

        let empty = Dfa::from_regex(&Regex::Empty, 2).expect("compile");
        assert!(empty.is_empty_language());
    }

    #[test]
    fn universality() {
        let mut ab = Alphabet::new();
        let r = parse_regex("(a | b)*", &mut ab).expect("parse");
        let d = Dfa::from_regex(&r, ab.len()).expect("compile");
        assert!(d.is_universal());
        let (d2, _) = compile("(a, b)");
        assert!(!d2.is_universal());
    }

    #[test]
    fn reversed_language() {
        let (d, ab) = compile("(a, b, c)");
        let rev = d.reversed();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        assert!(rev.accepts(&[c, b, a]));
        assert!(!rev.accepts(&[a, b, c]));
    }

    #[test]
    fn complement_flips_membership() {
        let (d, ab) = compile("(a, b?)");
        let comp = d.complement();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        for input in [vec![], vec![a], vec![a, b], vec![b], vec![a, b, b]] {
            assert_eq!(d.accepts(&input), !comp.accepts(&input), "input {input:?}");
        }
    }

    #[test]
    fn epsilon_only_language() {
        let d = Dfa::from_regex(&Regex::Epsilon, 1).expect("compile");
        assert!(d.accepts(&[]));
        assert!(!d.accepts(&[Sym(0)]));
    }
}
