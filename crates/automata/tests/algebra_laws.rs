//! Algebraic laws of the automata substrate, property-tested over random
//! content-model regexes: these are the invariants the revalidation
//! algorithms silently rely on.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast_automata::{equivalent, language_subset, minimize, Dfa, Product};
use schemacast_regex::Sym;
use schemacast_workload::strings::random_regex;

const SIGMA: usize = 3;

fn dfa(seed: u64, depth: usize) -> Dfa {
    let mut rng = SmallRng::seed_from_u64(seed);
    Dfa::from_regex(&random_regex(&mut rng, SIGMA as u32, depth), SIGMA).expect("compiles")
}

fn probes() -> Vec<Vec<Sym>> {
    let mut out: Vec<Vec<Sym>> = vec![vec![]];
    let mut frontier = out.clone();
    for _ in 0..5 {
        let mut next = Vec::new();
        for base in &frontier {
            for s in 0..SIGMA as u32 {
                let mut v = base.clone();
                v.push(Sym(s));
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// minimize is idempotent up to language equivalence and reaches a
    /// fixed point in size.
    #[test]
    fn minimize_is_idempotent(seed in 0u64..10_000) {
        let d = dfa(seed, 3);
        let m1 = minimize(&d);
        let m2 = minimize(&m1);
        prop_assert!(equivalent(&d, &m1));
        prop_assert_eq!(m1.state_count(), m2.state_count());
    }

    /// Double complement is the identity on languages.
    #[test]
    fn double_complement_is_identity(seed in 0u64..10_000) {
        let d = dfa(seed, 3);
        let cc = d.complement().complement();
        prop_assert!(equivalent(&d, &cc));
    }

    /// Product membership is conjunction of memberships.
    #[test]
    fn product_is_intersection(seed_a in 0u64..5_000, seed_b in 0u64..5_000) {
        let a = dfa(seed_a, 2);
        let b = dfa(seed_b, 2);
        let p = Product::new(&a, &b);
        for s in probes() {
            prop_assert_eq!(
                p.dfa().accepts(&s),
                a.accepts(&s) && b.accepts(&s),
                "string {:?}", s
            );
        }
    }

    /// Inclusion via complement: L(a) ⊆ L(b)  ⇔  L(a) ∩ ¬L(b) = ∅.
    #[test]
    fn inclusion_via_complement(seed_a in 0u64..5_000, seed_b in 0u64..5_000) {
        let a = dfa(seed_a, 2);
        let b = dfa(seed_b, 2);
        let direct = language_subset(&a, &b);
        let via_complement = Product::new(&a, &b.complement()).dfa().is_empty_language();
        prop_assert_eq!(direct, via_complement);
    }

    /// Reversal is an involution on languages.
    #[test]
    fn double_reversal_is_identity(seed in 0u64..10_000) {
        let d = dfa(seed, 2);
        let rr = d.reversed().reversed();
        prop_assert!(equivalent(&d, &rr));
    }

    /// Universality ⇔ complement is empty.
    #[test]
    fn universal_iff_complement_empty(seed in 0u64..10_000) {
        let d = dfa(seed, 2);
        prop_assert_eq!(d.is_universal(), d.complement().is_empty_language());
    }

    /// Subset is a partial order on languages (antisymmetry ⇒ equivalence).
    #[test]
    fn subset_antisymmetry(seed_a in 0u64..3_000, seed_b in 0u64..3_000) {
        let a = dfa(seed_a, 2);
        let b = dfa(seed_b, 2);
        if language_subset(&a, &b) && language_subset(&b, &a) {
            prop_assert!(equivalent(&a, &b));
            // Minimal DFAs of equivalent languages have equal size.
            prop_assert_eq!(minimize(&a).state_count(), minimize(&b).state_count());
        }
    }
}
