//! §5 optimality, verified exhaustively on small automata.
//!
//! Theorem 4 states that the reachability-based computation of `IA_c`
//! (Definition 8) produces exactly the set of Definition 7:
//! `IA = {(q_a, q_b) | L(q_a) ⊆ L(q_b)}`. We cross-check every pair state
//! against a direct language-inclusion test on restarted DFAs. Together
//! with Prop. 3 (no deterministic IDA can decide earlier than one whose
//! `IA`/`IR` are maximal), this pins the optimality claim: our sets are the
//! maximal sound ones.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast_automata::{language_subset, Dfa, ProductIda, StateId};
use schemacast_regex::{parse_regex, Alphabet};
use schemacast_workload::strings::random_regex;

fn compile(text: &str, ab: &mut Alphabet) -> Dfa {
    let r = parse_regex(text, ab).expect("parse");
    Dfa::from_regex(&r, ab.len()).expect("compile")
}

/// `IA` equals Definition 7 exactly (both inclusions), on hand-picked pairs.
#[test]
fn ia_matches_definition7_on_figure1() {
    let mut ab = Alphabet::new();
    let a = compile("(shipTo, billTo?, items)", &mut ab);
    let b = compile("(shipTo, billTo, items)", &mut ab);
    assert_ia_exact(&a, &b);
}

/// The same equality on random content-model pairs.
#[test]
fn ia_matches_definition7_on_random_pairs() {
    for seed in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ra = random_regex(&mut rng, 3, 2);
        let rb = random_regex(&mut rng, 3, 2);
        let a = Dfa::from_regex(&ra, 3).expect("a");
        let b = Dfa::from_regex(&rb, 3).expect("b");
        assert_ia_exact(&a, &b);
    }
}

fn assert_ia_exact(a: &Dfa, b: &Dfa) {
    let c = ProductIda::new(a, b);
    for qa in 0..a.state_count() as StateId {
        for qb in 0..b.state_count() as StateId {
            let pair = c.product().pair(qa, qb);
            let definition7 = language_subset(&a.with_start(qa), &b.with_start(qb));
            let computed = c.ida().is_ia(pair);
            if definition7 && c.ida().is_ir(pair) {
                // The one sanctioned difference: pairs with L(q_a) ⊆ L(q_b)
                // *because* L(q_a) = ∅ are classified IR (the sets must be
                // disjoint; rejecting is the sound choice — such a state is
                // unreachable under the revalidation precondition).
                assert!(
                    a.with_start(qa).is_empty_language(),
                    "IR∩Def7 pair must have empty source language"
                );
                continue;
            }
            assert_eq!(
                computed, definition7,
                "pair ({qa},{qb}): computed IA = {computed}, Definition 7 = {definition7}"
            );
        }
    }
}

/// `IR` equals "no accepting pair reachable" — i.e. `L(q_a) ∩ L(q_b) = ∅`.
#[test]
fn ir_matches_emptiness_of_intersection() {
    for seed in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let ra = random_regex(&mut rng, 3, 2);
        let rb = random_regex(&mut rng, 3, 2);
        let a = Dfa::from_regex(&ra, 3).expect("a");
        let b = Dfa::from_regex(&rb, 3).expect("b");
        let c = ProductIda::new(&a, &b);
        for qa in 0..a.state_count() as StateId {
            for qb in 0..b.state_count() as StateId {
                let pair = c.product().pair(qa, qb);
                let disjoint =
                    schemacast_automata::languages_disjoint(&a.with_start(qa), &b.with_start(qb));
                assert_eq!(
                    c.ida().is_ir(pair),
                    disjoint,
                    "seed {seed}, pair ({qa},{qb})"
                );
            }
        }
    }
}

/// Prop. 3 on samples: no sound IDA could decide earlier. For every member
/// string of L(a) and every strict prefix shorter than the decision point,
/// there exist two continuations of that prefix in L(a) — one in L(b), one
/// not — so *any* deterministic decision at that prefix would be unsound.
#[test]
fn decisions_are_information_theoretically_earliest() {
    let mut ab = Alphabet::new();
    let a = compile("(x, y?, z) | (y, z)", &mut ab);
    let b = compile("(x, y, z) | (y, z)", &mut ab);
    let c = ProductIda::new(&a, &b);
    let syms: Vec<_> = ab.symbols().collect();

    // Enumerate L(a) up to length 4.
    let mut members = Vec::new();
    let mut frontier = vec![vec![]];
    for _ in 0..4 {
        let mut next = Vec::new();
        for base in &frontier {
            for &s in &syms {
                let mut v: Vec<schemacast_regex::Sym> = base.clone();
                v.push(s);
                next.push(v);
            }
        }
        members.extend(next.iter().filter(|m| a.accepts(m)).cloned());
        frontier = next;
    }
    assert!(!members.is_empty());

    for m in &members {
        let out = c.run(m);
        let decision_point = out.consumed();
        // For every strictly earlier prefix, the answer must still be
        // ambiguous: some a-member continuation is in L(b), some is not.
        for cut in 0..decision_point {
            let prefix = &m[..cut];
            let mut saw_in_b = false;
            let mut saw_not_in_b = false;
            for cont in &members {
                if cont.len() >= prefix.len() && &cont[..prefix.len()] == prefix {
                    if b.accepts(cont) {
                        saw_in_b = true;
                    } else {
                        saw_not_in_b = true;
                    }
                }
            }
            assert!(
                saw_in_b && saw_not_in_b,
                "prefix {prefix:?} of {m:?} was already decidable — IDA decided late at {decision_point}"
            );
        }
    }
}
