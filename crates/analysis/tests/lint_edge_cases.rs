//! Lint × prune edge cases: schemas with non-productive roots and schemas
//! whose one-unambiguity changes under pruning. The linter must report both
//! situations without panicking, and re-linting the pruned schema must show
//! the findings resolved.

use schemacast_analysis::{lint_schema, LintReport};
use schemacast_core::Severity;
use schemacast_regex::Alphabet;
use schemacast_schema::{prune_nonproductive, SchemaBuilder, SimpleType};

fn rule_ids(report: &LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule_id).collect()
}

#[test]
fn non_productive_root_type_lints_and_prunes() {
    // The root's type requires itself forever: no finite document exists.
    let mut ab = Alphabet::new();
    let mut b = SchemaBuilder::new(&mut ab);
    let bad = b.declare("BadLoop").unwrap();
    b.complex(bad, "(x)", &[("x", bad)]).unwrap();
    b.root("r", bad);
    let schema = b.finish().unwrap();

    let report = lint_schema(&schema, &ab, Some("bad.xsd"), None);
    let ids = rule_ids(&report);
    assert!(ids.contains(&"SC0101"), "non-productive type: {ids:?}");
    assert!(ids.contains(&"SC0105"), "unsatisfiable root: {ids:?}");
    assert!(report.fails(Severity::Error));

    // Pruning the same schema must not panic, and the pruned schema (which
    // drops the type and its root declaration) lints clean.
    let pruned = prune_nonproductive(&schema, &ab);
    assert!(pruned.assert_productive(&ab).is_ok());
    let after = lint_schema(&pruned, &ab, Some("bad.xsd"), None);
    assert!(
        after.diagnostics.is_empty(),
        "pruned schema still lints: {:?}",
        after.diagnostics
    );
}

#[test]
fn pruning_can_restore_one_unambiguity() {
    // `(a, c) | (a, b)` is not one-unambiguous (two competing `a`
    // positions). The `c` branch leads to a non-productive type, so pruning
    // restricts the model to `(a, b)` — which *is* one-unambiguous. The
    // linter must report both the ambiguity and the productivity hole
    // before pruning, and neither afterwards.
    let mut ab = Alphabet::new();
    let mut b = SchemaBuilder::new(&mut ab);
    let text = b.simple("Text", SimpleType::string()).unwrap();
    let dead = b.declare("Dead").unwrap();
    b.complex(dead, "(x)", &[("x", dead)]).unwrap();
    let root = b.declare("Root").unwrap();
    b.complex(
        root,
        "(a, c) | (a, b)",
        &[("a", text), ("b", text), ("c", dead)],
    )
    .unwrap();
    b.root("r", root);
    let schema = b.finish().unwrap();

    let before = lint_schema(&schema, &ab, None, None);
    let ids = rule_ids(&before);
    assert!(ids.contains(&"SC0104"), "UPA violation: {ids:?}");
    assert!(ids.contains(&"SC0101"), "non-productive `Dead`: {ids:?}");

    let pruned = prune_nonproductive(&schema, &ab);
    let after = lint_schema(&pruned, &ab, None, None);
    let ids = rule_ids(&after);
    assert!(
        !ids.contains(&"SC0104") && !ids.contains(&"SC0101"),
        "pruning should resolve both findings: {ids:?}"
    );
    assert!(
        after.diagnostics.is_empty(),
        "pruned schema lints clean: {:?}",
        after.diagnostics
    );
}

#[test]
fn dead_particle_label_is_reported() {
    // `b` is mapped in ρ but the content model never mentions it.
    let mut ab = Alphabet::new();
    let mut b = SchemaBuilder::new(&mut ab);
    let text = b.simple("Text", SimpleType::string()).unwrap();
    let root = b.declare("Root").unwrap();
    b.complex(root, "a*", &[("a", text), ("b", text)]).unwrap();
    b.root("r", root);
    let schema = b.finish().unwrap();

    let report = lint_schema(&schema, &ab, None, None);
    let ids = rule_ids(&report);
    assert!(ids.contains(&"SC0103"), "dead label: {ids:?}");
    // A warning alone passes --fail-on error but fails --fail-on warn.
    assert!(!report.fails(Severity::Error));
    assert!(report.fails(Severity::Warning));
}
