//! Soundness of the static update-safety verdicts, checked against dynamic
//! revalidation on randomly generated (schema pair, document, edit script)
//! triples:
//!
//! * a `Safe` verdict must imply the edited document revalidates OK,
//! * an `Unsafe` verdict must imply it fails,
//! * the engine's static fast path must be verdict-identical to the
//!   dynamic Δ-revalidation path on whole batches.
//!
//! Any disagreement is a test failure — `Dynamic` and `Inapplicable` are
//! the only verdicts allowed to defer to runtime data.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast_core::{CastContext, Verdict};
use schemacast_engine::BatchEngine;
use schemacast_regex::Alphabet;
use schemacast_schema::AbstractSchema;
use schemacast_tree::{DeltaDoc, Doc, Edit, NodeId};
use schemacast_workload::synth::{random_schema, sample_document, SynthConfig, SynthSchema};

/// Builds (source, evolved target, alphabet, source-valid doc) from seeds.
fn scenario(
    schema_seed: u64,
    evolve_steps: usize,
    doc_seed: u64,
) -> Option<(AbstractSchema, AbstractSchema, Alphabet, Doc)> {
    let mut rng = SmallRng::seed_from_u64(schema_seed);
    let mut synth = random_schema(&SynthConfig::default(), &mut rng);
    let original: SynthSchema = synth.clone();
    for _ in 0..evolve_steps {
        synth.evolve(&mut rng);
    }
    let mut ab = Alphabet::new();
    let source = original.build(&mut ab);
    let target = synth.build(&mut ab);
    let mut doc_rng = SmallRng::seed_from_u64(doc_seed);
    let doc = sample_document(&source, &mut ab, &mut doc_rng, 5)?;
    Some((source, target, ab, doc))
}

/// One random structural edit against the *original* document (not
/// applied): insert / delete-leaf / relabel with labels drawn from the
/// shared alphabet. May produce edits the analyzer refuses or that fail to
/// apply — both paths must handle them identically.
fn random_edit(doc: &Doc, ab: &Alphabet, rng: &mut SmallRng) -> Option<Edit> {
    let nodes: Vec<NodeId> = doc.preorder_iter().collect();
    let node = nodes[rng.gen_range(0..nodes.len())];
    let label = ab.symbols().nth(rng.gen_range(0..ab.len()))?;
    match rng.gen_range(0..3) {
        0 => Some(Edit::InsertElement {
            parent: node,
            position: rng.gen_range(0..=doc.children(node).len()),
            label,
        }),
        1 => Some(Edit::DeleteLeaf { node }),
        _ => Some(Edit::Relabel { node, label }),
    }
}

/// The property tests above are only meaningful if decided verdicts
/// actually occur; this sweep pins that the generators produce both.
#[test]
fn generators_produce_decided_verdicts() {
    let (mut safe, mut unsafe_) = (0usize, 0usize);
    for seed in 0..200u64 {
        let Some((source, target, ab, doc)) = scenario(seed, (seed % 4) as usize, seed * 31) else {
            continue;
        };
        let ctx = CastContext::new(&source, &target, &ab);
        let mut rng = SmallRng::seed_from_u64(seed * 7);
        for _ in 0..8 {
            let Some(edit) = random_edit(&doc, &ab, &mut rng) else {
                continue;
            };
            match ctx.edit_verdict(&doc, &edit) {
                Some(Verdict::Safe) => safe += 1,
                Some(Verdict::Unsafe) => unsafe_ += 1,
                _ => {}
            }
        }
    }
    assert!(
        safe > 0,
        "no Safe verdict across the sweep — tests are vacuous"
    );
    assert!(
        unsafe_ > 0,
        "no Unsafe verdict across the sweep — tests are vacuous"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-edit soundness: `Safe` ⇒ the edited document is target-valid,
    /// `Unsafe` ⇒ it is not, with the materialized edited tree as oracle.
    #[test]
    fn decided_verdicts_never_contradict_dynamic_revalidation(
        schema_seed in 0u64..5000,
        evolve_steps in 0usize..4,
        doc_seed in 0u64..5000,
        edit_seed in 0u64..5000,
    ) {
        let Some((source, target, ab, doc)) = scenario(schema_seed, evolve_steps, doc_seed)
        else { return Ok(()); };
        prop_assert!(source.accepts_document(&doc));
        let ctx = CastContext::new(&source, &target, &ab);
        let mut rng = SmallRng::seed_from_u64(edit_seed);
        for _ in 0..12 {
            let Some(edit) = random_edit(&doc, &ab, &mut rng) else { continue };
            let verdict = ctx.edit_verdict(&doc, &edit);
            if !matches!(verdict, Some(Verdict::Safe) | Some(Verdict::Unsafe)) {
                continue;
            }
            // A decided verdict implies the analyzer vouched for the edit's
            // applicability: applying it must succeed.
            let mut dd = DeltaDoc::new(doc.clone());
            prop_assert!(
                dd.apply(&edit).is_ok(),
                "decided verdict {verdict:?} for inapplicable edit {edit:?}"
            );
            let valid = target.accepts_document(&dd.committed());
            match verdict {
                Some(Verdict::Safe) => prop_assert!(
                    valid,
                    "Safe verdict but dynamic revalidation fails for {edit:?}"
                ),
                Some(Verdict::Unsafe) => prop_assert!(
                    !valid,
                    "Unsafe verdict but dynamic revalidation passes for {edit:?}"
                ),
                _ => unreachable!(),
            }
        }
    }

    /// Whole-script soundness through the engine: the static fast path
    /// must produce the same outcome as the dynamic path and as the
    /// apply-and-fully-revalidate oracle, on random multi-edit scripts.
    #[test]
    fn engine_fast_path_is_verdict_identical_to_dynamic_path(
        schema_seed in 0u64..5000,
        evolve_steps in 0usize..4,
        doc_seed in 0u64..5000,
        edit_seed in 0u64..5000,
        n_edits in 0usize..5,
    ) {
        let Some((source, target, ab, doc)) = scenario(schema_seed, evolve_steps, doc_seed)
        else { return Ok(()); };
        let mut rng = SmallRng::seed_from_u64(edit_seed);
        let edits: Vec<Edit> = (0..n_edits)
            .filter_map(|_| random_edit(&doc, &ab, &mut rng))
            .collect();
        let ctx = CastContext::new(&source, &target, &ab);
        let items = vec![(doc.clone(), edits.clone())];

        let fast = BatchEngine::with_workers(&ctx, 1).validate_edited(&items);
        let slow = BatchEngine::with_workers(&ctx, 1)
            .with_static_fastpath(false)
            .validate_edited(&items);
        prop_assert_eq!(
            &fast.items[0].outcome,
            &slow.items[0].outcome,
            "fast path changed the verdict for {:?}",
            &edits
        );

        let mut dd = DeltaDoc::new(doc);
        if dd.apply_all(&edits).is_ok() {
            let want = target.accepts_document(&dd.committed());
            prop_assert_eq!(
                fast.items[0].outcome.is_valid(),
                want,
                "engine disagrees with apply-and-revalidate for {:?}",
                &edits
            );
        }
    }
}
