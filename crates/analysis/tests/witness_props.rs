//! Property sweep for the pair-lint witness guarantee: on random schema
//! evolutions, every witness the linter attaches must round-trip — parse
//! back from its serialized XML, validate under the source schema, and be
//! rejected by the target schema. An anti-vacuity assertion makes sure the
//! sweep actually exercises the witness synthesizer.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use schemacast_analysis::lint_pair;
use schemacast_core::CastContext;
use schemacast_regex::Alphabet;
use schemacast_tree::{Doc, WhitespaceMode};
use schemacast_workload::synth::{random_schema, SynthConfig};
use schemacast_xml::parse_document;

#[test]
fn every_pair_lint_witness_round_trips() {
    let mut total_witnesses = 0usize;
    let mut total_findings = 0usize;
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0DE + seed);
        let original = random_schema(&SynthConfig::default(), &mut rng);
        let mut evolved = original.clone();
        let steps = 1 + (seed % 3);
        for _ in 0..steps {
            evolved.evolve(&mut rng);
        }

        let mut alphabet = Alphabet::new();
        let source = original.build(&mut alphabet);
        let target = evolved.build(&mut alphabet);
        let ctx = CastContext::new(&source, &target, &alphabet);
        let report = lint_pair(&ctx, &alphabet, None);
        total_findings += report.diagnostics.len();

        for d in &report.diagnostics {
            let Some(w) = &d.witness else { continue };
            total_witnesses += 1;
            let xml = parse_document(w)
                .unwrap_or_else(|e| panic!("seed {seed}: witness does not parse ({e:?}): {w}"));
            let doc = Doc::from_xml(&xml.root, &mut alphabet, WhitespaceMode::Trim);
            assert!(
                source.accepts_document(&doc),
                "seed {seed}: witness not valid under the source schema: {w}"
            );
            assert!(
                !target.accepts_document(&doc),
                "seed {seed}: witness accepted by the target schema: {w}"
            );
        }
    }
    // Anti-vacuity: the sweep must have synthesized at least one witness,
    // otherwise the round-trip loop above proved nothing.
    assert!(
        total_witnesses >= 1,
        "no witnesses across the sweep ({total_findings} findings)"
    );
}

#[test]
fn identical_random_schemas_lint_clean() {
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(0xBEEF + seed);
        let synth = random_schema(&SynthConfig::default(), &mut rng);
        let mut alphabet = Alphabet::new();
        let source = synth.build(&mut alphabet);
        let target = synth.build(&mut alphabet);
        let ctx = CastContext::new(&source, &target, &alphabet);
        let report = lint_pair(&ctx, &alphabet, None);
        assert!(
            report.diagnostics.is_empty(),
            "seed {seed}: identical schemas must not lint: {:?}",
            report.diagnostics
        );
    }
}
