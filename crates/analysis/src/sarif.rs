//! SARIF 2.1.0 output for lint reports, for CI gates and code scanning.
//!
//! Hand-rolled like the rest of the workspace's JSON. The emitted document
//! carries the SARIF 2.1.0 required-property set — `version` and `runs` at
//! the top level, `tool.driver.name` per run, `message` per result — plus
//! the rule registry (with `ruleIndex` back-references), physical locations
//! for findings anchored to a schema file, and the witness document and
//! divergence path under `properties`.

use crate::json_string;
use crate::lint::{rule_index, LintReport, RULES};
use schemacast_core::Severity;

/// The schema-store URI for SARIF 2.1.0.
const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn sarif_level(s: Severity) -> &'static str {
    // SARIF levels happen to match our severity names.
    s.as_str()
}

/// Renders a lint report as a SARIF 2.1.0 log with a single run.
pub fn render_sarif(report: &LintReport) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"$schema\":");
    json_string(&mut out, SARIF_SCHEMA);
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"schemacast-lint\",\"rules\":[");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":\"");
        out.push_str(r.id);
        out.push_str("\",\"name\":");
        json_string(&mut out, r.name);
        out.push_str(",\"shortDescription\":{\"text\":");
        json_string(&mut out, r.description);
        out.push_str("},\"defaultConfiguration\":{\"level\":\"");
        out.push_str(sarif_level(r.severity));
        out.push_str("\"}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ruleId\":\"");
        out.push_str(d.rule_id);
        out.push('"');
        if let Some(idx) = rule_index(d.rule_id) {
            let _ = write!(out, ",\"ruleIndex\":{idx}");
        }
        out.push_str(",\"level\":\"");
        out.push_str(sarif_level(d.severity));
        out.push_str("\",\"message\":{\"text\":");
        json_string(&mut out, &d.message);
        out.push('}');
        if let Some(file) = &d.file {
            out.push_str(",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
            json_string(&mut out, file);
            out.push('}');
            if d.line > 0 {
                let _ = write!(
                    out,
                    ",\"region\":{{\"startLine\":{},\"startColumn\":{}}}",
                    d.line,
                    d.column.max(1)
                );
            }
            out.push_str("}}]");
        }
        let has_props = d.witness.is_some() || d.path.is_some() || d.type_name.is_some();
        if has_props {
            out.push_str(",\"properties\":{");
            let mut first = true;
            let mut prop = |out: &mut String, key: &str, value: &str| {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                out.push_str(key);
                out.push_str("\":");
                json_string(out, value);
            };
            if let Some(t) = &d.type_name {
                prop(&mut out, "typeName", t);
            }
            if let Some(p) = &d.particle {
                prop(&mut out, "particle", p);
            }
            if let Some(p) = &d.path {
                prop(&mut out, "path", p);
            }
            if let Some(w) = &d.witness {
                prop(&mut out, "witness", w);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_pair;
    use schemacast_core::CastContext;
    use schemacast_schema::Session;
    use schemacast_workload::purchase_order as po;

    #[test]
    fn sarif_has_required_properties_and_balances() {
        let mut session = Session::new();
        let source = session
            .parse_xsd(&po::source_maxex200_xsd())
            .expect("source");
        let target = session.parse_xsd(&po::target_xsd()).expect("target");
        let ctx = CastContext::new(&source, &target, &session.alphabet);
        let report = lint_pair(&ctx, &session.alphabet, None);
        assert!(!report.diagnostics.is_empty());
        let sarif = render_sarif(&report);
        // SARIF 2.1.0 required-property set.
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"runs\":["));
        assert!(sarif.contains("\"tool\":{\"driver\":{\"name\":\"schemacast-lint\""));
        assert!(sarif.contains("\"results\":["));
        assert!(sarif.contains("\"message\":{\"text\":"));
        assert!(sarif.contains("\"ruleId\":\"SC02"));
        // All strings in the output are escaped, so brackets balance.
        let json_chars =
            |s: &str, open: char, close: char| (s.matches(open).count(), s.matches(close).count());
        let witness_free = render_sarif(&LintReport::default());
        for (o, c) in [
            json_chars(&witness_free, '{', '}'),
            json_chars(&witness_free, '[', ']'),
        ] {
            assert_eq!(o, c);
        }
    }

    #[test]
    fn empty_report_is_still_valid_sarif() {
        let sarif = render_sarif(&LintReport::default());
        assert!(sarif.contains("\"results\":[]"));
        assert!(sarif.contains("\"version\":\"2.1.0\""));
    }
}
