//! Report rendering for the certifying-analysis layer
//! (`schemacast certify` and the `--certify` flags).
//!
//! The certification itself lives in `schemacast-core`
//! ([`schemacast_core::certify::certify_context`]); this module turns a
//! [`CertificationRun`] into the human-readable summary and the `--json`
//! machine form, following the same hand-rolled-serializer discipline as
//! the analyze/lint renderers.

use crate::json_string;
use schemacast_core::certify::CertificationRun;
use std::fmt::Write;

/// Renders a certification run as a human-readable summary: per-kind
/// certificate counts, the checker verdict, and any `SC04xx` diagnostics.
pub fn render_certify_text(run: &CertificationRun) -> String {
    let b = &run.bundle;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "certificates: {} emitted, {} objects checked in {} us",
        run.certs_emitted, run.certs_checked, run.check_micros
    );
    let _ = writeln!(
        out,
        "  {} dfa table(s), {} sub, {} dis, {} nondis, {} ida, {} path, {} safety",
        b.dfas.len(),
        b.subs.len(),
        b.diss.len(),
        b.nondis.len(),
        b.idas.len(),
        b.paths.len(),
        b.safety.len()
    );
    if run.all_certified() {
        let _ = writeln!(out, "verdict: all claims certified");
    } else {
        let _ = writeln!(
            out,
            "verdict: NOT certified ({} failure(s))",
            run.diagnostics.len()
        );
        for d in &run.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
    }
    out
}

/// Renders a certification run as JSON (stable key order, no external
/// serializer).
pub fn render_certify_json(run: &CertificationRun) -> String {
    let b = &run.bundle;
    let mut out = String::from("{\"certified\":");
    out.push_str(if run.all_certified() { "true" } else { "false" });
    let _ = write!(
        out,
        ",\"emitted\":{},\"checked\":{},\"check_micros\":{}",
        run.certs_emitted, run.certs_checked, run.check_micros
    );
    let _ = write!(
        out,
        ",\"counts\":{{\"dfas\":{},\"subs\":{},\"diss\":{},\"nondis\":{},\
         \"idas\":{},\"paths\":{},\"safety\":{}}}",
        b.dfas.len(),
        b.subs.len(),
        b.diss.len(),
        b.nondis.len(),
        b.idas.len(),
        b.paths.len(),
        b.safety.len()
    );
    out.push_str(",\"failures\":[");
    for (i, d) in run.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":\"");
        out.push_str(d.rule_id);
        out.push_str("\",\"message\":");
        json_string(&mut out, &d.message);
        if let Some(t) = &d.type_name {
            out.push_str(",\"type\":");
            json_string(&mut out, t);
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_core::certify::certify_context;
    use schemacast_core::CastContext;
    use schemacast_regex::Alphabet;
    use schemacast_schema::{AbstractSchema, SchemaBuilder, SimpleType};

    fn schema(ab: &mut Alphabet, model: &str) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let root = b.declare("Root").unwrap();
        b.complex(root, model, &[("a", text), ("b", text)]).unwrap();
        b.root("r", root);
        b.finish().unwrap()
    }

    #[test]
    fn renders_certified_run_both_ways() {
        let mut ab = Alphabet::new();
        let source = schema(&mut ab, "(a, b?)");
        let target = schema(&mut ab, "(a, b*)");
        let ctx = CastContext::new(&source, &target, &ab);
        let run = certify_context(&ctx);
        assert!(run.all_certified());

        let text = render_certify_text(&run);
        assert!(text.contains("all claims certified"), "{text}");
        assert!(text.contains("emitted"));

        let json = render_certify_json(&run);
        assert!(json.starts_with("{\"certified\":true"), "{json}");
        assert!(json.contains("\"failures\":[]"));
        assert!(json.contains("\"counts\":{\"dfas\":"));
    }

    #[test]
    fn renders_failures_with_rule_ids() {
        use schemacast_core::{Diagnostic, Severity};
        let mut ab = Alphabet::new();
        let source = schema(&mut ab, "(a, b?)");
        let target = schema(&mut ab, "(a, b*)");
        let ctx = CastContext::new(&source, &target, &ab);
        let mut run = certify_context(&ctx);
        run.diagnostics.push(
            Diagnostic::new("SC0402", Severity::Error, "injected \"failure\"")
                .with_type_name("Root"),
        );

        let text = render_certify_text(&run);
        assert!(text.contains("NOT certified"), "{text}");
        assert!(text.contains("SC0402"));

        let json = render_certify_json(&run);
        assert!(json.starts_with("{\"certified\":false"), "{json}");
        assert!(json.contains("\"rule\":\"SC0402\""));
        assert!(json.contains("injected \\\"failure\\\""));
        assert!(json.contains("\"type\":\"Root\""));
    }
}
