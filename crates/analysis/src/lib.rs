#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Static update-safety reporting over a preprocessed schema pair.
//!
//! The analysis itself lives in `schemacast-core`
//! ([`CastContext::safety_matrix`]): per reachable complex type pair, a
//! Safe / Unsafe / Dynamic verdict for every (edit kind, label)
//! combination, derived from the product IDAs. This crate turns that
//! matrix into reports:
//!
//! * [`analyze`] — resolve type and label names and fold in a per-type
//!   schema diff (which same-named types are subsumption-stable, which
//!   changed, which are disjoint, which exist on one side only).
//! * [`render_text`] — the human-readable table behind
//!   `schemacast analyze S.xsd Sprime.xsd`.
//! * [`render_json`] — the machine-readable form behind `--json`
//!   (hand-rolled serialization; the workspace takes no external
//!   dependencies).
//!
//! The [`lint`] module adds the `schemacast lint` subsystem — single-schema
//! hygiene diagnostics and schema-pair incompatibility findings with
//! minimal witness documents — and [`sarif`] renders its reports as SARIF
//! 2.1.0 for CI gates. The [`certify`] module renders certification runs
//! (`schemacast certify`, `--certify`) produced by
//! [`schemacast_core::certify::certify_context`]. The [`chain`] module
//! reports on schema-evolution chains (`schemacast chain`): composition
//! coverage and the `SC05xx` finding family. The [`script`] module reports
//! on whole edit scripts (`schemacast analyze --script`): edit-script
//! parsing, the script-level verdict from
//! [`CastContext::script_analysis`], and the `SC06xx` finding family.

pub mod certify;
pub mod chain;
pub mod lint;
pub mod sarif;
pub mod script;

pub use certify::{render_certify_json, render_certify_text};
pub use chain::{analyze_chain, render_chain_json, render_chain_text, ChainAnalysisReport};
pub use lint::{
    lint_pair, lint_schema, render_lint_json, render_lint_text, rule, rule_index, LintReport, Rule,
    RULES,
};
pub use sarif::render_sarif;
pub use script::{
    analyze_script, parse_script, render_script_json, render_script_text, ScriptAnalysisReport,
    ScriptOutcome,
};

use schemacast_core::{CastContext, Verdict};
use schemacast_regex::Alphabet;
use schemacast_tree::EditShapeKind;

/// How a source type relates to the same-named target type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeRelation {
    /// The pair is in `R_sub`: every source-valid subtree stays valid, the
    /// validator skips it, and no edit analysis is needed to *keep* it.
    SubsumptionStable,
    /// The pair is in `R_dis`: no subtree valid for one is valid for the
    /// other.
    Disjoint,
    /// Neither subsumed nor disjoint: membership must be (re)checked.
    Changed,
    /// The type name exists only in the source schema.
    Removed,
    /// The type name exists only in the target schema.
    Added,
}

impl TypeRelation {
    /// Lower-case machine name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            TypeRelation::SubsumptionStable => "stable",
            TypeRelation::Disjoint => "disjoint",
            TypeRelation::Changed => "changed",
            TypeRelation::Removed => "removed",
            TypeRelation::Added => "added",
        }
    }
}

/// One line of the per-type diff summary.
#[derive(Debug, Clone)]
pub struct TypeDiff {
    /// The type name (shared namespace across both schemas).
    pub name: String,
    /// How the source and target types of that name relate.
    pub relation: TypeRelation,
}

/// Insert/delete verdicts for one label under one type pair.
#[derive(Debug, Clone)]
pub struct LabelRow {
    /// The child label.
    pub label: String,
    /// Verdict for inserting a fresh `label` leaf.
    pub insert: Verdict,
    /// Verdict for deleting a `label` child (leaf).
    pub delete: Verdict,
}

/// A relabel verdict for one (from, to) label pair under one type pair.
#[derive(Debug, Clone)]
pub struct RelabelRow {
    /// The pre-edit label.
    pub from: String,
    /// The post-edit label.
    pub to: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// The safety analysis of one (source type, target type) pair, with names
/// resolved.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// Source type name.
    pub source_type: String,
    /// Target type name.
    pub target_type: String,
    /// Whether untouched sibling subtrees are guaranteed to stay valid
    /// (the condition Safe verdicts are gated on).
    pub child_sub_stable: bool,
    /// Per-label insert/delete verdicts, in label order.
    pub labels: Vec<LabelRow>,
    /// Relabel verdicts for distinct label pairs, excluding
    /// [`Verdict::Inapplicable`] ones (a relabel whose `from` never occurs
    /// carries no information).
    pub relabels: Vec<RelabelRow>,
}

/// The full analyzer output: safety matrix plus schema diff.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// One entry per analyzable type pair, in type-index order.
    pub pairs: Vec<PairReport>,
    /// Per-type-name diff lines, in source then target declaration order.
    pub types: Vec<TypeDiff>,
}

impl AnalysisReport {
    /// Counts of diff lines per relation, in the order
    /// (stable, changed, disjoint, removed, added).
    pub fn diff_counts(&self) -> [usize; 5] {
        let mut counts = [0usize; 5];
        for d in &self.types {
            let i = match d.relation {
                TypeRelation::SubsumptionStable => 0,
                TypeRelation::Changed => 1,
                TypeRelation::Disjoint => 2,
                TypeRelation::Removed => 3,
                TypeRelation::Added => 4,
            };
            counts[i] += 1;
        }
        counts
    }

    /// Whether the evolution is fully subsumption-stable: no type changed
    /// incompatibly, went disjoint, or was removed. The `schemacast
    /// analyze` exit-code gate (exit 1 when unstable).
    pub fn is_stable(&self) -> bool {
        let [_, changed, disjoint, removed, _] = self.diff_counts();
        changed + disjoint + removed == 0
    }

    /// Total (safe, unsafe, dynamic) verdict counts across all pairs
    /// (insert + delete + reported relabels).
    pub fn verdict_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        let mut bump = |v: Verdict| match v {
            Verdict::Safe => counts[0] += 1,
            Verdict::Unsafe => counts[1] += 1,
            Verdict::Dynamic => counts[2] += 1,
            Verdict::Inapplicable => {}
        };
        for p in &self.pairs {
            for row in &p.labels {
                bump(row.insert);
                bump(row.delete);
            }
            for r in &p.relabels {
                bump(r.verdict);
            }
        }
        counts
    }
}

/// Computes the full report for a preprocessed schema pair: the safety
/// matrix of every analyzable type pair, plus the per-type diff summary.
pub fn analyze(ctx: &CastContext<'_>, alphabet: &Alphabet) -> AnalysisReport {
    let matrix = ctx.safety_matrix();
    let mut pairs = Vec::with_capacity(matrix.len());
    for entry in matrix.entries() {
        let safety = &entry.safety;
        let mut labels = Vec::with_capacity(safety.labels().len());
        let mut relabels = Vec::new();
        for &l in safety.labels() {
            labels.push(LabelRow {
                label: alphabet.name(l).to_owned(),
                insert: safety.verdict(EditShapeKind::Insert(l)),
                delete: safety.verdict(EditShapeKind::Delete(l)),
            });
            for &m in safety.labels() {
                if l == m {
                    continue;
                }
                let verdict = safety.verdict(EditShapeKind::Relabel { from: l, to: m });
                if verdict != Verdict::Inapplicable {
                    relabels.push(RelabelRow {
                        from: alphabet.name(l).to_owned(),
                        to: alphabet.name(m).to_owned(),
                        verdict,
                    });
                }
            }
        }
        pairs.push(PairReport {
            source_type: ctx.source().type_name(entry.source).to_owned(),
            target_type: ctx.target().type_name(entry.target).to_owned(),
            child_sub_stable: safety.child_sub_stable(),
            labels,
            relabels,
        });
    }

    let mut types = Vec::new();
    for s_id in ctx.source().type_ids() {
        let name = ctx.source().type_name(s_id);
        let relation = match ctx.target().type_by_name(name) {
            Some(t_id) => {
                if ctx.relations().subsumed(s_id, t_id) {
                    TypeRelation::SubsumptionStable
                } else if ctx.relations().disjoint(s_id, t_id) {
                    TypeRelation::Disjoint
                } else {
                    TypeRelation::Changed
                }
            }
            None => TypeRelation::Removed,
        };
        types.push(TypeDiff {
            name: name.to_owned(),
            relation,
        });
    }
    for t_id in ctx.target().type_ids() {
        let name = ctx.target().type_name(t_id);
        if ctx.source().type_by_name(name).is_none() {
            types.push(TypeDiff {
                name: name.to_owned(),
                relation: TypeRelation::Added,
            });
        }
    }

    AnalysisReport { pairs, types }
}

/// Renders the report as the human-readable `schemacast analyze` output.
pub fn render_text(report: &AnalysisReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let [stable, changed, disjoint, removed, added] = report.diff_counts();
    let _ = writeln!(
        out,
        "type diff: {stable} stable / {changed} changed / {disjoint} disjoint / \
         {removed} removed / {added} added"
    );
    for d in &report.types {
        if d.relation != TypeRelation::SubsumptionStable {
            let _ = writeln!(out, "  {:<28} {}", d.name, d.relation.as_str());
        }
    }
    let [safe, unsafe_, dynamic] = report.verdict_counts();
    let _ = writeln!(
        out,
        "\nedit safety: {safe} safe / {unsafe_} unsafe / {dynamic} dynamic \
         across {} type pair(s)",
        report.pairs.len()
    );
    for p in &report.pairs {
        let _ = writeln!(
            out,
            "\n{} -> {}   (siblings {})",
            p.source_type,
            p.target_type,
            if p.child_sub_stable {
                "stable"
            } else {
                "unstable"
            }
        );
        let _ = writeln!(out, "  {:<20} {:<12} {:<12}", "label", "insert", "delete");
        for row in &p.labels {
            let _ = writeln!(
                out,
                "  {:<20} {:<12} {:<12}",
                row.label,
                row.insert.as_str(),
                row.delete.as_str()
            );
        }
        for r in &p.relabels {
            let _ = writeln!(
                out,
                "  relabel {} -> {}: {}",
                r.from,
                r.to,
                r.verdict.as_str()
            );
        }
    }
    out
}

/// Renders the report as JSON (stable key order, no external serializer).
pub fn render_json(report: &AnalysisReport) -> String {
    let mut out = String::from("{\"types\":[");
    for (i, d) in report.types.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_string(&mut out, &d.name);
        out.push_str(",\"relation\":\"");
        out.push_str(d.relation.as_str());
        out.push_str("\"}");
    }
    out.push_str("],\"pairs\":[");
    for (i, p) in report.pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"source\":");
        json_string(&mut out, &p.source_type);
        out.push_str(",\"target\":");
        json_string(&mut out, &p.target_type);
        out.push_str(",\"child_sub_stable\":");
        out.push_str(if p.child_sub_stable { "true" } else { "false" });
        out.push_str(",\"labels\":[");
        for (j, row) in p.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            json_string(&mut out, &row.label);
            out.push_str(",\"insert\":\"");
            out.push_str(row.insert.as_str());
            out.push_str("\",\"delete\":\"");
            out.push_str(row.delete.as_str());
            out.push_str("\"}");
        }
        out.push_str("],\"relabels\":[");
        for (j, r) in p.relabels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"from\":");
            json_string(&mut out, &r.from);
            out.push_str(",\"to\":");
            json_string(&mut out, &r.to);
            out.push_str(",\"verdict\":\"");
            out.push_str(r.verdict.as_str());
            out.push_str("\"}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Appends `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped).
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::Session;
    use schemacast_workload::purchase_order as po;

    fn po_report() -> (AnalysisReport, usize) {
        let mut session = Session::new();
        let source = session.parse_xsd(&po::source_xsd()).expect("source");
        let target = session.parse_xsd(&po::target_xsd()).expect("target");
        let ctx = CastContext::new(&source, &target, &session.alphabet);
        let report = analyze(&ctx, &session.alphabet);
        let pair_count = ctx.safety_matrix().len();
        (report, pair_count)
    }

    #[test]
    fn report_covers_every_analyzable_pair() {
        let (report, pair_count) = po_report();
        assert_eq!(report.pairs.len(), pair_count);
        assert!(pair_count > 0, "purchase-order pair must be analyzable");
        // billTo optional -> required: the PurchaseOrderType pair changed.
        assert!(report
            .types
            .iter()
            .any(|d| d.relation == TypeRelation::Changed));
    }

    #[test]
    fn text_rendering_mentions_every_pair_and_label() {
        let (report, _) = po_report();
        let text = render_text(&report);
        for p in &report.pairs {
            assert!(text.contains(&p.source_type));
            for row in &p.labels {
                assert!(text.contains(&row.label));
            }
        }
        assert!(text.contains("type diff:"));
        assert!(text.contains("edit safety:"));
    }

    #[test]
    fn json_rendering_is_structurally_sound() {
        let (report, _) = po_report();
        let json = render_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Balanced brackets (no string in the fixture contains any).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
        assert!(json.contains("\"types\":["));
        assert!(json.contains("\"pairs\":["));
        for v in ["safe", "unsafe", "dynamic"] {
            // Every verdict string that appears must be one of the known
            // names; spot-check that at least one known name appears.
            let _ = v;
        }
        assert!(
            json.contains("\"insert\":\"safe\"")
                || json.contains("\"insert\":\"unsafe\"")
                || json.contains("\"insert\":\"dynamic\"")
        );
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        let mut out = String::new();
        json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
