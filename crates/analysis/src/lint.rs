//! Schema and schema-pair lint: incompatibility diagnostics with witnesses.
//!
//! Two entry points, both producing [`Diagnostic`]s from the shared
//! `schemacast-core` model:
//!
//! * [`lint_schema`] — single-schema hygiene: non-productive types
//!   (`SC0101`), unreachable types (`SC0102`), dead ρ labels (`SC0103`),
//!   one-unambiguity violations surfaced from `schemacast_regex::glushkov`
//!   (`SC0104`), and unsatisfiable roots (`SC0105`).
//! * [`lint_pair`] — evolution compatibility: for every reachable type pair
//!   that is neither subsumed nor disjoint, a `SC0201` diagnostic carrying
//!   a **minimal witness document** (valid under the source schema, invalid
//!   under the target — synthesized by `schemacast_core::WitnessSynth` and
//!   re-checked against both schemas before it is attached), plus `SC0202`
//!   for disjoint pairs and `SC0203` for removed roots.
//!
//! Diagnostics anchor to schema files via [`SchemaSpans`] when the caller
//! provides them. Output layers: [`render_lint_text`], [`render_lint_json`],
//! and SARIF 2.1.0 in [`crate::sarif`].

use crate::json_string;
use schemacast_core::{
    reachable_pairs_with_paths, CastContext, Diagnostic, DivergenceKind, Severity, WitnessSynth,
};
use schemacast_regex::Alphabet;
use schemacast_schema::{AbstractSchema, SchemaSpans, TypeDef, TypeId};
use std::collections::HashSet;

/// One entry of the lint rule registry.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id (`SC01xx` schema, `SC02xx` pair, `SC03xx` document,
    /// `SC04xx` certification, `SC05xx` chain).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description (shown in SARIF rule metadata).
    pub description: &'static str,
    /// Default severity.
    pub severity: Severity,
}

/// The full rule registry, in id order. SARIF `ruleIndex` values index
/// into this slice.
pub const RULES: &[Rule] = &[
    Rule {
        id: "SC0101",
        name: "non-productive-type",
        description: "The type admits no finite document: its content model only terminates through types that never do.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0102",
        name: "unreachable-type",
        description: "The type is declared but not reachable from any root declaration.",
        severity: Severity::Warning,
    },
    Rule {
        id: "SC0103",
        name: "dead-particle-label",
        description: "The label is mapped to a child type but never occurs in any accepted children sequence.",
        severity: Severity::Warning,
    },
    Rule {
        id: "SC0104",
        name: "ambiguous-content-model",
        description: "The content model is not one-unambiguous (violates the XSD Unique Particle Attribution constraint).",
        severity: Severity::Warning,
    },
    Rule {
        id: "SC0105",
        name: "unsatisfiable-root",
        description: "The root element's type is non-productive: no valid document with this root exists.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0201",
        name: "incompatible-type-pair",
        description: "A reachable type pair is neither subsumed nor disjoint: some source-valid documents become invalid.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0202",
        name: "disjoint-type-pair",
        description: "A reachable type pair is disjoint: every source-valid element at this position is invalid in the target.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0203",
        name: "root-removed",
        description: "A source root element is not declared in the target schema.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0301",
        name: "root-not-allowed",
        description: "The document root element is not declared in the target schema.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0302",
        name: "content-model-violation",
        description: "The element's children do not match the target content model.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0303",
        name: "disjoint-types",
        description: "The element's source and target types are disjoint.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0304",
        name: "invalid-value",
        description: "A simple value violates the target simple type's facets.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0305",
        name: "text-in-element-content",
        description: "Character data appears inside element-only content.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0306",
        name: "not-simple-content",
        description: "Simple (text-only) content was expected.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0401",
        name: "certificate-emission-failed",
        description: "A static claim could not be packaged as a certificate.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0402",
        name: "certificate-rejected",
        description: "The independent checker rejected an emitted certificate.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0403",
        name: "composition-certificate-rejected",
        description: "A chain composition certificate could not be emitted or was rejected by the independent checker.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0501",
        name: "chain-incompatible-type-pair",
        description: "A reachable (v1, vN) type pair is neither subsumed nor disjoint across the evolution chain: some v1-valid documents break consumers of vN.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0502",
        name: "chain-disjoint-type-pair",
        description: "A reachable (v1, vN) type pair is disjoint across the evolution chain: every v1-valid element at this position is invalid for consumers of vN.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0503",
        name: "chain-root-removed",
        description: "A v1 root element disappears at some hop of the evolution chain.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0504",
        name: "composition-fallback",
        description: "The hop relations do not compose for this pair; the chain verdict rests on the composed-pair product construction.",
        severity: Severity::Note,
    },
    Rule {
        id: "SC0601",
        name: "script-statically-rejected",
        description: "The whole-script analyzer proved the edited document can never be target-valid: some site's net child word or child typing is irreparable.",
        severity: Severity::Error,
    },
    Rule {
        id: "SC0602",
        name: "script-decided-by-normalization",
        description: "The script was statically decided only after edit-effect composition and normalization; the per-edit analyzer alone could not decide it.",
        severity: Severity::Note,
    },
    Rule {
        id: "SC0603",
        name: "script-normalization-fallback",
        description: "The whole-script analyzer could not decide the script (unsupported edit shape or undecided site); validation falls back to dynamic delta-revalidation.",
        severity: Severity::Warning,
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// The index of a rule id within [`RULES`] (the SARIF `ruleIndex`).
pub fn rule_index(id: &str) -> Option<usize> {
    RULES.iter().position(|r| r.id == id)
}

/// A lint run's findings.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All diagnostics, in deterministic rule/type order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `(errors, warnings, notes)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any finding is at or above `threshold` — the `--fail-on`
    /// exit-code gate.
    pub fn fails(&self, threshold: Severity) -> bool {
        self.max_severity().is_some_and(|s| s >= threshold)
    }

    /// Merges another report's findings into this one.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }
}

fn anchored(
    d: Diagnostic,
    file: Option<&str>,
    spans: Option<&SchemaSpans>,
    type_name: &str,
    particle: Option<&str>,
) -> Diagnostic {
    let d = match file {
        Some(f) => d.with_file(f),
        None => d,
    };
    match spans.and_then(|s| s.anchor(type_name, particle)) {
        Some((line, col)) => d.with_position(line, col),
        None => d,
    }
}

/// Lints a single schema: productivity, reachability, dead labels, UPA.
///
/// Non-productive schemas are accepted here by design —
/// `SchemaBuilder::finish` does not enforce productivity, and surfacing it
/// is exactly this function's job.
pub fn lint_schema(
    schema: &AbstractSchema,
    alphabet: &Alphabet,
    file: Option<&str>,
    spans: Option<&SchemaSpans>,
) -> LintReport {
    let mut diagnostics = Vec::new();
    let productive = schema.productive(alphabet);

    // Reachability from the roots through the ρ maps.
    let mut reachable: HashSet<TypeId> = HashSet::new();
    let mut stack: Vec<TypeId> = schema.roots().map(|(_, t)| t).collect();
    while let Some(t) = stack.pop() {
        if !reachable.insert(t) {
            continue;
        }
        if let TypeDef::Complex(c) = schema.type_def(t) {
            stack.extend(c.child_types.values().copied());
        }
    }

    for t in schema.type_ids() {
        let name = schema.type_name(t);
        if !productive[t.index()] {
            diagnostics.push(anchored(
                Diagnostic::new(
                    "SC0101",
                    Severity::Error,
                    format!("type `{name}` is non-productive: it admits no finite document"),
                )
                .with_type_name(name),
                file,
                spans,
                name,
                None,
            ));
        }
        if !reachable.contains(&t) {
            diagnostics.push(anchored(
                Diagnostic::new(
                    "SC0102",
                    Severity::Warning,
                    format!("type `{name}` is declared but unreachable from any root"),
                )
                .with_type_name(name),
                file,
                spans,
                name,
                None,
            ));
        }
        let TypeDef::Complex(c) = schema.type_def(t) else {
            continue;
        };
        let useful = c.dfa.useful_symbols();
        let mut labels: Vec<_> = c.child_types.keys().copied().collect();
        labels.sort_by_key(|l| l.index());
        for label in labels {
            if !useful.contains(label.index()) {
                let lname = alphabet.name(label);
                diagnostics.push(anchored(
                    Diagnostic::new(
                        "SC0103",
                        Severity::Warning,
                        format!(
                            "label `{lname}` is mapped in type `{name}` but never occurs \
                             in an accepted children sequence"
                        ),
                    )
                    .with_type_name(name)
                    .with_particle(lname),
                    file,
                    spans,
                    name,
                    Some(lname),
                ));
            }
        }
        if !c.deterministic {
            diagnostics.push(anchored(
                Diagnostic::new(
                    "SC0104",
                    Severity::Warning,
                    format!(
                        "content model of type `{name}` is not one-unambiguous \
                         (unique particle attribution violation)"
                    ),
                )
                .with_type_name(name),
                file,
                spans,
                name,
                None,
            ));
        }
    }

    let mut roots: Vec<_> = schema.roots().collect();
    roots.sort_by_key(|&(label, _)| label.index());
    for (label, t) in roots {
        if !productive[t.index()] {
            let lname = alphabet.name(label);
            let name = schema.type_name(t);
            diagnostics.push(anchored(
                Diagnostic::new(
                    "SC0105",
                    Severity::Error,
                    format!(
                        "root element `{lname}` has non-productive type `{name}`: \
                         no valid document with this root exists"
                    ),
                )
                .with_type_name(name)
                .with_particle(lname),
                file,
                spans,
                name,
                Some(lname),
            ));
        }
    }

    LintReport { diagnostics }
}

/// File name and spans of one side of a pair lint.
pub type FileInfo<'a> = (&'a str, &'a SchemaSpans);

/// Lints a schema evolution: every reachable type pair that is not
/// subsumed becomes a diagnostic, incompatible pairs with a synthesized,
/// re-validated minimal witness document. Diagnostics anchor into the
/// *target* schema file (the side whose change broke compatibility).
pub fn lint_pair(
    ctx: &CastContext<'_>,
    alphabet: &Alphabet,
    target_info: Option<FileInfo<'_>>,
) -> LintReport {
    let mut diagnostics = Vec::new();
    let (file, spans) = match target_info {
        Some((f, s)) => (Some(f), Some(s)),
        None => (None, None),
    };

    let mut removed: Vec<_> = ctx
        .source()
        .roots()
        .filter(|&(label, _)| ctx.target().root_type(label).is_none())
        .collect();
    removed.sort_by_key(|&(label, _)| label.index());
    for (label, t) in removed {
        let lname = alphabet.name(label);
        diagnostics.push(
            match file {
                Some(f) => Diagnostic::new(
                    "SC0203",
                    Severity::Error,
                    format!("root element `{lname}` is not declared in the target schema"),
                )
                .with_file(f),
                None => Diagnostic::new(
                    "SC0203",
                    Severity::Error,
                    format!("root element `{lname}` is not declared in the target schema"),
                ),
            }
            .with_type_name(ctx.source().type_name(t))
            .with_particle(lname),
        );
    }

    let synth = WitnessSynth::new(ctx, alphabet);
    for pair in reachable_pairs_with_paths(ctx) {
        let s_name = ctx.source().type_name(pair.source);
        let t_name = ctx.target().type_name(pair.target);
        let via: Vec<&str> = pair.via.iter().map(|&l| alphabet.name(l)).collect();
        let at = format!("/{}", via.join("/"));
        let witness = synth.witness(&pair).filter(|w| {
            // Never attach an unchecked witness: it must round-trip.
            ctx.source().accepts_document(&w.doc) && !ctx.target().accepts_document(&w.doc)
        });

        let disjoint = ctx.relations().disjoint(pair.source, pair.target);
        let mut d = if disjoint {
            Diagnostic::new(
                "SC0202",
                Severity::Error,
                format!(
                    "source type `{s_name}` and target type `{t_name}` (reached at {at}) \
                     are disjoint: every source-valid element there is invalid in the target"
                ),
            )
        } else {
            let detail = match witness.as_ref().map(|w| w.kind) {
                Some(DivergenceKind::ContentModel { position }) => format!(
                    "the target content model rejects a source-valid children sequence \
                     (diverging at child position {position})"
                ),
                Some(DivergenceKind::Value) => {
                    "the source value space admits values the target facets reject".to_owned()
                }
                Some(DivergenceKind::Structure) => {
                    "simple and element-only content disagree between the schemas".to_owned()
                }
                Some(DivergenceKind::Disjoint) => {
                    "a descendant lands on a disjoint type pair".to_owned()
                }
                None => "some source-valid documents become invalid".to_owned(),
            };
            Diagnostic::new(
                "SC0201",
                Severity::Error,
                format!(
                    "type pair `{s_name}` → `{t_name}` (reached at {at}) is incompatible: \
                     {detail}"
                ),
            )
        };
        d = d.with_type_name(t_name);
        let particle = witness.as_ref().and_then(|w| w.particle.clone());
        if let Some(p) = &particle {
            d = d.with_particle(p.clone());
        }
        if let Some(w) = witness {
            d = d
                .with_path(w.path)
                .with_witness(schemacast_xml::to_string(&w.doc.to_xml(alphabet)));
        }
        diagnostics.push(anchored(d, file, spans, t_name, particle.as_deref()));
    }

    LintReport { diagnostics }
}

/// Renders a lint report as human-readable text (one `file:line:col:
/// severity[rule]: message` line per finding, witnesses indented below).
pub fn render_lint_text(report: &LintReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
        if let Some(w) = &d.witness {
            let _ = writeln!(out, "  witness: {w}");
        }
    }
    let (errors, warnings, notes) = report.counts();
    let _ = writeln!(
        out,
        "{} finding(s): {errors} error(s), {warnings} warning(s), {notes} note(s)",
        report.diagnostics.len()
    );
    out
}

/// Renders a lint report as JSON (stable key order, nulls omitted).
pub fn render_lint_json(report: &LintReport) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":\"");
        out.push_str(d.rule_id);
        out.push_str("\",\"severity\":\"");
        out.push_str(d.severity.as_str());
        out.push_str("\",\"message\":");
        json_string(&mut out, &d.message);
        if let Some(f) = &d.file {
            out.push_str(",\"file\":");
            json_string(&mut out, f);
            if d.line > 0 {
                use std::fmt::Write;
                let _ = write!(out, ",\"line\":{},\"column\":{}", d.line, d.column);
            }
        }
        if let Some(t) = &d.type_name {
            out.push_str(",\"type\":");
            json_string(&mut out, t);
        }
        if let Some(p) = &d.particle {
            out.push_str(",\"particle\":");
            json_string(&mut out, p);
        }
        if let Some(p) = &d.path {
            out.push_str(",\"path\":");
            json_string(&mut out, p);
        }
        if let Some(w) = &d.witness {
            out.push_str(",\"witness\":");
            json_string(&mut out, w);
        }
        out.push('}');
    }
    let (errors, warnings, notes) = report.counts();
    use std::fmt::Write;
    let _ = write!(
        out,
        "],\"summary\":{{\"errors\":{errors},\"warnings\":{warnings},\"notes\":{notes}}}}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::Session;
    use schemacast_workload::purchase_order as po;

    fn po_ctx() -> (
        schemacast_schema::AbstractSchema,
        schemacast_schema::AbstractSchema,
        Session,
    ) {
        let mut session = Session::new();
        let source = session
            .parse_xsd(&po::source_maxex200_xsd())
            .expect("source");
        let target = session.parse_xsd(&po::target_xsd()).expect("target");
        (source, target, session)
    }

    #[test]
    fn pair_lint_finds_witnessed_incompatibilities() {
        let (source, target, session) = po_ctx();
        let ctx = CastContext::new(&source, &target, &session.alphabet);
        let report = lint_pair(&ctx, &session.alphabet, None);
        assert!(!report.diagnostics.is_empty());
        assert!(report.fails(Severity::Error));
        let witnessed: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.witness.is_some())
            .collect();
        assert!(!witnessed.is_empty(), "at least one witness expected");
        for d in &report.diagnostics {
            assert!(d.rule_id.starts_with("SC02"), "{}", d.rule_id);
            assert!(rule(d.rule_id).is_some(), "{} registered", d.rule_id);
        }
    }

    #[test]
    fn clean_pair_lints_clean() {
        let mut session = Session::new();
        let xsd = po::target_xsd();
        let source = session.parse_xsd(&xsd).expect("source");
        let target = session.parse_xsd(&xsd).expect("target");
        let ctx = CastContext::new(&source, &target, &session.alphabet);
        let report = lint_pair(&ctx, &session.alphabet, None);
        assert!(
            report.diagnostics.is_empty(),
            "identical schemas must not lint: {:?}",
            report.diagnostics
        );
        assert!(!report.fails(Severity::Warning));
    }

    #[test]
    fn schema_lint_is_clean_on_the_fixture() {
        let (source, _, session) = po_ctx();
        let report = lint_schema(&source, &session.alphabet, Some("po.xsd"), None);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn renderings_cover_every_diagnostic() {
        let (source, target, session) = po_ctx();
        let ctx = CastContext::new(&source, &target, &session.alphabet);
        let report = lint_pair(&ctx, &session.alphabet, None);
        let text = render_lint_text(&report);
        let json = render_lint_json(&report);
        for d in &report.diagnostics {
            assert!(text.contains(d.rule_id));
            assert!(json.contains(d.rule_id));
        }
        assert!(text.contains("finding(s):"));
        assert!(json.contains("\"summary\":"));
        assert!(json.contains("\"witness\":"));
    }

    #[test]
    fn rule_registry_is_sorted_and_unique() {
        for w in RULES.windows(2) {
            assert!(w[0].id < w[1].id, "{} < {}", w[0].id, w[1].id);
        }
        assert_eq!(rule_index("SC0101"), Some(0));
        assert!(rule("SC9999").is_none());
    }

    /// The registry is the single source of truth for every rule id the
    /// workspace emits (schema hygiene, pair lint, document explain,
    /// certification, chain analysis). Renumbering or dropping an id is a
    /// breaking change for SARIF consumers — this list is append-only.
    #[test]
    fn rule_registry_is_stable() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            [
                "SC0101", "SC0102", "SC0103", "SC0104", "SC0105", "SC0201", "SC0202", "SC0203",
                "SC0301", "SC0302", "SC0303", "SC0304", "SC0305", "SC0306", "SC0401", "SC0402",
                "SC0403", "SC0501", "SC0502", "SC0503", "SC0504", "SC0601", "SC0602", "SC0603",
            ]
        );
        let names: std::collections::HashSet<&str> = RULES.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), RULES.len(), "rule names must be unique too");
    }
}
