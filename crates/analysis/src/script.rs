//! Whole-script static-analysis reporting: the `SC06xx` finding family
//! behind `schemacast analyze --script`.
//!
//! The analysis itself lives in `schemacast-core`
//! ([`CastContext::script_analysis`]): group an edit script by touched
//! site, compose each site's edits into one net effect, normalize, and
//! decide the script over the concrete child words. This module turns the
//! result into a report:
//!
//! * [`parse_script`] — the edit-script file format (`insert` / `delete` /
//!   `relabel` lines over child-index paths);
//! * [`analyze_script`] — the verdict plus `SC0601` (statically rejected),
//!   `SC0602` (decided only by normalization — the per-edit analyzer could
//!   not), and `SC0603` (dynamic fallback) diagnostics;
//! * [`render_script_text`] / [`render_script_json`] — the CLI output
//!   layers; SARIF rides on [`crate::render_sarif`] over the embedded
//!   lint report.
//!
//! # Script file format
//!
//! One edit per line; `#` starts a comment. Nodes are addressed by
//! child-index paths from the document root: `.` is the root, `1/0` is the
//! first child of the root's second child. Nodes the script itself inserts
//! are addressed as `new:<k>` — the `k`-th `insert` line of the file
//! (0-based) — which is what lets a script express the cancellation and
//! overwrite patterns the normalizer exists for:
//!
//! ```text
//! # net effect: nothing (insert cancelled by its delete)
//! insert . 1 billTo
//! delete new:0
//! relabel 0/2 street
//! ```

use crate::lint::LintReport;
use schemacast_core::script::{RejectReason, ScriptVerdict, SiteDecision};
use schemacast_core::{CastContext, Diagnostic, Severity};
use schemacast_regex::Alphabet;
use schemacast_tree::{extract_shapes, Doc, Edit, NodeId};

/// How the two static layers decided one script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOutcome {
    /// Statically accepted (site-level; untouched content still gets the
    /// exemption walk at validation time).
    Accepted,
    /// Statically rejected: the edited document can never be target-valid.
    Rejected,
    /// Not statically decidable: dynamic Δ-revalidation must look.
    Fallback,
}

impl ScriptOutcome {
    /// Stable lowercase name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ScriptOutcome::Accepted => "accepted",
            ScriptOutcome::Rejected => "rejected",
            ScriptOutcome::Fallback => "fallback",
        }
    }
}

/// The report behind `analyze --script`: per-script outcome, how much the
/// normalizer contributed, and the `SC06xx` diagnostics.
#[derive(Debug)]
pub struct ScriptAnalysisReport {
    /// Number of edits in the script.
    pub edits: usize,
    /// Touched sites the analyzer grouped (0 when it bailed).
    pub sites: usize,
    /// Sites whose net effect normalized to the identity.
    pub identity_sites: usize,
    /// Whether any site's trace contains a genuine rewrite (cancellation
    /// or overwrite collapse).
    pub normalized: bool,
    /// Whether the PR 2 per-edit analyzer alone decides the script.
    pub per_edit_decided: bool,
    /// The script-level outcome.
    pub outcome: ScriptOutcome,
    /// The `SC06xx` findings.
    pub lint: LintReport,
}

/// Parses the edit-script file format (see the module docs) against `doc`.
/// Labels are interned into `alphabet`; unknown labels are legitimate
/// edits (inserting a foreign element), not errors.
pub fn parse_script(doc: &Doc, alphabet: &mut Alphabet, text: &str) -> Result<Vec<Edit>, String> {
    let mut edits = Vec::new();
    let mut inserted: Vec<NodeId> = Vec::new();
    let mut next_id = doc.node_count() as u32;
    let resolve = |node: &str, inserted: &Vec<NodeId>| -> Result<NodeId, String> {
        if let Some(k) = node.strip_prefix("new:") {
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad insert index {node:?}"))?;
            return inserted
                .get(k)
                .copied()
                .ok_or_else(|| format!("{node:?} names an insert that does not exist (yet)"));
        }
        let mut cur = doc.root();
        if node == "." {
            return Ok(cur);
        }
        for part in node.split('/') {
            let i: usize = part
                .parse()
                .map_err(|_| format!("bad path component {part:?} in {node:?}"))?;
            cur = *doc
                .children(cur)
                .get(i)
                .ok_or_else(|| format!("path {node:?}: child {i} out of range"))?;
        }
        Ok(cur)
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |why: String| format!("line {}: {why}", lineno + 1);
        let mut words = line.split_whitespace();
        let (cmd, a, b, c) = (words.next(), words.next(), words.next(), words.next());
        if words.next().is_some() {
            return Err(err(format!("trailing tokens in {line:?}")));
        }
        match (cmd, a, b, c) {
            (Some("insert"), Some(parent), Some(pos), Some(label)) => {
                let parent = resolve(parent, &inserted).map_err(err)?;
                let position: usize = pos
                    .parse()
                    .map_err(|_| err(format!("bad position {pos:?}")))?;
                edits.push(Edit::InsertElement {
                    parent,
                    position,
                    label: alphabet.intern(label),
                });
                // DeltaDoc assigns inserted ids by arena append, in order.
                inserted.push(NodeId(next_id));
                next_id += 1;
            }
            (Some("delete"), Some(node), None, None) => {
                let node = resolve(node, &inserted).map_err(err)?;
                edits.push(Edit::DeleteLeaf { node });
            }
            (Some("relabel"), Some(node), Some(label), None) => {
                let node = resolve(node, &inserted).map_err(err)?;
                edits.push(Edit::Relabel {
                    node,
                    label: alphabet.intern(label),
                });
            }
            _ => return Err(err(format!("unrecognized edit {line:?}"))),
        }
    }
    Ok(edits)
}

/// Whether the per-edit (PR 2) fast path alone decides the script: some
/// edit statically `Unsafe`, or every edit statically `Safe`.
fn per_edit_decides(ctx: &CastContext<'_>, doc: &Doc, edits: &[Edit]) -> bool {
    let Some(shapes) = extract_shapes(doc, edits) else {
        return false;
    };
    let mut all_safe = true;
    for shape in &shapes {
        let Some((s, t)) = ctx.site_type_pair(doc, shape.site) else {
            return false;
        };
        let Some(safety) = ctx.pair_safety(s, t) else {
            return false;
        };
        match safety.verdict(shape.kind) {
            schemacast_core::Verdict::Unsafe => return true,
            schemacast_core::Verdict::Safe => {}
            _ => all_safe = false,
        }
    }
    all_safe
}

/// Runs the whole-script analyzer over one `(document, script)` pair and
/// folds the result into diagnostics. `doc` must be source-valid.
pub fn analyze_script(ctx: &CastContext<'_>, doc: &Doc, edits: &[Edit]) -> ScriptAnalysisReport {
    let per_edit_decided = per_edit_decides(ctx, doc, edits);
    let analysis = ctx.script_analysis(doc, edits);
    let mut diagnostics = Vec::new();

    let (outcome, sites, identity_sites, normalized) = match &analysis {
        None => (ScriptOutcome::Fallback, 0, 0, false),
        Some(a) => {
            let outcome = match a.verdict {
                ScriptVerdict::Accept => ScriptOutcome::Accepted,
                ScriptVerdict::Reject => ScriptOutcome::Rejected,
                ScriptVerdict::Undecided => ScriptOutcome::Fallback,
            };
            let identity = a
                .sites
                .iter()
                .filter(|s| s.decision == SiteDecision::Identity)
                .count();
            (outcome, a.sites.len(), identity, a.normalized())
        }
    };

    if let Some(a) = &analysis {
        for site in &a.sites {
            if let SiteDecision::Reject(reason) = site.decision {
                let source = ctx.source();
                let target = ctx.target();
                let why = match reason {
                    RejectReason::Membership => {
                        "its net child word is outside the target content model".to_string()
                    }
                    RejectReason::FreshInvalid { pos } => format!(
                        "the inserted child at net position {pos} cannot be valid without content"
                    ),
                    RejectReason::DisjointChild { pos } => format!(
                        "the kept child at net position {pos} has disjoint source/target types"
                    ),
                };
                diagnostics.push(
                    Diagnostic::new(
                        "SC0601",
                        Severity::Error,
                        format!(
                            "script statically rejected at site pair ({}, {}): {}",
                            source.type_name(site.source_type),
                            target.type_name(site.target_type),
                            why
                        ),
                    )
                    .with_type_name(source.type_name(site.source_type)),
                );
            }
        }
    }
    if outcome != ScriptOutcome::Fallback && !per_edit_decided {
        diagnostics.push(Diagnostic::new(
            "SC0602",
            Severity::Note,
            format!(
                "script decided only at the script level ({} site(s), normalization {}): \
                 the per-edit analyzer could not decide it",
                sites,
                if normalized {
                    "rewrote the script"
                } else {
                    "left it as-is"
                }
            ),
        ));
    }
    if outcome == ScriptOutcome::Fallback {
        diagnostics.push(Diagnostic::new(
            "SC0603",
            Severity::Warning,
            match &analysis {
                None => "script falls outside the analyzable shape (text edits, nested sites, \
                         or unresolvable typing); validation falls back to dynamic \
                         delta-revalidation"
                    .to_string(),
                Some(_) => "some site is statically undecided; validation falls back to \
                            dynamic delta-revalidation"
                    .to_string(),
            },
        ));
    }

    ScriptAnalysisReport {
        edits: edits.len(),
        sites,
        identity_sites,
        normalized,
        per_edit_decided,
        outcome,
        lint: LintReport { diagnostics },
    }
}

/// Renders the script report as human-readable text.
pub fn render_script_text(report: &ScriptAnalysisReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "script: {} edit(s) over {} site(s), verdict {}",
        report.edits,
        report.sites,
        report.outcome.as_str()
    );
    let _ = writeln!(
        out,
        "normalization: {}{}; per-edit analyzer {}",
        if report.normalized {
            "rewrote the script"
        } else {
            "no rewrites"
        },
        if report.identity_sites > 0 {
            format!(" ({} site(s) cancelled to identity)", report.identity_sites)
        } else {
            String::new()
        },
        if report.per_edit_decided {
            "also decides it"
        } else {
            "cannot decide it"
        }
    );
    out.push_str(&crate::lint::render_lint_text(&report.lint));
    out
}

/// Renders the script report as JSON (stable key order, no external
/// serializer): the script block followed by the lint report's
/// `diagnostics`/`summary` keys.
pub fn render_script_json(report: &ScriptAnalysisReport) -> String {
    let mut out = String::new();
    out.push_str("{\"edits\":");
    out.push_str(&report.edits.to_string());
    out.push_str(",\"sites\":");
    out.push_str(&report.sites.to_string());
    out.push_str(",\"identity_sites\":");
    out.push_str(&report.identity_sites.to_string());
    out.push_str(",\"normalized\":");
    out.push_str(if report.normalized { "true" } else { "false" });
    out.push_str(",\"per_edit_decided\":");
    out.push_str(if report.per_edit_decided {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"verdict\":\"");
    out.push_str(report.outcome.as_str());
    out.push_str("\",");
    let lint = crate::lint::render_lint_json(&report.lint);
    out.push_str(&lint[1..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::{AbstractSchema, SchemaBuilder, SimpleType};

    fn po_schema(ab: &mut Alphabet, bill_optional: bool) -> AbstractSchema {
        let mut b = SchemaBuilder::new(ab);
        let text = b.simple("Text", SimpleType::string()).unwrap();
        let po = b.declare("PO").unwrap();
        let model = if bill_optional {
            "(shipTo, billTo?, items)"
        } else {
            "(shipTo, billTo, items)"
        };
        b.complex(
            po,
            model,
            &[("shipTo", text), ("billTo", text), ("items", text)],
        )
        .unwrap();
        b.root("po", po);
        b.finish().unwrap()
    }

    fn po_doc(ab: &mut Alphabet, with_bill: bool) -> Doc {
        let po = ab.intern("po");
        let mut doc = Doc::new(po);
        doc.add_element(doc.root(), ab.intern("shipTo"));
        if with_bill {
            doc.add_element(doc.root(), ab.intern("billTo"));
        }
        doc.add_element(doc.root(), ab.intern("items"));
        doc
    }

    #[test]
    fn parser_round_trips_paths_and_insert_references() {
        let mut ab = Alphabet::new();
        let doc = po_doc(&mut ab, true);
        let text = "# add then cancel\ninsert . 1 note\ndelete new:0\nrelabel 0 shipTo\n";
        let edits = parse_script(&doc, &mut ab, text).expect("parsed");
        assert_eq!(edits.len(), 3);
        let note = ab.lookup("note").unwrap();
        assert_eq!(
            edits[0],
            Edit::InsertElement {
                parent: doc.root(),
                position: 1,
                label: note
            }
        );
        let inserted = NodeId(doc.node_count() as u32);
        assert_eq!(edits[1], Edit::DeleteLeaf { node: inserted });
        assert!(matches!(edits[2], Edit::Relabel { .. }));

        assert!(parse_script(&doc, &mut ab, "delete new:3").is_err());
        assert!(parse_script(&doc, &mut ab, "insert . x note").is_err());
        assert!(parse_script(&doc, &mut ab, "frobnicate .").is_err());
        assert!(parse_script(&doc, &mut ab, "delete 9").is_err());
    }

    #[test]
    fn script_level_decision_reports_sc0602() {
        // billTo optional → required: the per-edit analyzer says Dynamic,
        // the script analyzer decides from the concrete word.
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false);
        let doc = po_doc(&mut ab, false);
        let ctx = CastContext::new(&source, &target, &ab);
        let edits = parse_script(&doc, &mut ab.clone(), "insert . 1 billTo").unwrap();
        let report = analyze_script(&ctx, &doc, &edits);
        assert_eq!(report.outcome, ScriptOutcome::Accepted);
        assert!(!report.per_edit_decided);
        let ids: Vec<&str> = report.lint.diagnostics.iter().map(|d| d.rule_id).collect();
        assert_eq!(ids, ["SC0602"]);
        for d in &report.lint.diagnostics {
            assert!(crate::lint::rule(d.rule_id).is_some(), "unregistered rule");
        }
    }

    #[test]
    fn rejection_reports_sc0601_and_fallback_sc0603() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false);
        let doc = po_doc(&mut ab, false);
        let ctx = CastContext::new(&source, &target, &ab);

        let edits = parse_script(&doc, &mut ab.clone(), "insert . 0 billTo").unwrap();
        let report = analyze_script(&ctx, &doc, &edits);
        assert_eq!(report.outcome, ScriptOutcome::Rejected);
        let ids: Vec<&str> = report.lint.diagnostics.iter().map(|d| d.rule_id).collect();
        assert!(ids.contains(&"SC0601"));

        // A text edit bails the whole analyzer.
        let report = analyze_script(
            &ctx,
            &doc,
            &[Edit::InsertText {
                parent: doc.root(),
                position: 0,
                text: "x".into(),
            }],
        );
        assert_eq!(report.outcome, ScriptOutcome::Fallback);
        let ids: Vec<&str> = report.lint.diagnostics.iter().map(|d| d.rule_id).collect();
        assert_eq!(ids, ["SC0603"]);
    }

    #[test]
    fn renderers_are_balanced_and_carry_the_verdict() {
        let mut ab = Alphabet::new();
        let source = po_schema(&mut ab, true);
        let target = po_schema(&mut ab, false);
        let doc = po_doc(&mut ab, false);
        let ctx = CastContext::new(&source, &target, &ab);
        let edits = parse_script(&doc, &mut ab.clone(), "insert . 1 billTo").unwrap();
        let report = analyze_script(&ctx, &doc, &edits);

        let text = render_script_text(&report);
        assert!(text.contains("verdict accepted"));
        assert!(text.contains("cannot decide it"));

        let json = render_script_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"verdict\":\"accepted\""));
        assert!(json.contains("\"per_edit_decided\":false"));
        assert!(json.contains("\"diagnostics\":"));

        // SARIF rides on the embedded lint report with registered rules.
        let sarif = crate::render_sarif(&report.lint);
        assert!(sarif.contains("SC0602"));
    }
}
