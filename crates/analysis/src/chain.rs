//! Chain analysis reporting: `SC05xx` findings and renderers behind
//! `schemacast chain`.
//!
//! [`analyze_chain`] folds a [`SchemaChain`]'s static layers into one
//! report: composition statistics (how many endpoint facts the hop-by-hop
//! composition derives versus the composed-pair fallback) and a
//! [`LintReport`] in the `SC05xx` family:
//!
//! * `SC0501` — a reachable `(v_1, v_N)` type pair is neither subsumed nor
//!   disjoint: some `v_1`-valid documents break consumers of `v_N`. Carries
//!   a minimal witness document (synthesized against the endpoint pair and
//!   re-checked) and names the first hop whose relation breaks.
//! * `SC0502` — the pair is disjoint end to end, same witness treatment.
//! * `SC0503` — a `v_1` root element disappears at some hop.
//! * `SC0504` (note) — an endpoint fact the composition cannot derive; the
//!   verdict rests on the composed-pair product construction, backed by the
//!   endpoint certificates under `--certify`.

use crate::json_string;
use crate::lint::LintReport;
use schemacast_core::{
    reachable_pairs_with_paths, ChainRelation, ComposedVia, CompositionStats, Diagnostic,
    SchemaChain, Severity, WitnessSynth,
};
use schemacast_regex::{Alphabet, Sym};
use schemacast_schema::{AbstractSchema, TypeDef, TypeId};

/// The `schemacast chain` report: chain shape, composition coverage, and
/// the `SC05xx` findings.
#[derive(Debug, Clone)]
pub struct ChainAnalysisReport {
    /// Number of schema versions in the chain.
    pub versions: usize,
    /// Endpoint facts decided by composition versus fallback.
    pub composition: CompositionStats,
    /// The `SC05xx` findings.
    pub lint: LintReport,
}

/// Resolves the type a label path reaches in one schema version, following
/// the root declaration and then the ρ child-type maps.
fn type_along_path(schema: &AbstractSchema, via: &[Sym]) -> Option<TypeId> {
    let (&root, rest) = via.split_first()?;
    let mut t = schema.root_type(root)?;
    for &label in rest {
        let TypeDef::Complex(c) = schema.type_def(t) else {
            return None;
        };
        t = c.child_type(label)?;
    }
    Some(t)
}

/// The first hop whose relation stops covering the pair reached at `via`:
/// either the path stops resolving in the hop's target version, or the
/// hop's type pair falls out of `R_sub`.
fn breaking_hop(chain: &SchemaChain<'_>, via: &[Sym]) -> usize {
    let schemas = chain.schemas();
    for (i, hop) in chain.hops().iter().enumerate() {
        let Some(s) = type_along_path(&schemas[i], via) else {
            return i;
        };
        let Some(t) = type_along_path(&schemas[i + 1], via) else {
            return i;
        };
        if !hop.relations().subsumed(s, t) {
            return i;
        }
    }
    chain.hop_count() - 1
}

/// Computes the full chain report: composition statistics plus the
/// `SC05xx` lint findings over the endpoint pair's reachable type pairs.
pub fn analyze_chain(chain: &SchemaChain<'_>, alphabet: &Alphabet) -> ChainAnalysisReport {
    let mut diagnostics = Vec::new();
    let schemas = chain.schemas();
    let versions = schemas.len();
    let endpoint = chain.endpoint();

    // Roots that disappear somewhere along the chain.
    let mut roots: Vec<_> = schemas[0].roots().collect();
    roots.sort_by_key(|&(label, _)| label.index());
    for (label, t) in roots {
        let gone_at = (1..versions).find(|&v| schemas[v].root_type(label).is_none());
        if let Some(v) = gone_at {
            let lname = alphabet.name(label);
            diagnostics.push(
                Diagnostic::new(
                    "SC0503",
                    Severity::Error,
                    format!(
                        "root element `{lname}` disappears at hop {} (v{} → v{}): \
                         every v1 document is invalid for consumers of v{versions}",
                        v - 1,
                        v,
                        v + 1
                    ),
                )
                .with_type_name(schemas[0].type_name(t))
                .with_particle(lname),
            );
        }
    }

    // Endpoint pairs that break, with witnesses and the breaking hop.
    let synth = WitnessSynth::new(endpoint, alphabet);
    for pair in reachable_pairs_with_paths(endpoint) {
        let s_name = schemas[0].type_name(pair.source);
        let t_name = schemas[versions - 1].type_name(pair.target);
        let via_names: Vec<&str> = pair.via.iter().map(|&l| alphabet.name(l)).collect();
        let at = format!("/{}", via_names.join("/"));
        let hop = breaking_hop(chain, &pair.via);
        let witness = synth.witness(&pair).filter(|w| {
            endpoint.source().accepts_document(&w.doc)
                && !endpoint.target().accepts_document(&w.doc)
        });

        let disjoint = endpoint.relations().disjoint(pair.source, pair.target);
        let mut d = if disjoint {
            Diagnostic::new(
                "SC0502",
                Severity::Error,
                format!(
                    "chain pair `{s_name}` → `{t_name}` (reached at {at}) is disjoint: \
                     every v1-valid element there is invalid for consumers of \
                     v{versions}; the relation breaks at hop {hop} (v{} → v{})",
                    hop + 1,
                    hop + 2
                ),
            )
        } else {
            Diagnostic::new(
                "SC0501",
                Severity::Error,
                format!(
                    "chain pair `{s_name}` → `{t_name}` (reached at {at}) is incompatible: \
                     this edit history breaks consumers of v{versions}; the relation \
                     breaks at hop {hop} (v{} → v{})",
                    hop + 1,
                    hop + 2
                ),
            )
        };
        d = d.with_type_name(t_name);
        if let Some(p) = witness.as_ref().and_then(|w| w.particle.clone()) {
            d = d.with_particle(p);
        }
        if let Some(w) = witness {
            d = d
                .with_path(w.path)
                .with_witness(schemacast_xml::to_string(&w.doc.to_xml(alphabet)));
        }
        diagnostics.push(d);
    }

    // Endpoint facts the composition cannot derive: informational, the
    // verdict rests on the composed-pair construction.
    let rel = endpoint.relations();
    for s in schemas[0].type_ids() {
        for t in schemas[versions - 1].type_ids() {
            let held = rel.subsumed(s, t) || rel.disjoint(s, t);
            if !held {
                continue;
            }
            if let ChainRelation::Subsumed(ComposedVia::EndpointPair)
            | ChainRelation::Disjoint(ComposedVia::EndpointPair) = chain.composed_relation(s, t)
            {
                diagnostics.push(
                    Diagnostic::new(
                        "SC0504",
                        Severity::Note,
                        format!(
                            "hop relations do not compose for pair `{}` → `{}`: the chain \
                             verdict rests on the composed-pair product construction",
                            schemas[0].type_name(s),
                            schemas[versions - 1].type_name(t)
                        ),
                    )
                    .with_type_name(schemas[versions - 1].type_name(t)),
                );
            }
        }
    }

    ChainAnalysisReport {
        versions,
        composition: chain.composition_stats(),
        lint: LintReport { diagnostics },
    }
}

/// Renders the chain report as human-readable text.
pub fn render_chain_text(report: &ChainAnalysisReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let c = report.composition;
    let _ = writeln!(
        out,
        "chain: {} versions, {} hop(s)",
        report.versions,
        report.versions - 1
    );
    let _ = writeln!(
        out,
        "composition: {} of {} subsumed and {} of {} disjoint endpoint fact(s) \
         derived hop-by-hop; the rest fall back to the composed pair",
        c.composed_sub,
        c.composed_sub + c.fallback_sub,
        c.composed_dis,
        c.composed_dis + c.fallback_dis
    );
    out.push_str(&crate::lint::render_lint_text(&report.lint));
    out
}

/// Renders the chain report as JSON (stable key order, no external
/// serializer): the composition block followed by the lint report's
/// `diagnostics`/`summary` keys.
pub fn render_chain_json(report: &ChainAnalysisReport) -> String {
    let c = report.composition;
    let mut out = String::new();
    out.push_str("{\"versions\":");
    out.push_str(&report.versions.to_string());
    out.push_str(",\"hops\":");
    out.push_str(&(report.versions - 1).to_string());
    out.push_str(",\"composition\":{");
    for (i, (key, v)) in [
        ("composed_sub", c.composed_sub),
        ("fallback_sub", c.fallback_sub),
        ("composed_dis", c.composed_dis),
        ("fallback_dis", c.fallback_dis),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        json_string(&mut out, key);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},");
    // Splice in the lint object's keys (diagnostics + summary).
    let lint = crate::lint::render_lint_json(&report.lint);
    out.push_str(&lint[1..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::Session;
    use schemacast_workload::purchase_order as po;

    fn session_chain_sources() -> (Session, Vec<AbstractSchema>) {
        let mut session = Session::new();
        // target (billTo required) ⊑ source (billTo optional): a widening
        // hop followed by an identical hop.
        let v1 = session.parse_xsd(&po::target_xsd()).expect("v1");
        let v2 = session.parse_xsd(&po::source_xsd()).expect("v2");
        let v3 = session.parse_xsd(&po::source_xsd()).expect("v3");
        (session, vec![v1, v2, v3])
    }

    #[test]
    fn widening_chain_reports_clean() {
        let (session, schemas) = session_chain_sources();
        let chain = SchemaChain::new(&schemas, &session.alphabet).unwrap();
        let report = analyze_chain(&chain, &session.alphabet);
        assert_eq!(report.versions, 3);
        assert!(
            !report.lint.fails(Severity::Error),
            "{:?}",
            report.lint.diagnostics
        );
        assert!(report.composition.composed_sub > 0);
    }

    #[test]
    fn narrowing_chain_breaks_with_witness_and_hop() {
        let mut session = Session::new();
        let v1 = session.parse_xsd(&po::source_xsd()).expect("v1");
        let v2 = session.parse_xsd(&po::source_xsd()).expect("v2");
        let v3 = session.parse_xsd(&po::target_xsd()).expect("v3");
        let schemas = vec![v1, v2, v3];
        let chain = SchemaChain::new(&schemas, &session.alphabet).unwrap();
        let report = analyze_chain(&chain, &session.alphabet);
        assert!(report.lint.fails(Severity::Error));
        let broken: Vec<_> = report
            .lint
            .diagnostics
            .iter()
            .filter(|d| d.rule_id == "SC0501")
            .collect();
        assert!(!broken.is_empty());
        // The narrowing happens at hop 1 (v2 → v3); the findings must say
        // so and at least one must carry a witness.
        assert!(broken.iter().all(|d| d.message.contains("hop 1")));
        assert!(broken.iter().any(|d| d.witness.is_some()));
        for d in &report.lint.diagnostics {
            assert!(
                crate::lint::rule(d.rule_id).is_some(),
                "{} registered",
                d.rule_id
            );
        }
    }

    #[test]
    fn renderings_cover_the_chain_report() {
        let (session, schemas) = session_chain_sources();
        let chain = SchemaChain::new(&schemas, &session.alphabet).unwrap();
        let report = analyze_chain(&chain, &session.alphabet);
        let text = render_chain_text(&report);
        assert!(text.contains("chain: 3 versions"));
        assert!(text.contains("composition:"));
        let json = render_chain_json(&report);
        assert!(json.starts_with("{\"versions\":3,\"hops\":2,"));
        assert!(json.contains("\"composition\":{\"composed_sub\":"));
        assert!(json.contains("\"summary\":"));
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }
}
