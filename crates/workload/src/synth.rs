//! Synthetic schema workloads: random abstract schemas, schema *evolutions*
//! (the operations a schema actually undergoes between versions), random
//! valid documents, and random edit scripts.
//!
//! These drive the property tests ("the cast validator agrees with full
//! validation on arbitrary schema pairs and valid documents") and the
//! ablation benchmarks.

use crate::strings::sample_member;
use rand::Rng;
use schemacast_regex::Alphabet;
use schemacast_schema::{
    AbstractSchema, AtomicKind, BoundValue, Decimal, SchemaBuilder, SimpleType, TypeDef, TypeId,
};
use schemacast_tree::{DeltaDoc, Doc, Edit, NodeId};

/// Occurrence decoration of a content-model part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    /// Exactly once.
    One,
    /// `?`
    Opt,
    /// `*`
    Star,
    /// `+`
    Plus,
}

impl Occurs {
    fn suffix(self) -> &'static str {
        match self {
            Occurs::One => "",
            Occurs::Opt => "?",
            Occurs::Star => "*",
            Occurs::Plus => "+",
        }
    }
}

/// What a part's label maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    /// Another complex type (by index; always a *later* index — the
    /// generated type graph is acyclic, hence productive).
    Complex(usize),
    /// A simple type (by index into [`SynthSchema::simples`]).
    Simple(usize),
}

/// One part of a content model: a label (or a choice of two labels, each
/// with its own child) plus an occurrence decoration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// `(label, child)` alternatives; one entry = plain element,
    /// two entries = a choice.
    pub alternatives: Vec<(String, ChildRef)>,
    /// Occurrence decoration applied to the part.
    pub occurs: Occurs,
}

/// A complex type: a sequence of parts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SynthComplex {
    /// Sequence of parts.
    pub parts: Vec<Part>,
}

/// A mutable, regenerable description of a schema; compile with
/// [`SynthSchema::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSchema {
    /// Complex types; index 0 is the root type.
    pub complexes: Vec<SynthComplex>,
    /// Simple types.
    pub simples: Vec<SimpleType>,
    /// The root element label.
    pub root_label: String,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of complex types.
    pub n_complex: usize,
    /// Maximum parts per content model.
    pub max_parts: usize,
    /// Probability that a part is a two-way choice.
    pub choice_prob: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_complex: 6,
            max_parts: 4,
            choice_prob: 0.25,
        }
    }
}

/// Generates a random schema description.
pub fn random_schema(cfg: &SynthConfig, rng: &mut impl Rng) -> SynthSchema {
    let simples = vec![
        SimpleType::string(),
        SimpleType::of(AtomicKind::Integer),
        SimpleType {
            kind: AtomicKind::PositiveInteger,
            facets: schemacast_schema::Facets {
                max_exclusive: Some(BoundValue::Num(Decimal::from_i64(rng.gen_range(50..500)))),
                ..Default::default()
            },
        },
        SimpleType::of(AtomicKind::Boolean),
    ];
    let mut complexes = Vec::with_capacity(cfg.n_complex);
    let mut label_counter = 0usize;
    for i in 0..cfg.n_complex {
        let n_parts = rng.gen_range(1..=cfg.max_parts);
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let n_alt = if rng.gen_bool(cfg.choice_prob) { 2 } else { 1 };
            let mut alternatives = Vec::with_capacity(n_alt);
            for _ in 0..n_alt {
                label_counter += 1;
                let label = format!("e{label_counter}");
                let child = if i + 1 < cfg.n_complex && rng.gen_bool(0.4) {
                    ChildRef::Complex(rng.gen_range(i + 1..cfg.n_complex))
                } else {
                    ChildRef::Simple(rng.gen_range(0..simples.len()))
                };
                alternatives.push((label, child));
            }
            let occurs = match rng.gen_range(0..5) {
                0 => Occurs::Opt,
                1 => Occurs::Star,
                2 => Occurs::Plus,
                _ => Occurs::One,
            };
            parts.push(Part {
                alternatives,
                occurs,
            });
        }
        complexes.push(SynthComplex { parts });
    }
    SynthSchema {
        complexes,
        simples,
        root_label: "root".to_owned(),
    }
}

impl SynthSchema {
    /// Compiles the description into an [`AbstractSchema`] over `alphabet`.
    pub fn build(&self, alphabet: &mut Alphabet) -> AbstractSchema {
        let mut b = SchemaBuilder::new(alphabet);
        let simple_ids: Vec<TypeId> = self
            .simples
            .iter()
            .enumerate()
            .map(|(i, s)| b.simple(&format!("S{i}"), s.clone()).expect("unique"))
            .collect();
        let complex_ids: Vec<TypeId> = (0..self.complexes.len())
            .map(|i| b.declare(&format!("C{i}")).expect("unique"))
            .collect();
        for (i, c) in self.complexes.iter().enumerate() {
            let mut model = String::new();
            let mut child_types: Vec<(&str, TypeId)> = Vec::new();
            for (pi, part) in c.parts.iter().enumerate() {
                if pi > 0 {
                    model.push_str(", ");
                }
                if part.alternatives.len() > 1 {
                    model.push('(');
                }
                for (ai, (label, child)) in part.alternatives.iter().enumerate() {
                    if ai > 0 {
                        model.push_str(" | ");
                    }
                    model.push_str(label);
                    let tid = match child {
                        ChildRef::Complex(k) => complex_ids[*k],
                        ChildRef::Simple(k) => simple_ids[*k],
                    };
                    child_types.push((label.as_str(), tid));
                }
                if part.alternatives.len() > 1 {
                    model.push(')');
                }
                model.push_str(part.occurs.suffix());
            }
            if c.parts.is_empty() {
                model.push_str("()");
            }
            b.complex(complex_ids[i], &model, &child_types)
                .expect("generated model is well-formed");
        }
        b.root(&self.root_label, complex_ids[0]);
        b.finish().expect("generated schema assembles")
    }

    /// Applies one random evolution step, returning what changed.
    pub fn evolve(&mut self, rng: &mut impl Rng) -> EvolutionOp {
        for _ in 0..32 {
            let op = match rng.gen_range(0..6) {
                0 => self.try_make_optional(rng),
                1 => self.try_make_required(rng),
                2 => self.try_star_plus_flip(rng),
                3 => self.try_add_optional_part(rng),
                4 => self.try_narrow_simple(rng),
                _ => self.try_widen_simple(rng),
            };
            if let Some(op) = op {
                return op;
            }
        }
        EvolutionOp::NoChange
    }

    fn pick_part(&mut self, rng: &mut impl Rng) -> Option<(usize, usize)> {
        let candidates: Vec<(usize, usize)> = self
            .complexes
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| (0..c.parts.len()).map(move |pi| (ci, pi)))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.gen_range(0..candidates.len())])
        }
    }

    fn try_make_optional(&mut self, rng: &mut impl Rng) -> Option<EvolutionOp> {
        let (ci, pi) = self.pick_part(rng)?;
        let p = &mut self.complexes[ci].parts[pi];
        match p.occurs {
            Occurs::One => {
                p.occurs = Occurs::Opt;
                Some(EvolutionOp::MadeOptional {
                    complex: ci,
                    part: pi,
                })
            }
            Occurs::Plus => {
                p.occurs = Occurs::Star;
                Some(EvolutionOp::MadeOptional {
                    complex: ci,
                    part: pi,
                })
            }
            _ => None,
        }
    }

    fn try_make_required(&mut self, rng: &mut impl Rng) -> Option<EvolutionOp> {
        let (ci, pi) = self.pick_part(rng)?;
        let p = &mut self.complexes[ci].parts[pi];
        match p.occurs {
            Occurs::Opt => {
                p.occurs = Occurs::One;
                Some(EvolutionOp::MadeRequired {
                    complex: ci,
                    part: pi,
                })
            }
            Occurs::Star => {
                p.occurs = Occurs::Plus;
                Some(EvolutionOp::MadeRequired {
                    complex: ci,
                    part: pi,
                })
            }
            _ => None,
        }
    }

    fn try_star_plus_flip(&mut self, rng: &mut impl Rng) -> Option<EvolutionOp> {
        let (ci, pi) = self.pick_part(rng)?;
        let p = &mut self.complexes[ci].parts[pi];
        match p.occurs {
            Occurs::One => {
                p.occurs = Occurs::Plus;
                Some(EvolutionOp::Widened {
                    complex: ci,
                    part: pi,
                })
            }
            _ => None,
        }
    }

    fn try_add_optional_part(&mut self, rng: &mut impl Rng) -> Option<EvolutionOp> {
        let ci = rng.gen_range(0..self.complexes.len());
        let max_label: usize = self
            .complexes
            .iter()
            .flat_map(|c| &c.parts)
            .flat_map(|p| &p.alternatives)
            .filter_map(|(l, _)| l.strip_prefix('e').and_then(|n| n.parse::<usize>().ok()))
            .max()
            .unwrap_or(0);
        let label = format!("e{}", max_label + 1);
        let child = ChildRef::Simple(rng.gen_range(0..self.simples.len()));
        self.complexes[ci].parts.push(Part {
            alternatives: vec![(label, child)],
            occurs: Occurs::Opt,
        });
        Some(EvolutionOp::AddedOptionalPart { complex: ci })
    }

    fn try_narrow_simple(&mut self, rng: &mut impl Rng) -> Option<EvolutionOp> {
        let i = rng.gen_range(0..self.simples.len());
        let s = &mut self.simples[i];
        if !s.kind.is_numeric() {
            return None;
        }
        let cur = match s.facets.max_exclusive {
            Some(BoundValue::Num(d)) => d,
            _ => Decimal::from_i64(1000),
        };
        let halved = Decimal::from_i64(decimal_to_i64(cur) / 2 + 1);
        s.facets.max_exclusive = Some(BoundValue::Num(halved));
        Some(EvolutionOp::NarrowedSimple { simple: i })
    }

    fn try_widen_simple(&mut self, rng: &mut impl Rng) -> Option<EvolutionOp> {
        let i = rng.gen_range(0..self.simples.len());
        let s = &mut self.simples[i];
        if !s.kind.is_numeric() || s.facets.max_exclusive.is_none() {
            return None;
        }
        let cur = match s.facets.max_exclusive {
            Some(BoundValue::Num(d)) => d,
            _ => return None,
        };
        s.facets.max_exclusive = Some(BoundValue::Num(Decimal::from_i64(
            decimal_to_i64(cur).saturating_mul(2),
        )));
        Some(EvolutionOp::WidenedSimple { simple: i })
    }
}

fn decimal_to_i64(d: Decimal) -> i64 {
    // Facet bounds generated here are always small integers.
    d.to_string().parse().unwrap_or(1000)
}

/// What [`SynthSchema::evolve`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvolutionOp {
    /// A required part became optional (source ⊆ target direction widens).
    MadeOptional {
        /// Index of the complex type.
        complex: usize,
        /// Index of the part.
        part: usize,
    },
    /// An optional part became required.
    MadeRequired {
        /// Index of the complex type.
        complex: usize,
        /// Index of the part.
        part: usize,
    },
    /// `One` became `Plus`.
    Widened {
        /// Index of the complex type.
        complex: usize,
        /// Index of the part.
        part: usize,
    },
    /// A new optional element was appended to a content model.
    AddedOptionalPart {
        /// Index of the complex type.
        complex: usize,
    },
    /// A numeric simple type's `maxExclusive` was halved.
    NarrowedSimple {
        /// Index of the simple type.
        simple: usize,
    },
    /// A numeric simple type's `maxExclusive` was doubled.
    WidenedSimple {
        /// Index of the simple type.
        simple: usize,
    },
    /// No applicable mutation was found.
    NoChange,
}

/// Samples a random document valid with respect to `schema`, rooted at
/// `root_label`. `fanout` tunes how long starred content runs get.
pub fn sample_document(
    schema: &AbstractSchema,
    alphabet: &mut Alphabet,
    rng: &mut impl Rng,
    fanout: usize,
) -> Option<Doc> {
    let root_label = alphabet.lookup("root")?;
    let root_type = schema.root_type(root_label)?;
    let mut doc = Doc::new(root_label);
    let root = doc.root();
    fill_node(schema, rng, &mut doc, root, root_type, fanout)?;
    debug_assert!(schema.accepts_document(&doc));
    Some(doc)
}

fn fill_node(
    schema: &AbstractSchema,
    rng: &mut impl Rng,
    doc: &mut Doc,
    node: NodeId,
    t: TypeId,
    fanout: usize,
) -> Option<()> {
    match schema.type_def(t) {
        TypeDef::Simple(s) => {
            let value = sample_simple_value(s, rng)?;
            if !value.is_empty() {
                doc.add_text(node, value);
            }
            Some(())
        }
        TypeDef::Complex(c) => {
            let labels = sample_member(&c.dfa, rng, fanout)?;
            for label in labels {
                let child_type = c.child_type(label)?;
                let child = doc.add_element(node, label);
                fill_node(schema, rng, doc, child, child_type, fanout)?;
            }
            Some(())
        }
    }
}

/// Samples a lexical value valid for a simple type. Supports the kinds and
/// facets the synthetic generator produces (enumerations, numeric ranges,
/// free strings/booleans/dates).
pub fn sample_simple_value(s: &SimpleType, rng: &mut impl Rng) -> Option<String> {
    if let Some(e) = &s.facets.enumeration {
        let valid: Vec<&String> = e.iter().filter(|v| s.validate(v)).collect();
        if valid.is_empty() {
            return None;
        }
        return Some(valid[rng.gen_range(0..valid.len())].clone());
    }
    let candidate = match s.kind {
        AtomicKind::String | AtomicKind::AnySimple => {
            let words = ["alpha", "bravo", "charlie", "delta", "echo"];
            words[rng.gen_range(0..words.len())].to_owned()
        }
        AtomicKind::Boolean => {
            if rng.gen_bool(0.5) {
                "true".into()
            } else {
                "false".into()
            }
        }
        AtomicKind::Date => "2004-03-14".into(),
        _ => {
            // Numeric: find a value inside the facet interval by probing.
            let probes: Vec<i64> = vec![1, 2, 5, 10, 42, 99, 0, -1, 100, 199, 500, 7];
            let mut found = None;
            for p in probes {
                if s.validate(&p.to_string()) {
                    found = Some(p);
                    break;
                }
            }
            let base = found?;
            // Jitter within validity.
            let jittered = base + rng.gen_range(0..5);
            if s.validate(&jittered.to_string()) {
                jittered.to_string()
            } else {
                base.to_string()
            }
        }
    };
    s.validate(&candidate).then_some(candidate)
}

/// Applies `n` random edits to `dd`, preferring structure-preserving ones.
/// Returns the number of edits that actually applied.
pub fn random_edits(
    dd: &mut DeltaDoc,
    alphabet: &mut Alphabet,
    rng: &mut impl Rng,
    n: usize,
) -> usize {
    let mut applied = 0;
    for _ in 0..n {
        let nodes: Vec<NodeId> = dd
            .doc()
            .preorder_iter()
            .filter(|&id| !matches!(dd.delta(id), schemacast_tree::DeltaState::Deleted))
            .collect();
        if nodes.is_empty() {
            break;
        }
        let node = nodes[rng.gen_range(0..nodes.len())];
        let edit = match rng.gen_range(0..4) {
            0 if dd.doc().text(node).is_some() => Some(Edit::SetText {
                node,
                text: rng.gen_range(0i64..300).to_string(),
            }),
            1 if dd.doc().label(node).is_some() && dd.doc().parent(node).is_some() => {
                // Relabel to an existing label (plausible evolution).
                let target = alphabet.symbols().nth(rng.gen_range(0..alphabet.len()));
                target.map(|label| Edit::Relabel { node, label })
            }
            2 if dd.doc().parent(node).is_some() && dd.new_children(node).next().is_none() => {
                Some(Edit::DeleteLeaf { node })
            }
            _ if dd.doc().label(node).is_some() => {
                let label = alphabet.symbols().nth(rng.gen_range(0..alphabet.len()));
                label.map(|label| Edit::InsertElement {
                    parent: node,
                    position: rng.gen_range(0..=dd.doc().children(node).len()),
                    label,
                })
            }
            _ => None,
        };
        if let Some(e) = edit {
            if dd.apply(&e).is_ok() {
                applied += 1;
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_schemas_build_and_are_productive() {
        let mut rng = SmallRng::seed_from_u64(11);
        for seed in 0..20 {
            let mut srng = SmallRng::seed_from_u64(seed);
            let synth = random_schema(&SynthConfig::default(), &mut srng);
            let mut ab = Alphabet::new();
            let schema = synth.build(&mut ab);
            assert!(schema.assert_productive(&ab).is_ok(), "seed {seed}");
            let _ = &mut rng;
        }
    }

    #[test]
    fn sampled_documents_are_valid() {
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let synth = random_schema(&SynthConfig::default(), &mut rng);
            let mut ab = Alphabet::new();
            let schema = synth.build(&mut ab);
            let doc = sample_document(&schema, &mut ab, &mut rng, 4).expect("sample");
            assert!(schema.accepts_document(&doc), "seed {seed}");
        }
    }

    #[test]
    fn evolution_changes_compile() {
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let mut synth = random_schema(&SynthConfig::default(), &mut rng);
            let original = synth.clone();
            let op = synth.evolve(&mut rng);
            let mut ab = Alphabet::new();
            let s1 = original.build(&mut ab);
            let s2 = synth.build(&mut ab);
            assert!(s1.assert_productive(&ab).is_ok());
            assert!(s2.assert_productive(&ab).is_ok());
            if op != EvolutionOp::NoChange {
                assert_ne!(original, synth, "op {op:?} changed nothing");
            }
        }
    }

    #[test]
    fn widening_evolutions_keep_documents_valid() {
        for seed in 0..30 {
            let mut rng = SmallRng::seed_from_u64(200 + seed);
            let mut synth = random_schema(&SynthConfig::default(), &mut rng);
            let mut ab = Alphabet::new();
            let source = synth.build(&mut ab);
            let doc = sample_document(&source, &mut ab, &mut rng, 3).expect("sample");
            let op = synth.evolve(&mut rng);
            let widening = matches!(
                op,
                EvolutionOp::MadeOptional { .. }
                    | EvolutionOp::Widened { .. }
                    | EvolutionOp::AddedOptionalPart { .. }
                    | EvolutionOp::WidenedSimple { .. }
            );
            if widening {
                let target = synth.build(&mut ab);
                assert!(
                    target.accepts_document(&doc),
                    "widening op {op:?} rejected a source document (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn random_edits_apply() {
        let mut rng = SmallRng::seed_from_u64(5);
        let synth = random_schema(&SynthConfig::default(), &mut rng);
        let mut ab = Alphabet::new();
        let schema = synth.build(&mut ab);
        let doc = sample_document(&schema, &mut ab, &mut rng, 4).expect("sample");
        let mut dd = DeltaDoc::new(doc);
        let applied = random_edits(&mut dd, &mut ab, &mut rng, 10);
        assert!(applied > 0);
        // The committed document is still a well-formed tree.
        let committed = dd.committed();
        assert!(committed.node_count() >= 1);
    }
}
