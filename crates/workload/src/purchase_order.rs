//! The paper's experimental workload: purchase-order schemas and documents
//! (Figures 1 and 2, Tables 2 and 3).
//!
//! * [`source_xsd`] — Figure 1a: `billTo` optional (`POType1`).
//! * [`target_xsd`] — Figure 2: the complete target schema, `billTo`
//!   required, `quantity < 100`.
//! * [`source_maxex200_xsd`] — the Experiment 2 source: Figure 2 with
//!   `quantity`'s `maxExclusive` raised to 200.
//! * [`generate_document`] — a purchase order with `n` items, valid with
//!   respect to every schema above (quantities stay below 100).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast_regex::Alphabet;
use schemacast_tree::Doc;

fn po_xsd(bill_min_occurs_zero: bool, quantity_max_exclusive: u32) -> String {
    let bill_min = if bill_min_occurs_zero {
        r#" minOccurs="0""#
    } else {
        ""
    };
    format!(
        r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:complexType name="POType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"{bill_min}/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="{quantity_max_exclusive}"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#
    )
}

/// Figure 1a: the Experiment 1 source schema (`billTo` optional).
pub fn source_xsd() -> String {
    po_xsd(true, 100)
}

/// Figure 2: the target schema of both experiments (`billTo` required,
/// `quantity` `maxExclusive="100"`).
pub fn target_xsd() -> String {
    po_xsd(false, 100)
}

/// The Experiment 2 source: Figure 2 with `maxExclusive` raised to `"200"`.
pub fn source_maxex200_xsd() -> String {
    po_xsd(false, 200)
}

/// Deterministic product names, cycled.
const PRODUCTS: [&str; 8] = [
    "Lawnmower",
    "Baby Monitor",
    "Lapis Necklace",
    "Sturdy Shelves",
    "Garden Gnome",
    "Espresso Machine",
    "Desk Lamp",
    "Mechanical Keyboard",
];

/// Generates a purchase-order document with `n_items` items.
///
/// The document is valid for every schema in this module when
/// `with_billto` is true (quantities are in `1..100`); with
/// `with_billto = false` it is valid only for the Figure 1a source, which
/// is exactly the Experiment 1 rejection scenario.
pub fn generate_document(alphabet: &mut Alphabet, n_items: usize, with_billto: bool) -> Doc {
    let mut rng = SmallRng::seed_from_u64(n_items as u64 ^ 0x5eed);
    generate_document_with(alphabet, n_items, with_billto, |i| {
        // Deterministic-but-varied quantities below 100.
        (rng.gen_range(1..100) + i as u32) % 99 + 1
    })
}

/// Like [`generate_document`], with caller-controlled quantity values —
/// Experiment 2 needs quantities in `1..200` (valid for the maxExclusive-200
/// source, possibly invalid for the target).
pub fn generate_document_with(
    alphabet: &mut Alphabet,
    n_items: usize,
    with_billto: bool,
    mut quantity: impl FnMut(usize) -> u32,
) -> Doc {
    let po = alphabet.intern("purchaseOrder");
    let ship_to = alphabet.intern("shipTo");
    let bill_to = alphabet.intern("billTo");
    let items = alphabet.intern("items");
    let item = alphabet.intern("item");
    let product_name = alphabet.intern("productName");
    let qty = alphabet.intern("quantity");
    let price = alphabet.intern("USPrice");
    let ship_date = alphabet.intern("shipDate");
    let name = alphabet.intern("name");
    let street = alphabet.intern("street");
    let city = alphabet.intern("city");
    let state = alphabet.intern("state");
    let zip = alphabet.intern("zip");
    let country = alphabet.intern("country");

    let mut doc = Doc::new(po);
    let address = |doc: &mut Doc, label, who: &str| {
        let a = doc.add_element(doc.root(), label);
        for (l, v) in [
            (name, who),
            (street, "123 Maple Street"),
            (city, "Mill Valley"),
            (state, "CA"),
            (zip, "90952"),
            (country, "US"),
        ] {
            let e = doc.add_element(a, l);
            doc.add_text(e, v);
        }
    };
    address(&mut doc, ship_to, "Alice Smith");
    if with_billto {
        address(&mut doc, bill_to, "Robert Smith");
    }
    let items_node = doc.add_element(doc.root(), items);
    for i in 0..n_items {
        let it = doc.add_element(items_node, item);
        let e = doc.add_element(it, product_name);
        doc.add_text(e, PRODUCTS[i % PRODUCTS.len()]);
        let e = doc.add_element(it, qty);
        doc.add_text(e, quantity(i).to_string());
        let e = doc.add_element(it, price);
        doc.add_text(e, format!("{}.{:02}", 1 + (i * 7) % 150, (i * 13) % 100));
        if i % 2 == 0 {
            let e = doc.add_element(it, ship_date);
            doc.add_text(e, format!("2004-{:02}-{:02}", 1 + i % 12, 1 + i % 28));
        }
    }
    doc
}

/// Serializes a generated purchase order the way the paper's input files
/// were stored (XML declaration + indentation), for the Table 2 file sizes.
pub fn document_xml(alphabet: &mut Alphabet, n_items: usize) -> String {
    let doc = generate_document(alphabet, n_items, true);
    let xml = doc.to_xml(alphabet);
    schemacast_xml::to_pretty_string(&xml)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::Session;

    #[test]
    fn generated_documents_are_valid_for_all_three_schemas() {
        let mut session = Session::new();
        let source = session.parse_xsd(&source_xsd()).expect("source");
        let target = session.parse_xsd(&target_xsd()).expect("target");
        let wide = session.parse_xsd(&source_maxex200_xsd()).expect("wide");
        let doc = generate_document(&mut session.alphabet, 10, true);
        assert!(source.accepts_document(&doc));
        assert!(target.accepts_document(&doc));
        assert!(wide.accepts_document(&doc));

        let no_bill = generate_document(&mut session.alphabet, 10, false);
        assert!(source.accepts_document(&no_bill));
        assert!(!target.accepts_document(&no_bill));
    }

    #[test]
    fn quantities_between_100_and_200_split_the_schemas() {
        let mut session = Session::new();
        let target = session.parse_xsd(&target_xsd()).expect("target");
        let wide = session.parse_xsd(&source_maxex200_xsd()).expect("wide");
        let doc =
            generate_document_with(&mut session.alphabet, 5, true, |i| 100 + (i as u32 % 100));
        assert!(wide.accepts_document(&doc));
        assert!(!target.accepts_document(&doc));
    }

    #[test]
    fn file_sizes_track_table2_shape() {
        let mut ab = Alphabet::new();
        let s2 = document_xml(&mut ab, 2).len();
        let s100 = document_xml(&mut ab, 100).len();
        let s1000 = document_xml(&mut ab, 1000).len();
        // Affine growth: size(n) ≈ base + per_item·n.
        let per_item = (s1000 - s100) as f64 / 900.0;
        let base = s100 as f64 - 100.0 * per_item;
        assert!(per_item > 100.0 && per_item < 400.0, "per_item={per_item}");
        assert!(base > 300.0 && base < 2000.0, "base={base}");
        assert!(s2 < 3000);
    }

    #[test]
    fn documents_parse_back() {
        let mut ab = Alphabet::new();
        let xml_text = document_xml(&mut ab, 3);
        let parsed = schemacast_xml::parse_document(&xml_text).expect("reparse");
        assert_eq!(parsed.root.name, "purchaseOrder");
    }
}
