//! A second realistic workload: an Atom-like news-feed schema family.
//!
//! Where the purchase-order workload mirrors the paper's experiments, this
//! family exercises the constructs those schemas do not: choices
//! (`summary | content`), bounded repetition (`category{0,5}`), optional
//! heads and *mixed* widening/narrowing in one evolution step —
//! representative of real-world feed-format drift.
//!
//! Versions:
//! * **v1** — `feed(meta, entry*)`, entries carry `summary | content`,
//!   unbounded categories.
//! * **v2** — `entry+` (at least one entry: narrowing), `meta` gains an
//!   optional `generator` (widening), categories capped at 5 (narrowing),
//!   `content` only (narrowing of the choice).
//!
//! Both versions exist as XSD and DTD text, plus a direct generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schemacast_regex::Alphabet;
use schemacast_tree::Doc;

/// XSD text for feed version 1.
pub fn v1_xsd() -> String {
    feed_xsd(false)
}

/// XSD text for feed version 2 (see module docs for the deltas).
pub fn v2_xsd() -> String {
    feed_xsd(true)
}

fn feed_xsd(v2: bool) -> String {
    let entry_occurs = if v2 {
        r#" minOccurs="1" maxOccurs="unbounded""#
    } else {
        r#" minOccurs="0" maxOccurs="unbounded""#
    };
    let generator = if v2 {
        r#"<xsd:element name="generator" type="xsd:string" minOccurs="0"/>"#
    } else {
        ""
    };
    let body = if v2 {
        r#"<xsd:element name="content" type="xsd:string"/>"#
    } else {
        r#"<xsd:choice>
             <xsd:element name="summary" type="xsd:string"/>
             <xsd:element name="content" type="xsd:string"/>
           </xsd:choice>"#
    };
    let category_occurs = if v2 {
        r#" minOccurs="0" maxOccurs="5""#
    } else {
        r#" minOccurs="0" maxOccurs="unbounded""#
    };
    format!(
        r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="feed" type="Feed"/>
  <xsd:complexType name="Feed">
    <xsd:sequence>
      <xsd:element name="meta" type="Meta"/>
      <xsd:element name="entry" type="Entry"{entry_occurs}/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Meta">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:element name="updated" type="xsd:date"/>
      <xsd:element name="author" type="Author" minOccurs="0"/>
      {generator}
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Author">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="email" type="xsd:string" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Entry">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:element name="id" type="xsd:string"/>
      <xsd:element name="updated" type="xsd:date"/>
      {body}
      <xsd:element name="category" type="xsd:string"{category_occurs}/>
      <xsd:element name="author" type="Author" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#
    )
}

/// DTD text for feed version 1.
pub fn v1_dtd() -> &'static str {
    r#"
    <!ELEMENT feed (meta, entry*)>
    <!ELEMENT meta (title, updated, author?)>
    <!ELEMENT author (name, email?)>
    <!ELEMENT entry (title, id, updated, (summary | content), category*, author?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT updated (#PCDATA)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT email (#PCDATA)>
    <!ELEMENT id (#PCDATA)>
    <!ELEMENT summary (#PCDATA)>
    <!ELEMENT content (#PCDATA)>
    <!ELEMENT category (#PCDATA)>
    "#
}

/// DTD text for feed version 2.
pub fn v2_dtd() -> &'static str {
    r#"
    <!ELEMENT feed (meta, entry+)>
    <!ELEMENT meta (title, updated, author?, generator?)>
    <!ELEMENT author (name, email?)>
    <!ELEMENT entry (title, id, updated, content, category{0,5}, author?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT updated (#PCDATA)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT email (#PCDATA)>
    <!ELEMENT id (#PCDATA)>
    <!ELEMENT generator (#PCDATA)>
    <!ELEMENT content (#PCDATA)>
    <!ELEMENT category (#PCDATA)>
    "#
}

/// Knobs for the feed generator.
#[derive(Debug, Clone, Copy)]
pub struct FeedConfig {
    /// Number of entries.
    pub entries: usize,
    /// Probability an entry uses `content` rather than `summary`
    /// (v2 requires `content`, so 1.0 generates v2-compatible bodies).
    pub content_prob: f64,
    /// Maximum categories per entry (sampled 0..=max).
    pub max_categories: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            entries: 10,
            content_prob: 0.5,
            max_categories: 3,
            seed: 42,
        }
    }
}

/// Generates a feed valid for **v1**. With `content_prob = 1.0` and
/// `max_categories ≤ 5` and `entries ≥ 1`, the document is also v2-valid.
pub fn generate_feed(alphabet: &mut Alphabet, cfg: &FeedConfig) -> Doc {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let feed = alphabet.intern("feed");
    let meta = alphabet.intern("meta");
    let title = alphabet.intern("title");
    let updated = alphabet.intern("updated");
    let author = alphabet.intern("author");
    let name = alphabet.intern("name");
    let email = alphabet.intern("email");
    let entry = alphabet.intern("entry");
    let id = alphabet.intern("id");
    let summary = alphabet.intern("summary");
    let content = alphabet.intern("content");
    let category = alphabet.intern("category");

    let mut doc = Doc::new(feed);
    let m = doc.add_element(doc.root(), meta);
    let t = doc.add_element(m, title);
    doc.add_text(t, "Example Feed");
    let u = doc.add_element(m, updated);
    doc.add_text(u, "2004-03-14");
    if rng.gen_bool(0.7) {
        let a = doc.add_element(m, author);
        let n = doc.add_element(a, name);
        doc.add_text(n, "Feed Owner");
        if rng.gen_bool(0.5) {
            let e = doc.add_element(a, email);
            doc.add_text(e, "owner@example.com");
        }
    }
    for i in 0..cfg.entries {
        let en = doc.add_element(doc.root(), entry);
        let t = doc.add_element(en, title);
        doc.add_text(t, format!("Entry {i}"));
        let d = doc.add_element(en, id);
        doc.add_text(d, format!("urn:id:{i}"));
        let u = doc.add_element(en, updated);
        doc.add_text(u, format!("2004-{:02}-{:02}", 1 + i % 12, 1 + i % 28));
        let body = if rng.gen_bool(cfg.content_prob) {
            content
        } else {
            summary
        };
        let b = doc.add_element(en, body);
        doc.add_text(b, "Lorem ipsum dolor sit amet.");
        let n_cat = rng.gen_range(0..=cfg.max_categories);
        for c in 0..n_cat {
            let ce = doc.add_element(en, category);
            doc.add_text(ce, format!("topic-{c}"));
        }
        if rng.gen_bool(0.3) {
            let a = doc.add_element(en, author);
            let n = doc.add_element(a, name);
            doc.add_text(n, format!("Author {i}"));
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemacast_schema::Session;

    #[test]
    fn v1_documents_validate_against_v1() {
        let mut session = Session::new();
        let v1 = session.parse_xsd(&v1_xsd()).expect("v1");
        let doc = generate_feed(&mut session.alphabet, &FeedConfig::default());
        assert!(v1.accepts_document(&doc));
    }

    #[test]
    fn v2_compatibility_depends_on_generation_knobs() {
        let mut session = Session::new();
        let v1 = session.parse_xsd(&v1_xsd()).expect("v1");
        let v2 = session.parse_xsd(&v2_xsd()).expect("v2");

        // content-only, ≤5 categories, ≥1 entry: valid under both.
        let good = generate_feed(
            &mut session.alphabet,
            &FeedConfig {
                entries: 5,
                content_prob: 1.0,
                max_categories: 4,
                seed: 1,
            },
        );
        assert!(v1.accepts_document(&good));
        assert!(v2.accepts_document(&good));

        // Zero entries: v1 only.
        let empty = generate_feed(
            &mut session.alphabet,
            &FeedConfig {
                entries: 0,
                ..Default::default()
            },
        );
        assert!(v1.accepts_document(&empty));
        assert!(!v2.accepts_document(&empty));

        // Summary bodies: v1 only.
        let summaries = generate_feed(
            &mut session.alphabet,
            &FeedConfig {
                entries: 3,
                content_prob: 0.0,
                max_categories: 2,
                seed: 7,
            },
        );
        assert!(v1.accepts_document(&summaries));
        assert!(!v2.accepts_document(&summaries));

        // Too many categories: v1 only.
        let crowded = generate_feed(
            &mut session.alphabet,
            &FeedConfig {
                entries: 2,
                content_prob: 1.0,
                max_categories: 9,
                seed: 1304, // seed chosen so some entry has > 5 categories
            },
        );
        assert!(v1.accepts_document(&crowded));
        if crowded.node_count() > 0 {
            // The category count is random; only assert v2-invalidity when
            // an entry actually exceeded 5.
            let cat = session.alphabet.lookup("category").unwrap();
            let max_cats = crowded
                .preorder_iter()
                .filter(|&n| crowded.label(n) == session.alphabet.lookup("entry"))
                .map(|e| {
                    crowded
                        .children(e)
                        .iter()
                        .filter(|&&c| crowded.label(c) == Some(cat))
                        .count()
                })
                .max()
                .unwrap_or(0);
            assert_eq!(v2.accepts_document(&crowded), max_cats <= 5);
        }
    }

    #[test]
    fn dtd_versions_agree_with_xsd_versions() {
        let mut session = Session::new();
        let v1_x = session.parse_xsd(&v1_xsd()).expect("v1 xsd");
        let v2_x = session.parse_xsd(&v2_xsd()).expect("v2 xsd");
        let v1_d = session.parse_dtd(v1_dtd(), Some("feed")).expect("v1 dtd");
        let v2_d = session.parse_dtd(v2_dtd(), Some("feed")).expect("v2 dtd");
        assert!(v1_d.is_dtd_style());
        for seed in 0..10 {
            let doc = generate_feed(
                &mut session.alphabet,
                &FeedConfig {
                    entries: seed as usize % 4,
                    content_prob: 0.5,
                    max_categories: 7,
                    seed,
                },
            );
            // The DTD abstracts the XSD's date type to #PCDATA; structural
            // verdicts must still agree on structurally generated docs.
            assert_eq!(
                v1_x.accepts_document(&doc),
                v1_d.accepts_document(&doc),
                "v1 seed {seed}"
            );
            assert_eq!(
                v2_x.accepts_document(&doc),
                v2_d.accepts_document(&doc),
                "v2 seed {seed}"
            );
        }
    }
}
