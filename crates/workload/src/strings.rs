//! String-level workloads for the §4 benchmarks: random content-model
//! regexes, related DFA pairs, member-string sampling, and edit scripts
//! with controllable locality (prefix / middle / suffix).

use rand::Rng;
use schemacast_automata::Dfa;
use schemacast_regex::{Regex, Sym};

/// Samples a random regular expression over `alphabet_size` symbols.
///
/// Produces content-model-shaped expressions: sequences and choices of
/// symbols decorated with `?`/`*`/`+`, nested up to `depth`.
pub fn random_regex(rng: &mut impl Rng, alphabet_size: u32, depth: usize) -> Regex {
    debug_assert!(alphabet_size > 0);
    if depth == 0 || rng.gen_bool(0.4) {
        let r = Regex::sym(Sym(rng.gen_range(0..alphabet_size)));
        return decorate(rng, r);
    }
    let n = rng.gen_range(2..=3);
    let parts: Vec<Regex> = (0..n)
        .map(|_| random_regex(rng, alphabet_size, depth - 1))
        .collect();
    let combined = if rng.gen_bool(0.5) {
        Regex::concat(parts)
    } else {
        Regex::alt(parts)
    };
    decorate(rng, combined)
}

fn decorate(rng: &mut impl Rng, r: Regex) -> Regex {
    match rng.gen_range(0..6) {
        0 => Regex::opt(r),
        1 => Regex::star(r),
        2 => Regex::plus(r),
        _ => r,
    }
}

/// Generates a *related* pair of expressions: the second is a structural
/// mutation of the first (symbol swap, modifier change, or appended
/// optional part) — modelling schema evolution at the content-model level.
pub fn related_regex_pair(rng: &mut impl Rng, alphabet_size: u32, depth: usize) -> (Regex, Regex) {
    let a = random_regex(rng, alphabet_size, depth);
    let b = mutate_regex(&a, rng, alphabet_size);
    (a, b)
}

/// One random structural mutation of a regex.
pub fn mutate_regex(r: &Regex, rng: &mut impl Rng, alphabet_size: u32) -> Regex {
    match rng.gen_range(0..4) {
        0 => swap_one_symbol(r, rng, alphabet_size),
        1 => change_one_modifier(r, rng),
        2 => Regex::concat(vec![
            r.clone(),
            Regex::opt(Regex::sym(Sym(rng.gen_range(0..alphabet_size)))),
        ]),
        _ => Regex::alt(vec![
            r.clone(),
            Regex::sym(Sym(rng.gen_range(0..alphabet_size))),
        ]),
    }
}

fn swap_one_symbol(r: &Regex, rng: &mut impl Rng, alphabet_size: u32) -> Regex {
    match r {
        Regex::Sym(_) if rng.gen_bool(0.5) => Regex::sym(Sym(rng.gen_range(0..alphabet_size))),
        Regex::Concat(ps) => Regex::concat(
            ps.iter()
                .map(|p| swap_one_symbol(p, rng, alphabet_size))
                .collect(),
        ),
        Regex::Alt(ps) => Regex::alt(
            ps.iter()
                .map(|p| swap_one_symbol(p, rng, alphabet_size))
                .collect(),
        ),
        Regex::Star(p) => Regex::star(swap_one_symbol(p, rng, alphabet_size)),
        Regex::Plus(p) => Regex::plus(swap_one_symbol(p, rng, alphabet_size)),
        Regex::Opt(p) => Regex::opt(swap_one_symbol(p, rng, alphabet_size)),
        other => other.clone(),
    }
}

fn change_one_modifier(r: &Regex, rng: &mut impl Rng) -> Regex {
    match r {
        Regex::Star(p) => Regex::plus((**p).clone()),
        Regex::Plus(p) => Regex::star((**p).clone()),
        Regex::Opt(p) => (**p).clone(),
        Regex::Sym(s) => {
            if rng.gen_bool(0.5) {
                Regex::opt(Regex::sym(*s))
            } else {
                Regex::plus(Regex::sym(*s))
            }
        }
        Regex::Concat(ps) if !ps.is_empty() => {
            let i = rng.gen_range(0..ps.len());
            let mut out = ps.clone();
            out[i] = change_one_modifier(&ps[i], rng);
            Regex::concat(out)
        }
        Regex::Alt(ps) if !ps.is_empty() => {
            let i = rng.gen_range(0..ps.len());
            let mut out = ps.clone();
            out[i] = change_one_modifier(&ps[i], rng);
            Regex::alt(out)
        }
        other => other.clone(),
    }
}

/// Samples a member of `L(dfa)` of roughly `target_len` symbols.
///
/// Returns `None` if the language is empty. The walk only takes transitions
/// into co-accessible states; past the hard cap it follows shortest paths to
/// an accepting state, so termination is guaranteed.
pub fn sample_member(dfa: &Dfa, rng: &mut impl Rng, target_len: usize) -> Option<Vec<Sym>> {
    let live = dfa.coaccessible();
    if !live.contains(dfa.start() as usize) {
        return None;
    }
    // BFS distance-to-final for the bail-out phase.
    let n = dfa.state_count();
    let mut dist = vec![usize::MAX; n];
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for q in 0..n as u32 {
        for s in 0..dfa.alphabet_len() {
            let t = dfa.step(q, Sym(s as u32));
            rev[t as usize].push(q);
        }
    }
    let mut queue = std::collections::VecDeque::new();
    for q in 0..n as u32 {
        if dfa.is_final(q) {
            dist[q as usize] = 0;
            queue.push_back(q);
        }
    }
    while let Some(q) = queue.pop_front() {
        for &p in &rev[q as usize] {
            if dist[p as usize] == usize::MAX {
                dist[p as usize] = dist[q as usize] + 1;
                queue.push_back(p);
            }
        }
    }

    let hard_cap = target_len * 2 + 16;
    let mut out = Vec::with_capacity(target_len);
    let mut q = dfa.start();
    loop {
        let finishing = out.len() >= hard_cap;
        if dfa.is_final(q) && (out.len() >= target_len || finishing) {
            return Some(out);
        }
        // Candidate transitions into live states.
        let mut candidates: Vec<(Sym, u32)> = Vec::new();
        for s in 0..dfa.alphabet_len() {
            let sym = Sym(s as u32);
            let t = dfa.step(q, sym);
            if live.contains(t as usize) {
                candidates.push((sym, t));
            }
        }
        if candidates.is_empty() {
            debug_assert!(dfa.is_final(q), "live non-final state must have a way out");
            return Some(out);
        }
        let (sym, t) = if finishing {
            *candidates
                .iter()
                .min_by_key(|(_, t)| dist[*t as usize])
                .expect("non-empty")
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        out.push(sym);
        q = t;
    }
}

/// Where an edit script concentrates its changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditLocality {
    /// Changes near the start of the string.
    Prefix,
    /// Changes around the middle.
    Middle,
    /// Changes near the end (append-heavy).
    Suffix,
}

/// Applies `n_edits` random point edits (insert / delete / replace) to a
/// copy of `s`, concentrated per `locality`, drawing symbols below
/// `alphabet_size`.
pub fn edit_string(
    s: &[Sym],
    rng: &mut impl Rng,
    n_edits: usize,
    locality: EditLocality,
    alphabet_size: u32,
) -> Vec<Sym> {
    let mut out = s.to_vec();
    for _ in 0..n_edits {
        let len = out.len();
        let window = (len / 8).max(2);
        let center = match locality {
            EditLocality::Prefix => 0,
            EditLocality::Middle => len / 2,
            EditLocality::Suffix => len.saturating_sub(1),
        };
        let lo = center.saturating_sub(window / 2);
        let hi = (lo + window).min(len);
        let pos = if lo >= hi {
            0
        } else {
            rng.gen_range(lo..hi.max(lo + 1))
        };
        match rng.gen_range(0..3) {
            0 if !out.is_empty() => {
                let p = pos.min(out.len() - 1);
                out[p] = Sym(rng.gen_range(0..alphabet_size));
            }
            1 => {
                let p = pos.min(out.len());
                out.insert(p, Sym(rng.gen_range(0..alphabet_size)));
            }
            _ if !out.is_empty() => {
                let p = pos.min(out.len() - 1);
                out.remove(p);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_members_are_members() {
        let mut rng = SmallRng::seed_from_u64(7);
        for seed in 0..30 {
            let mut r_rng = SmallRng::seed_from_u64(seed);
            let r = random_regex(&mut r_rng, 4, 3);
            let dfa = Dfa::from_regex(&r, 4).expect("compile");
            match sample_member(&dfa, &mut rng, 12) {
                Some(s) => {
                    assert!(dfa.accepts(&s), "regex seed {seed}, sample {s:?}");
                }
                None => assert!(dfa.is_empty_language()),
            }
        }
    }

    #[test]
    fn sample_lengths_track_target() {
        let mut rng = SmallRng::seed_from_u64(1);
        // (a | b)* — can reach any length.
        let r = Regex::star(Regex::alt(vec![Regex::sym(Sym(0)), Regex::sym(Sym(1))]));
        let dfa = Dfa::from_regex(&r, 2).expect("compile");
        let lens: Vec<usize> = (0..50)
            .map(|_| sample_member(&dfa, &mut rng, 40).expect("nonempty").len())
            .collect();
        let avg = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(avg > 20.0 && avg < 90.0, "avg={avg}");
    }

    #[test]
    fn empty_language_yields_none() {
        let dfa = Dfa::from_regex(&Regex::Empty, 2).expect("compile");
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(sample_member(&dfa, &mut rng, 5).is_none());
    }

    #[test]
    fn edit_localities_differ() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s: Vec<Sym> = (0..100).map(|i| Sym(i % 3)).collect();
        let pre = edit_string(&s, &mut rng, 3, EditLocality::Prefix, 3);
        let suf = edit_string(&s, &mut rng, 3, EditLocality::Suffix, 3);
        // A prefix edit keeps a long common suffix; a suffix edit keeps a
        // long common prefix.
        let common_suffix = s
            .iter()
            .rev()
            .zip(pre.iter().rev())
            .take_while(|(a, b)| a == b)
            .count();
        assert!(common_suffix > 50, "common_suffix={common_suffix}");
        let common_prefix = s.iter().zip(suf.iter()).take_while(|(a, b)| a == b).count();
        assert!(common_prefix > 50, "common_prefix={common_prefix}");
    }

    #[test]
    fn mutations_stay_compilable() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..20 {
            let (a, b) = related_regex_pair(&mut rng, 5, 3);
            let da = Dfa::from_regex(&a, 5).expect("a compiles");
            let db = Dfa::from_regex(&b, 5).expect("b compiles");
            let _ = (da.state_count(), db.state_count());
        }
    }
}
