#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Workload generators for the EDBT 2004 experiments and beyond.
//!
//! * [`purchase_order`] — the paper's Figure 1/2 schemas and the 2–1000-item
//!   purchase-order documents behind Tables 2–3 and Figures 3a/3b.
//! * [`synth`] — random abstract schemas, realistic schema *evolutions*
//!   (make-optional, narrow-facet, …), random valid documents, and random
//!   edit scripts — the fuel for property tests and ablations.
//! * [`strings`] — §4-level workloads: random content-model regexes,
//!   related DFA pairs, member sampling, and locality-controlled string
//!   edits.
//! * [`feed`] — an Atom-like feed schema family (choices, bounded
//!   repetition, mixed widening/narrowing evolutions), as XSD and DTD.

pub mod feed;
pub mod purchase_order;
pub mod strings;
pub mod synth;
