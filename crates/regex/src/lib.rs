#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Regular expressions over element-label alphabets.
//!
//! This crate is the bottom layer of the `schemacast` workspace. It provides:
//!
//! * [`Alphabet`] — an interner mapping element labels (strings) to dense
//!   [`Sym`] indices shared by every automaton and schema in a revalidation
//!   session,
//! * [`Regex`] — an abstract syntax tree for the content-model regular
//!   expressions of DTDs and XML Schemas (Definition 1 of the paper uses
//!   `regexp_τ` over Σ),
//! * a [`parser`] module for a DTD-style textual syntax,
//! * the [Glushkov position automaton](crate::glushkov) and the
//!   *one-unambiguity* test of Brüggemann-Klein and Wood, which XML requires
//!   of every content model and which the paper's optimality results rely on
//!   (deterministic content models ⇒ deterministic automata).
//!
//! The AST also implements a Brzozowski-derivative matcher
//! ([`Regex::matches`]) used as a test oracle for the automata crate.

pub mod alphabet;
pub mod ast;
pub mod display;
pub mod glushkov;
pub mod parser;

pub use alphabet::{Alphabet, Sym, SymCache};
pub use ast::Regex;
pub use glushkov::{GlushkovNfa, GlushkovSets};
pub use parser::{parse_regex, ParseError};
