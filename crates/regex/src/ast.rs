//! The regular-expression AST for content models.
//!
//! Content models of DTDs and XML Schemas are regular expressions over the
//! element-label alphabet Σ. XML Schema particles add bounded repetition
//! (`minOccurs`/`maxOccurs`), represented here by [`Regex::Repeat`] and
//! expanded away before automaton construction.

use crate::alphabet::Sym;

/// A regular expression over interned symbols.
///
/// Constructed either through the smart constructors ([`Regex::concat`],
/// [`Regex::alt`], …), the [parser](crate::parser), or the schema compilers.
/// Smart constructors perform light simplification (flattening, identity and
/// annihilator elimination) so that equivalent schemas produce small, similar
/// ASTs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language ∅ (matches nothing).
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single symbol.
    Sym(Sym),
    /// Concatenation, in order. Invariant: length ≥ 2, no nested `Concat`.
    Concat(Vec<Regex>),
    /// Alternation. Invariant: length ≥ 2, no nested `Alt`.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
    /// Bounded repetition `r{min, max}`; `max == None` means unbounded.
    /// Used for XSD `minOccurs`/`maxOccurs`.
    Repeat {
        /// The repeated expression.
        inner: Box<Regex>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` = unbounded.
        max: Option<u32>,
    },
}

/// Cap on `maxOccurs` expansion, to bound Glushkov automaton size.
/// (Realistic schemas use small bounds or `unbounded`.)
pub const MAX_REPEAT_EXPANSION: u32 = 4096;

impl Regex {
    /// A single-symbol expression.
    pub fn sym(s: Sym) -> Regex {
        Regex::Sym(s)
    }

    /// Smart concatenation: flattens nested `Concat`, drops `Epsilon`,
    /// annihilates on `Empty`.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Smart alternation: flattens nested `Alt`, drops `Empty`, dedups
    /// syntactically equal branches.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for q in inner {
                        if !out.contains(&q) {
                            out.push(q);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Smart star: `∅* = ε* = ε`; collapses nested closures.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Plus(inner) | Regex::Opt(inner) => Regex::Star(inner),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// Smart plus: `∅+ = ∅`, `ε+ = ε`, `(r*)+ = r*`.
    pub fn plus(r: Regex) -> Regex {
        match r {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Opt(inner) => Regex::Star(inner),
            Regex::Plus(inner) => Regex::Plus(inner),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Smart option: `∅? = ε? = ε`, `(r*)? = r*`, `(r+)? = r*`.
    pub fn opt(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Plus(inner) => Regex::Star(inner),
            Regex::Opt(inner) => Regex::Opt(inner),
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// Bounded repetition with the usual simplifications for trivial bounds.
    pub fn repeat(r: Regex, min: u32, max: Option<u32>) -> Regex {
        match (min, max) {
            (_, Some(mx)) if mx < min => Regex::Empty,
            (0, Some(0)) => Regex::Epsilon,
            (0, None) => Regex::star(r),
            (1, None) => Regex::plus(r),
            (0, Some(1)) => Regex::opt(r),
            (1, Some(1)) => r,
            _ => Regex::Repeat {
                inner: Box::new(r),
                min,
                max,
            },
        }
    }

    /// Whether ε ∈ L(self).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon => true,
            Regex::Concat(ps) => ps.iter().all(Regex::nullable),
            Regex::Alt(ps) => ps.iter().any(Regex::nullable),
            Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Plus(inner) => inner.nullable(),
            Regex::Repeat { inner, min, .. } => *min == 0 || inner.nullable(),
        }
    }

    /// Whether L(self) = ∅ (syntactic check; exact thanks to the smart
    /// constructors never hiding `Empty` inside other nodes, and exact for
    /// hand-built ASTs too since we recurse).
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Sym(_) | Regex::Star(_) | Regex::Opt(_) => false,
            Regex::Concat(ps) => ps.iter().any(Regex::is_empty_language),
            Regex::Alt(ps) => ps.iter().all(Regex::is_empty_language),
            Regex::Plus(inner) => inner.is_empty_language(),
            Regex::Repeat { inner, min, .. } => *min > 0 && inner.is_empty_language(),
        }
    }

    /// Collects the set of symbols used (Σ_τ in the paper), deduplicated,
    /// in first-occurrence order.
    pub fn symbols(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Sym>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            Regex::Concat(ps) | Regex::Alt(ps) => {
                for p in ps {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.collect_symbols(out),
            Regex::Repeat { inner, .. } => inner.collect_symbols(out),
        }
    }

    /// Rewrites `Repeat` nodes into `Concat`/`Opt`/`Star` combinations so
    /// that position-based constructions only see the classical operators.
    ///
    /// `r{m,n}` becomes `r^m · (r?)^{n-m}` and `r{m,}` becomes `r^m · r*`.
    ///
    /// # Errors
    /// Returns `Err` if an expansion would exceed
    /// [`MAX_REPEAT_EXPANSION`] copies.
    pub fn expand_repeats(&self) -> Result<Regex, RepeatOverflow> {
        Ok(match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => Regex::Sym(*s),
            Regex::Concat(ps) => Regex::concat(
                ps.iter()
                    .map(Regex::expand_repeats)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Regex::Alt(ps) => Regex::alt(
                ps.iter()
                    .map(Regex::expand_repeats)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Regex::Star(r) => Regex::star(r.expand_repeats()?),
            Regex::Plus(r) => Regex::plus(r.expand_repeats()?),
            Regex::Opt(r) => Regex::opt(r.expand_repeats()?),
            Regex::Repeat { inner, min, max } => {
                let body = inner.expand_repeats()?;
                let copies = max.unwrap_or(*min).max(*min);
                if copies > MAX_REPEAT_EXPANSION {
                    return Err(RepeatOverflow { requested: copies });
                }
                let mut parts = Vec::with_capacity(copies as usize + 1);
                for _ in 0..*min {
                    parts.push(body.clone());
                }
                match max {
                    None => parts.push(Regex::star(body)),
                    Some(mx) => {
                        for _ in *min..*mx {
                            parts.push(Regex::opt(body.clone()));
                        }
                    }
                }
                Regex::concat(parts)
            }
        })
    }

    /// Brzozowski derivative of the language with respect to `s`.
    ///
    /// This is the reference semantics used by property tests; automata
    /// constructions are checked against [`Regex::matches`].
    pub fn derivative(&self, s: Sym) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Sym(t) => {
                if *t == s {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(ps) => {
                // d(p1 p2 … pn) = d(p1) p2…pn  |  [p1 nullable] d(p2…pn)
                let head = &ps[0];
                let tail = Regex::concat(ps[1..].to_vec());
                let first = Regex::concat(vec![head.derivative(s), tail.clone()]);
                if head.nullable() {
                    Regex::alt(vec![first, tail.derivative(s)])
                } else {
                    first
                }
            }
            Regex::Alt(ps) => Regex::alt(ps.iter().map(|p| p.derivative(s)).collect()),
            Regex::Star(r) => Regex::concat(vec![r.derivative(s), Regex::Star(r.clone())]),
            Regex::Plus(r) => Regex::concat(vec![r.derivative(s), Regex::star((**r).clone())]),
            Regex::Opt(r) => r.derivative(s),
            Regex::Repeat { inner, min, max } => {
                let rest = Regex::repeat(
                    (**inner).clone(),
                    min.saturating_sub(1),
                    max.map(|m| m.saturating_sub(1)),
                );
                let first = Regex::concat(vec![inner.derivative(s), rest]);
                if *min == 0 && inner.nullable() {
                    // ε is already covered; derivative of the ε branch is ∅.
                    first
                } else {
                    first
                }
            }
        }
    }

    /// Reference matcher via repeated derivatives. Exponential-free for the
    /// small inputs used in tests, but not intended for production paths —
    /// compile to a DFA instead.
    pub fn matches(&self, input: &[Sym]) -> bool {
        let mut r = self.clone();
        for &s in input {
            r = r.derivative(s);
            if matches!(r, Regex::Empty) {
                return false;
            }
        }
        r.nullable()
    }

    /// The mirror-image expression recognizing the reversed language.
    pub fn reverse(&self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => Regex::Sym(*s),
            Regex::Concat(ps) => Regex::concat(ps.iter().rev().map(Regex::reverse).collect()),
            Regex::Alt(ps) => Regex::alt(ps.iter().map(Regex::reverse).collect()),
            Regex::Star(r) => Regex::star(r.reverse()),
            Regex::Plus(r) => Regex::plus(r.reverse()),
            Regex::Opt(r) => Regex::opt(r.reverse()),
            Regex::Repeat { inner, min, max } => Regex::repeat(inner.reverse(), *min, *max),
        }
    }
}

/// Error returned when a bounded repetition is too large to expand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatOverflow {
    /// The number of copies the expansion would have created.
    pub requested: u32,
}

impl std::fmt::Display for RepeatOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bounded repetition requires {} copies, exceeding the limit of {}",
            self.requested, MAX_REPEAT_EXPANSION
        )
    }
}

impl std::error::Error for RepeatOverflow {}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn smart_concat_flattens_and_simplifies() {
        let r = Regex::concat(vec![
            Regex::Epsilon,
            Regex::sym(s(0)),
            Regex::concat(vec![Regex::sym(s(1)), Regex::sym(s(2))]),
        ]);
        assert_eq!(
            r,
            Regex::Concat(vec![Regex::sym(s(0)), Regex::sym(s(1)), Regex::sym(s(2))])
        );
        assert_eq!(
            Regex::concat(vec![Regex::sym(s(0)), Regex::Empty]),
            Regex::Empty
        );
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
    }

    #[test]
    fn smart_alt_dedups() {
        let r = Regex::alt(vec![Regex::sym(s(0)), Regex::sym(s(0)), Regex::Empty]);
        assert_eq!(r, Regex::sym(s(0)));
    }

    #[test]
    fn nullable_cases() {
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::sym(s(0)).nullable());
        assert!(Regex::star(Regex::sym(s(0))).nullable());
        assert!(!Regex::plus(Regex::sym(s(0))).nullable());
        assert!(Regex::opt(Regex::sym(s(0))).nullable());
        assert!(Regex::repeat(Regex::sym(s(0)), 0, Some(3)).nullable());
        assert!(!Regex::repeat(Regex::sym(s(0)), 2, Some(3)).nullable());
    }

    #[test]
    fn derivative_matcher_basics() {
        // (a (b | c)* d)
        let r = Regex::concat(vec![
            Regex::sym(s(0)),
            Regex::star(Regex::alt(vec![Regex::sym(s(1)), Regex::sym(s(2))])),
            Regex::sym(s(3)),
        ]);
        assert!(r.matches(&[s(0), s(3)]));
        assert!(r.matches(&[s(0), s(1), s(2), s(1), s(3)]));
        assert!(!r.matches(&[s(0)]));
        assert!(!r.matches(&[s(3)]));
        assert!(!r.matches(&[]));
    }

    #[test]
    fn repeat_semantics_via_matches() {
        let r = Regex::repeat(Regex::sym(s(0)), 2, Some(4));
        assert!(!r.matches(&[s(0)]));
        assert!(r.matches(&[s(0), s(0)]));
        assert!(r.matches(&[s(0), s(0), s(0), s(0)]));
        assert!(!r.matches(&[s(0); 5]));

        let unbounded = Regex::repeat(Regex::sym(s(0)), 3, None);
        assert!(!unbounded.matches(&[s(0); 2]));
        assert!(unbounded.matches(&[s(0); 3]));
        assert!(unbounded.matches(&[s(0); 9]));
    }

    #[test]
    fn expand_repeats_preserves_language() {
        let r = Regex::repeat(
            Regex::alt(vec![Regex::sym(s(0)), Regex::sym(s(1))]),
            1,
            Some(3),
        );
        let e = r.expand_repeats().expect("small bound");
        for input in [
            vec![],
            vec![s(0)],
            vec![s(1), s(0)],
            vec![s(0), s(0), s(1)],
            vec![s(0); 4],
        ] {
            assert_eq!(r.matches(&input), e.matches(&input), "input {input:?}");
        }
    }

    #[test]
    fn expand_repeats_overflow() {
        let r = Regex::repeat(Regex::sym(s(0)), 0, Some(MAX_REPEAT_EXPANSION + 1));
        assert!(r.expand_repeats().is_err());
    }

    #[test]
    fn reverse_reverses() {
        let r = Regex::concat(vec![
            Regex::sym(s(0)),
            Regex::sym(s(1)),
            Regex::opt(Regex::sym(s(2))),
        ]);
        let rev = r.reverse();
        assert!(rev.matches(&[s(1), s(0)]));
        assert!(rev.matches(&[s(2), s(1), s(0)]));
        assert!(!rev.matches(&[s(0), s(1)]));
    }

    #[test]
    fn empty_language_detection() {
        assert!(Regex::Empty.is_empty_language());
        assert!(Regex::Concat(vec![Regex::sym(s(0)), Regex::Empty]).is_empty_language());
        assert!(!Regex::star(Regex::Empty).is_empty_language());
        assert!(Regex::Repeat {
            inner: Box::new(Regex::Empty),
            min: 1,
            max: None
        }
        .is_empty_language());
    }

    #[test]
    fn symbols_dedup_in_order() {
        let r = Regex::concat(vec![
            Regex::sym(s(2)),
            Regex::alt(vec![Regex::sym(s(1)), Regex::sym(s(2))]),
        ]);
        assert_eq!(r.symbols(), vec![s(2), s(1)]);
    }
}
