//! Glushkov position automata and the one-unambiguity test.
//!
//! The Glushkov (position) automaton of a regular expression has one state
//! per symbol *occurrence* plus a start state, and is deterministic exactly
//! when the expression is *one-unambiguous* in the sense of Brüggemann-Klein
//! and Wood — the determinism condition that both DTDs and XML Schema impose
//! on content models and that the paper's §5 optimality argument relies on.

use crate::alphabet::Sym;
use crate::ast::{Regex, RepeatOverflow};

/// A position in the linearized regular expression (0-based).
pub type PosId = usize;

/// The classical `nullable` / `first` / `last` / `follow` sets of a regular
/// expression, over positions.
#[derive(Debug, Clone)]
pub struct GlushkovSets {
    /// Whether ε is in the language.
    pub nullable: bool,
    /// Positions that can start a word.
    pub first: Vec<PosId>,
    /// Positions that can end a word.
    pub last: Vec<PosId>,
    /// `follow[p]` = positions that may immediately follow position `p`.
    pub follow: Vec<Vec<PosId>>,
    /// The symbol at each position.
    pub pos_syms: Vec<Sym>,
}

#[derive(Debug, Clone)]
struct Frame {
    nullable: bool,
    first: Vec<PosId>,
    last: Vec<PosId>,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            nullable: false,
            first: Vec::new(),
            last: Vec::new(),
        }
    }
    fn epsilon() -> Self {
        Frame {
            nullable: true,
            first: Vec::new(),
            last: Vec::new(),
        }
    }
}

fn union(a: &mut Vec<PosId>, b: &[PosId]) {
    for &p in b {
        if !a.contains(&p) {
            a.push(p);
        }
    }
}

fn compute(r: &Regex, pos_syms: &mut Vec<Sym>, follow: &mut Vec<Vec<PosId>>) -> Frame {
    match r {
        Regex::Empty => Frame::empty(),
        Regex::Epsilon => Frame::epsilon(),
        Regex::Sym(s) => {
            let p = pos_syms.len();
            pos_syms.push(*s);
            follow.push(Vec::new());
            Frame {
                nullable: false,
                first: vec![p],
                last: vec![p],
            }
        }
        Regex::Concat(ps) => {
            let mut acc = Frame::epsilon();
            for part in ps {
                let f = compute(part, pos_syms, follow);
                // follow: last(acc) × first(f)
                for &p in &acc.last {
                    union(&mut follow[p], &f.first);
                }
                if acc.nullable {
                    union(&mut acc.first, &f.first);
                }
                if f.nullable {
                    union(&mut acc.last, &f.last);
                } else {
                    acc.last = f.last;
                }
                acc.nullable &= f.nullable;
            }
            acc
        }
        Regex::Alt(ps) => {
            let mut acc = Frame::empty();
            for part in ps {
                let f = compute(part, pos_syms, follow);
                acc.nullable |= f.nullable;
                union(&mut acc.first, &f.first);
                union(&mut acc.last, &f.last);
            }
            acc
        }
        Regex::Star(inner) | Regex::Plus(inner) => {
            let f = compute(inner, pos_syms, follow);
            for &p in &f.last {
                union(&mut follow[p], &f.first);
            }
            Frame {
                nullable: matches!(r, Regex::Star(_)) || f.nullable,
                first: f.first,
                last: f.last,
            }
        }
        Regex::Opt(inner) => {
            let f = compute(inner, pos_syms, follow);
            Frame {
                nullable: true,
                first: f.first,
                last: f.last,
            }
        }
        Regex::Repeat { .. } => {
            unreachable!("Repeat nodes must be expanded before Glushkov construction")
        }
    }
}

impl GlushkovSets {
    /// Computes the Glushkov sets of `r`. Bounded repetitions are expanded
    /// first; see [`Regex::expand_repeats`].
    pub fn of(r: &Regex) -> Result<GlushkovSets, RepeatOverflow> {
        let expanded = r.expand_repeats()?;
        let mut pos_syms = Vec::new();
        let mut follow = Vec::new();
        let frame = compute(&expanded, &mut pos_syms, &mut follow);
        Ok(GlushkovSets {
            nullable: frame.nullable,
            first: frame.first,
            last: frame.last,
            follow,
            pos_syms,
        })
    }

    /// Number of positions (symbol occurrences).
    pub fn positions(&self) -> usize {
        self.pos_syms.len()
    }
}

/// The Glushkov automaton of a regular expression.
///
/// State `0` is the start state; state `p + 1` corresponds to position `p`.
/// The automaton accepts exactly `L(r)` and is deterministic iff `r` is
/// one-unambiguous.
#[derive(Debug, Clone)]
pub struct GlushkovNfa {
    sets: GlushkovSets,
}

impl GlushkovNfa {
    /// Builds the position automaton of `r`.
    pub fn new(r: &Regex) -> Result<GlushkovNfa, RepeatOverflow> {
        Ok(GlushkovNfa {
            sets: GlushkovSets::of(r)?,
        })
    }

    /// The underlying Glushkov sets.
    pub fn sets(&self) -> &GlushkovSets {
        &self.sets
    }

    /// Number of states (positions + the start state).
    pub fn state_count(&self) -> usize {
        self.sets.positions() + 1
    }

    /// The start state (always `0`).
    pub fn start(&self) -> usize {
        0
    }

    /// Whether `state` is accepting.
    pub fn is_final(&self, state: usize) -> bool {
        if state == 0 {
            self.sets.nullable
        } else {
            self.sets.last.contains(&(state - 1))
        }
    }

    /// Out-transitions of `state` as `(symbol, target-state)` pairs.
    pub fn transitions(&self, state: usize) -> Vec<(Sym, usize)> {
        let targets: &[PosId] = if state == 0 {
            &self.sets.first
        } else {
            &self.sets.follow[state - 1]
        };
        targets
            .iter()
            .map(|&p| (self.sets.pos_syms[p], p + 1))
            .collect()
    }

    /// Whether the automaton is deterministic, i.e. whether the source
    /// expression is one-unambiguous (Brüggemann-Klein & Wood).
    pub fn is_deterministic(&self) -> bool {
        for state in 0..self.state_count() {
            let trans = self.transitions(state);
            for (i, (s1, t1)) in trans.iter().enumerate() {
                for (s2, t2) in &trans[i + 1..] {
                    if s1 == s2 && t1 != t2 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// NFA word acceptance by breadth simulation (test/reference use).
    pub fn accepts(&self, input: &[Sym]) -> bool {
        let mut current = vec![false; self.state_count()];
        current[0] = true;
        let mut next = vec![false; self.state_count()];
        for &s in input {
            next.iter_mut().for_each(|b| *b = false);
            let mut any = false;
            for (state, _) in current.iter().enumerate().filter(|(_, &on)| on) {
                for (sym, target) in self.transitions(state) {
                    if sym == s {
                        next[target] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            std::mem::swap(&mut current, &mut next);
        }
        (0..self.state_count()).any(|q| current[q] && self.is_final(q))
    }
}

/// Whether `r` is one-unambiguous (its Glushkov automaton is deterministic).
///
/// XML requires content models to be deterministic in this sense; the
/// schema-cast algorithms work regardless (we determinize when needed), but
/// the optimality results of the paper's §5 assume it.
pub fn is_one_unambiguous(r: &Regex) -> Result<bool, RepeatOverflow> {
    Ok(GlushkovNfa::new(r)?.is_deterministic())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn glushkov_accepts_language() {
        // (a, b?, c) — the purchaseOrder shape from Figure 1a.
        let r = Regex::concat(vec![
            Regex::sym(s(0)),
            Regex::opt(Regex::sym(s(1))),
            Regex::sym(s(2)),
        ]);
        let nfa = GlushkovNfa::new(&r).expect("no repeats");
        assert!(nfa.accepts(&[s(0), s(2)]));
        assert!(nfa.accepts(&[s(0), s(1), s(2)]));
        assert!(!nfa.accepts(&[s(0), s(1)]));
        assert!(!nfa.accepts(&[s(1), s(2)]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn glushkov_matches_derivative_matcher() {
        let r = Regex::concat(vec![
            Regex::star(Regex::alt(vec![Regex::sym(s(0)), Regex::sym(s(1))])),
            Regex::sym(s(2)),
            Regex::opt(Regex::sym(s(0))),
        ]);
        let nfa = GlushkovNfa::new(&r).expect("no repeats");
        let inputs: &[&[Sym]] = &[
            &[],
            &[s(2)],
            &[s(0), s(2)],
            &[s(1), s(0), s(2), s(0)],
            &[s(2), s(2)],
            &[s(0), s(0)],
        ];
        for input in inputs {
            assert_eq!(nfa.accepts(input), r.matches(input), "input {input:?}");
        }
    }

    #[test]
    fn one_unambiguity_positive() {
        // (a, b?, c) is deterministic.
        let r = Regex::concat(vec![
            Regex::sym(s(0)),
            Regex::opt(Regex::sym(s(1))),
            Regex::sym(s(2)),
        ]);
        assert!(is_one_unambiguous(&r).expect("no repeats"));
    }

    #[test]
    fn one_unambiguity_negative() {
        // (a a) | (a b): two distinct a-positions reachable first — the
        // canonical 1-ambiguous example.
        let r = Regex::alt(vec![
            Regex::concat(vec![Regex::sym(s(0)), Regex::sym(s(0))]),
            Regex::concat(vec![Regex::sym(s(0)), Regex::sym(s(1))]),
        ]);
        assert!(!is_one_unambiguous(&r).expect("no repeats"));
    }

    #[test]
    fn star_follow_loops() {
        let r = Regex::star(Regex::sym(s(0)));
        let nfa = GlushkovNfa::new(&r).expect("no repeats");
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[s(0), s(0), s(0)]));
        assert!(!nfa.accepts(&[s(1)]));
        assert!(nfa.is_deterministic());
    }

    #[test]
    fn empty_language_automaton() {
        let nfa = GlushkovNfa::new(&Regex::Empty).expect("no repeats");
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[s(0)]));
        assert_eq!(nfa.state_count(), 1);
    }

    #[test]
    fn repeats_expand_before_glushkov() {
        let r = Regex::repeat(Regex::sym(s(0)), 2, Some(3));
        let nfa = GlushkovNfa::new(&r).expect("small bound");
        assert!(!nfa.accepts(&[s(0)]));
        assert!(nfa.accepts(&[s(0), s(0)]));
        assert!(nfa.accepts(&[s(0), s(0), s(0)]));
        assert!(!nfa.accepts(&[s(0); 4]));
    }
}
