//! Pretty-printing of regular expressions back into the DTD-style syntax
//! accepted by [`crate::parser::parse_regex`].

use crate::alphabet::Alphabet;
use crate::ast::Regex;
use std::fmt::Write as _;

/// Renders `r` using label names from `alphabet`.
///
/// The output round-trips through [`crate::parse_regex`] to an equivalent
/// expression (possibly differing in irrelevant grouping).
pub fn regex_to_string(r: &Regex, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_regex(r, alphabet, &mut out, Prec::Alt);
    out
}

#[derive(PartialEq, PartialOrd, Clone, Copy)]
enum Prec {
    Alt = 0,
    Seq = 1,
    Post = 2,
}

fn write_regex(r: &Regex, ab: &Alphabet, out: &mut String, ctx: Prec) {
    match r {
        Regex::Empty => out.push_str("<empty>"),
        Regex::Epsilon => out.push_str("()"),
        Regex::Sym(s) => out.push_str(ab.name(*s)),
        Regex::Concat(ps) => {
            let needs = ctx > Prec::Seq;
            if needs {
                out.push('(');
            }
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_regex(p, ab, out, Prec::Post);
            }
            if needs {
                out.push(')');
            }
        }
        Regex::Alt(ps) => {
            let needs = ctx > Prec::Alt;
            if needs {
                out.push('(');
            }
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_regex(p, ab, out, Prec::Seq);
            }
            if needs {
                out.push(')');
            }
        }
        Regex::Star(inner) => {
            write_regex(inner, ab, out, Prec::Post);
            out.push('*');
        }
        Regex::Plus(inner) => {
            write_regex(inner, ab, out, Prec::Post);
            out.push('+');
        }
        Regex::Opt(inner) => {
            write_regex(inner, ab, out, Prec::Post);
            out.push('?');
        }
        Regex::Repeat { inner, min, max } => {
            write_regex(inner, ab, out, Prec::Post);
            match max {
                Some(mx) if mx == min => {
                    let _ = write!(out, "{{{min}}}");
                }
                Some(mx) => {
                    let _ = write!(out, "{{{min},{mx}}}");
                }
                None => {
                    let _ = write!(out, "{{{min},}}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;

    #[test]
    fn round_trips_syntax() {
        let mut ab = Alphabet::new();
        for text in [
            "(shipTo, billTo?, items)",
            "(a | b)*, c+",
            "item{2,4}",
            "x{3}",
            "y{2,}",
            "()",
        ] {
            let r = parse_regex(text, &mut ab).expect("parse");
            let printed = regex_to_string(&r, &ab);
            let reparsed = parse_regex(&printed, &mut ab).expect("reparse");
            // Compare languages on a few probes rather than ASTs (grouping
            // may differ).
            let syms: Vec<_> = ab.symbols().collect();
            let mut probes: Vec<Vec<_>> = vec![vec![]];
            for &s in syms.iter().take(3) {
                probes.push(vec![s]);
                probes.push(vec![s, s]);
                for &t in syms.iter().take(3) {
                    probes.push(vec![s, t]);
                    probes.push(vec![s, t, s]);
                }
            }
            for p in &probes {
                assert_eq!(r.matches(p), reparsed.matches(p), "text={text} probe={p:?}");
            }
        }
    }
}
