//! Interned element-label alphabets.
//!
//! Every schema, automaton, and document participating in one revalidation
//! session shares a single [`Alphabet`], so that a label comparison anywhere
//! in the system is a `u32` comparison and DFA transition tables can be dense
//! `states × |Σ|` arrays.

use std::collections::HashMap;
use std::fmt;

/// An interned element label (a member of the alphabet Σ).
///
/// `Sym` is a dense index into the [`Alphabet`] that produced it. Symbols
/// from different alphabets must not be mixed; all public entry points in the
/// workspace take the alphabet alongside the symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A string interner for element labels.
///
/// The paper assumes a common alphabet Σ for the source and target schemas
/// ("Without loss of generality, we assume that Σ_a = Σ_b = Σ"); in practice
/// we achieve this by interning both schemas' labels — and the labels of
/// every document — into one `Alphabet`.
#[derive(Debug, Default, Clone)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(u32::try_from(self.names.len()).expect("alphabet overflow"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Looks up a previously interned label without inserting.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The label for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this alphabet.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned labels (|Σ|).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.names.len() as u32).map(Sym)
    }

    /// Iterates over `(Sym, &str)` pairs in index order.
    pub fn entries(&self) -> impl Iterator<Item = (Sym, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("shipTo");
        let y = a.intern("billTo");
        assert_ne!(x, y);
        assert_eq!(a.intern("shipTo"), x);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lookup_and_name_round_trip() {
        let mut a = Alphabet::new();
        let s = a.intern("items");
        assert_eq!(a.lookup("items"), Some(s));
        assert_eq!(a.lookup("absent"), None);
        assert_eq!(a.name(s), "items");
    }

    #[test]
    fn symbols_are_dense() {
        let mut a = Alphabet::new();
        for n in ["a", "b", "c"] {
            a.intern(n);
        }
        let syms: Vec<_> = a.symbols().collect();
        assert_eq!(syms, vec![Sym(0), Sym(1), Sym(2)]);
        let entries: Vec<_> = a.entries().map(|(s, n)| (s.0, n.to_owned())).collect();
        assert_eq!(entries[1], (1, "b".to_owned()));
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.symbols().count(), 0);
    }
}
