//! Interned element-label alphabets.
//!
//! Every schema, automaton, and document participating in one revalidation
//! session shares a single [`Alphabet`], so that a label comparison anywhere
//! in the system is a `u32` comparison and DFA transition tables can be dense
//! `states × |Σ|` arrays.

use std::collections::HashMap;
use std::fmt;

/// An interned element label (a member of the alphabet Σ).
///
/// `Sym` is a dense index into the [`Alphabet`] that produced it. Symbols
/// from different alphabets must not be mixed; all public entry points in the
/// workspace take the alphabet alongside the symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A string interner for element labels.
///
/// The paper assumes a common alphabet Σ for the source and target schemas
/// ("Without loss of generality, we assume that Σ_a = Σ_b = Σ"); in practice
/// we achieve this by interning both schemas' labels — and the labels of
/// every document — into one `Alphabet`.
#[derive(Debug, Default, Clone)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(u32::try_from(self.names.len()).expect("alphabet overflow"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Looks up a previously interned label without inserting.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The label for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this alphabet.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned labels (|Σ|).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.names.len() as u32).map(Sym)
    }

    /// Iterates over `(Sym, &str)` pairs in index order.
    pub fn entries(&self) -> impl Iterator<Item = (Sym, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

/// A dense memo from per-document lexer name ids to alphabet symbols.
///
/// Streaming consumers pair this with a tokenizer-level name interner (the
/// pull parser's `NameId`s): the tokenizer hashes each name occurrence once
/// with a cheap FNV table, and this cache resolves each *distinct* name
/// against the (SipHash-backed) [`Alphabet`] exactly once per document.
/// After that, every occurrence is an O(1) indexed load — including the
/// negative case of labels the schemas never interned (`None` is memoized
/// too).
///
/// The cache is lifetime-free and reusable: call [`SymCache::begin`] at the
/// start of each document to reset it while keeping its capacity, which is
/// what lets batch workers process thousands of documents with zero
/// steady-state allocation.
#[derive(Debug, Default, Clone)]
pub struct SymCache {
    slots: Vec<Slot>,
}

/// One memo slot: unresolved, or resolved to a lookup result (which may be
/// `None` for labels the schemas never interned).
#[derive(Debug, Default, Clone, Copy)]
enum Slot {
    #[default]
    Unresolved,
    Resolved(Option<Sym>),
}

impl SymCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the memo for a new document, keeping allocated capacity.
    pub fn begin(&mut self) {
        self.slots.clear();
    }

    /// Resolves `name` (carrying the tokenizer's dense per-document `id`)
    /// against `alphabet`, hashing only the first time each id is seen.
    pub fn resolve(&mut self, alphabet: &Alphabet, id: usize, name: &str) -> Option<Sym> {
        if id >= self.slots.len() {
            self.slots.resize(id + 1, Slot::Unresolved);
        }
        if let Slot::Resolved(memo) = self.slots[id] {
            return memo;
        }
        let sym = alphabet.lookup(name);
        self.slots[id] = Slot::Resolved(sym);
        sym
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_cache_memoizes_hits_and_misses() {
        let mut a = Alphabet::new();
        let ship = a.intern("ship");
        let mut cache = SymCache::new();
        assert_eq!(cache.resolve(&a, 0, "ship"), Some(ship));
        assert_eq!(cache.resolve(&a, 1, "foreign"), None);
        // Memoized: a stale name for the same id returns the cached answer,
        // proving no re-hash happens on repeat resolutions.
        assert_eq!(cache.resolve(&a, 0, "not-ship"), Some(ship));
        assert_eq!(cache.resolve(&a, 1, "ship"), None);
        // begin() invalidates the memo.
        cache.begin();
        assert_eq!(cache.resolve(&a, 0, "foreign"), None);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("shipTo");
        let y = a.intern("billTo");
        assert_ne!(x, y);
        assert_eq!(a.intern("shipTo"), x);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lookup_and_name_round_trip() {
        let mut a = Alphabet::new();
        let s = a.intern("items");
        assert_eq!(a.lookup("items"), Some(s));
        assert_eq!(a.lookup("absent"), None);
        assert_eq!(a.name(s), "items");
    }

    #[test]
    fn symbols_are_dense() {
        let mut a = Alphabet::new();
        for n in ["a", "b", "c"] {
            a.intern(n);
        }
        let syms: Vec<_> = a.symbols().collect();
        assert_eq!(syms, vec![Sym(0), Sym(1), Sym(2)]);
        let entries: Vec<_> = a.entries().map(|(s, n)| (s.0, n.to_owned())).collect();
        assert_eq!(entries[1], (1, "b".to_owned()));
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.symbols().count(), 0);
    }
}
