//! A DTD-style textual syntax for content-model regular expressions.
//!
//! Grammar (whitespace is insignificant):
//!
//! ```text
//! choice   := seq ('|' seq)*
//! seq      := postfix (',' postfix)*
//! postfix  := atom ('?' | '*' | '+' | '{' INT (',' INT?)? '}')*
//! atom     := NAME | '(' choice ')' | '()'
//! ```
//!
//! `()` denotes ε. `NAME` follows XML name rules (letters, digits, `.`,
//! `-`, `_`, `:`). Labels are interned through the caller-supplied
//! [`Alphabet`], so the same parser serves DTD content models, test
//! expressions and workload generators.

use crate::alphabet::{Alphabet, Sym};
use crate::ast::Regex;
use std::fmt;

/// A parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a, 'b> {
    input: &'a [u8],
    pos: usize,
    alphabet: &'b mut Alphabet,
}

/// Parses `text` into a [`Regex`], interning labels into `alphabet`.
///
/// # Errors
/// Returns [`ParseError`] on malformed input or trailing garbage.
///
/// # Examples
/// ```
/// use schemacast_regex::{parse_regex, Alphabet};
/// let mut ab = Alphabet::new();
/// let r = parse_regex("(shipTo, billTo?, items)", &mut ab).unwrap();
/// let ship = ab.lookup("shipTo").unwrap();
/// let bill = ab.lookup("billTo").unwrap();
/// let items = ab.lookup("items").unwrap();
/// assert!(r.matches(&[ship, items]));
/// assert!(r.matches(&[ship, bill, items]));
/// assert!(!r.matches(&[bill, items]));
/// ```
pub fn parse_regex(text: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut p = Parser {
        input: text.as_bytes(),
        pos: 0,
        alphabet,
    };
    let r = p.choice()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(r)
}

impl<'a, 'b> Parser<'a, 'b> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn choice(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.seq()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            parts.push(self.seq()?);
        }
        Ok(Regex::alt(parts))
    }

    fn seq(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.postfix()?];
        while self.peek() == Some(b',') {
            self.pos += 1;
            parts.push(self.postfix()?);
        }
        Ok(Regex::concat(parts))
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.atom()?;
        loop {
            match self.peek() {
                Some(b'?') => {
                    self.pos += 1;
                    r = Regex::opt(r);
                }
                Some(b'*') => {
                    self.pos += 1;
                    r = Regex::star(r);
                }
                Some(b'+') => {
                    self.pos += 1;
                    r = Regex::plus(r);
                }
                Some(b'{') => {
                    self.pos += 1;
                    let min = self.integer()?;
                    let max = match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            match self.peek() {
                                Some(b'}') => None,
                                _ => Some(self.integer()?),
                            }
                        }
                        _ => Some(min),
                    };
                    if self.bump() != Some(b'}') {
                        return Err(self.err("expected '}'"));
                    }
                    if let Some(mx) = max {
                        if mx < min {
                            return Err(self.err("repetition max below min"));
                        }
                    }
                    r = Regex::repeat(r, min, max);
                }
                _ => return Ok(r),
            }
        }
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.input.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    return Ok(Regex::Epsilon);
                }
                let r = self.choice()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(r)
            }
            Some(b) if is_name_start(b) => {
                self.skip_ws();
                let start = self.pos;
                while self.input.get(self.pos).copied().is_some_and(is_name_char) {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("non-UTF-8 name"))?;
                Ok(Regex::sym(self.alphabet.intern(name)))
            }
            Some(_) => Err(self.err("expected name or '('")),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':'
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'.' | b'-')
}

/// Convenience: parse and return both the regex and the symbols of the
/// given label names (interning them if needed). Useful in tests.
pub fn parse_with_syms(
    text: &str,
    alphabet: &mut Alphabet,
    names: &[&str],
) -> Result<(Regex, Vec<Sym>), ParseError> {
    let r = parse_regex(text, alphabet)?;
    let syms = names.iter().map(|n| alphabet.intern(n)).collect();
    Ok((r, syms))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(text: &str) -> (Regex, Alphabet) {
        let mut ab = Alphabet::new();
        let r = parse_regex(text, &mut ab).expect("parse");
        (r, ab)
    }

    #[test]
    fn parses_dtd_style_sequence() {
        let (r, ab) = setup("(shipTo, billTo?, items)");
        let sh = ab.lookup("shipTo").unwrap();
        let bi = ab.lookup("billTo").unwrap();
        let it = ab.lookup("items").unwrap();
        assert!(r.matches(&[sh, it]));
        assert!(r.matches(&[sh, bi, it]));
        assert!(!r.matches(&[sh, bi]));
    }

    #[test]
    fn parses_choice_and_closures() {
        let (r, ab) = setup("(a | b)* , c+");
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        assert!(r.matches(&[c]));
        assert!(r.matches(&[a, b, a, c, c]));
        assert!(!r.matches(&[a, b]));
    }

    #[test]
    fn parses_bounded_repetition() {
        let (r, ab) = setup("item{2,4}");
        let item = ab.lookup("item").unwrap();
        assert!(!r.matches(&[item]));
        assert!(r.matches(&[item, item]));
        assert!(r.matches(&[item; 4]));
        assert!(!r.matches(&[item; 5]));
    }

    #[test]
    fn parses_exact_and_open_repetition() {
        let (r, ab) = setup("x{3}");
        let x = ab.lookup("x").unwrap();
        assert!(r.matches(&[x; 3]));
        assert!(!r.matches(&[x; 2]));

        let (r2, ab2) = setup("y{2,}");
        let y = ab2.lookup("y").unwrap();
        assert!(!r2.matches(&[y]));
        assert!(r2.matches(&[y; 7]));
    }

    #[test]
    fn empty_group_is_epsilon() {
        let (r, _) = setup("()");
        assert!(r.matches(&[]));
    }

    #[test]
    fn rejects_garbage() {
        let mut ab = Alphabet::new();
        assert!(parse_regex("(a,", &mut ab).is_err());
        assert!(parse_regex("a)", &mut ab).is_err());
        assert!(parse_regex("", &mut ab).is_err());
        assert!(parse_regex("a{4,2}", &mut ab).is_err());
        assert!(parse_regex("|a", &mut ab).is_err());
    }

    #[test]
    fn names_allow_xml_punctuation() {
        let (_, ab) = setup("(xsd:element, my-name, a.b_c)");
        assert!(ab.lookup("xsd:element").is_some());
        assert!(ab.lookup("my-name").is_some());
        assert!(ab.lookup("a.b_c").is_some());
    }
}
