//! Property tests on the regex layer itself: the smart constructors, the
//! derivative matcher, repeat expansion, reversal, and the Glushkov
//! automaton all agree with each other on randomly generated expressions.

use proptest::prelude::*;
use schemacast_regex::glushkov::is_one_unambiguous;
use schemacast_regex::{GlushkovNfa, Regex, Sym};

const SIGMA: u32 = 3;

/// A proptest strategy for content-model-shaped regexes.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..SIGMA).prop_map(|s| Regex::sym(Sym(s))),
        Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.clone().prop_map(Regex::opt),
            (inner, 0u32..3, 0u32..4).prop_map(|(r, min, extra)| Regex::repeat(
                r,
                min,
                Some(min + extra)
            )),
        ]
    })
}

fn strings_up_to(n: usize) -> Vec<Vec<Sym>> {
    let mut out: Vec<Vec<Sym>> = vec![vec![]];
    let mut frontier = out.clone();
    for _ in 0..n {
        let mut next = Vec::new();
        for base in &frontier {
            for s in 0..SIGMA {
                let mut v = base.clone();
                v.push(Sym(s));
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Glushkov automaton accepts exactly what the derivative matcher
    /// accepts.
    #[test]
    fn glushkov_equals_derivatives(r in regex_strategy()) {
        let nfa = GlushkovNfa::new(&r).expect("bounded repeats");
        for s in strings_up_to(4) {
            prop_assert_eq!(nfa.accepts(&s), r.matches(&s), "string {:?}", s);
        }
    }

    /// Expanding bounded repetitions preserves the language.
    #[test]
    fn expansion_preserves_language(r in regex_strategy()) {
        let e = r.expand_repeats().expect("bounded");
        for s in strings_up_to(4) {
            prop_assert_eq!(r.matches(&s), e.matches(&s), "string {:?}", s);
        }
    }

    /// Reversal: `rev(r)` matches exactly the reversed strings.
    #[test]
    fn reversal_matches_reversed_strings(r in regex_strategy()) {
        let rev = r.reverse();
        for s in strings_up_to(4) {
            let mut sr = s.clone();
            sr.reverse();
            prop_assert_eq!(r.matches(&s), rev.matches(&sr), "string {:?}", s);
        }
    }

    /// nullable ⇔ matches ε; empty-language detection is sound.
    #[test]
    fn nullable_and_emptiness_agree_with_matching(r in regex_strategy()) {
        prop_assert_eq!(r.nullable(), r.matches(&[]));
        if r.is_empty_language() {
            for s in strings_up_to(4) {
                prop_assert!(!r.matches(&s), "empty language matched {:?}", s);
            }
        }
    }

    /// Printing and re-parsing preserves the language.
    #[test]
    fn display_round_trips(r in regex_strategy()) {
        let mut ab = schemacast_regex::Alphabet::new();
        for i in 0..SIGMA {
            ab.intern(&format!("s{i}"));
        }
        let printed = schemacast_regex::display::regex_to_string(&r, &ab);
        if printed.contains("<empty>") {
            // ∅ has no surface syntax; skip.
            return Ok(());
        }
        let reparsed = schemacast_regex::parse_regex(&printed, &mut ab)
            .unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        for s in strings_up_to(4) {
            prop_assert_eq!(
                r.matches(&s), reparsed.matches(&s),
                "printed {:?}, string {:?}", printed, s
            );
        }
    }

    /// One-unambiguity is stable under expansion (the checker expands
    /// internally; a deterministic expansion never becomes ambiguous).
    #[test]
    fn determinism_check_is_total(r in regex_strategy()) {
        // Just exercise the checker: it must terminate without panicking
        // and agree with a direct determinism test of the Glushkov NFA.
        let via_check = is_one_unambiguous(&r).expect("bounded");
        let via_nfa = GlushkovNfa::new(&r).expect("bounded").is_deterministic();
        prop_assert_eq!(via_check, via_nfa);
    }
}
