//! `gencorpus` — deterministic on-disk corpus generator for the
//! corpus-scale batch pipeline (CI smoke jobs, benchmarks, BENCH runs).
//!
//! ```text
//! gencorpus --out DIR --count N [--items K]     # generate N documents
//! gencorpus --out DIR --edit K --tag STR        # rewrite the first K docs
//! ```
//!
//! Generation writes purchase-order documents valid for the bundled
//! source schema (`po_source.xsd` / `po_target.xsd` are dropped next to
//! them), sharded 1000 per subdirectory so directory walks stay cheap.
//! Every document embeds its index in a trailing comment, so all N files
//! have pairwise-distinct content hashes.
//!
//! `--edit` deterministically rewrites the first K documents with fresh
//! content (the tag is embedded, so repeated edits with different tags
//! keep changing the bytes) — the "touch k files, expect exactly k cache
//! misses" half of the incremental story. Documents keep the same verdict
//! class, so cold and warm runs must print identical per-item reports.
//!
//! Exit codes: 0 on success, 2 on usage or I/O error.

use schemacast_regex::Alphabet;
use schemacast_workload::purchase_order as po;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files per subdirectory shard.
const SHARD: usize = 1000;

struct Options {
    out: PathBuf,
    count: usize,
    items: usize,
    edit: usize,
    tag: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  gencorpus --out DIR --count N [--items K]\n  \
         gencorpus --out DIR --edit K --tag STR [--items K]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut out = None;
    let mut count = 0usize;
    let mut items = 8usize;
    let mut edit = 0usize;
    let mut tag = String::from("1");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let number = |name: &str, args: &mut dyn Iterator<Item = String>| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| {
                    eprintln!("{name} requires a number");
                    usage()
                })
        };
        match a.as_str() {
            "--out" => out = args.next().map(PathBuf::from),
            "--count" => count = number("--count", &mut args)?,
            "--items" => items = number("--items", &mut args)?,
            "--edit" => edit = number("--edit", &mut args)?,
            "--tag" => tag = args.next().unwrap_or_default(),
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("unknown argument {other:?}");
                return Err(usage());
            }
        }
    }
    let Some(out) = out else {
        eprintln!("--out is required");
        return Err(usage());
    };
    if count == 0 && edit == 0 {
        eprintln!("one of --count or --edit is required");
        return Err(usage());
    }
    Ok(Options {
        out,
        count,
        items,
        edit,
        tag,
    })
}

/// `DIR/d003/doc003456.xml` for index 3456.
fn doc_path(out: &Path, i: usize) -> PathBuf {
    out.join(format!("d{:03}", i / SHARD))
        .join(format!("doc{i:06}.xml"))
}

/// One document's bytes: index-dependent shape plus an identifying
/// comment, so content hashes are pairwise distinct and editing with a
/// new tag always changes the bytes.
fn doc_bytes(alphabet: &mut Alphabet, i: usize, items: usize, tag: &str) -> String {
    let n_items = 1 + (i + items) % (2 * items);
    let xml = po::document_xml(alphabet, n_items);
    format!("{xml}<!-- doc {i} tag {tag} -->")
}

fn run(opts: &Options) -> std::io::Result<()> {
    let mut alphabet = Alphabet::new();
    if opts.count > 0 {
        std::fs::create_dir_all(&opts.out)?;
        std::fs::write(opts.out.join("po_source.xsd"), po::source_xsd())?;
        std::fs::write(opts.out.join("po_target.xsd"), po::target_xsd())?;
        // The Experiment-1 target (quantity maxExclusive=200): casting to
        // it defeats subsumption for Item subtrees, so every item's
        // content is actually validated — the workload for measuring
        // cache wins against real validation cost.
        std::fs::write(opts.out.join("po_maxex200.xsd"), po::source_maxex200_xsd())?;
        for i in 0..opts.count {
            let path = doc_path(&opts.out, i);
            if i % SHARD == 0 {
                if let Some(shard) = path.parent() {
                    std::fs::create_dir_all(shard)?;
                }
            }
            std::fs::write(&path, doc_bytes(&mut alphabet, i, opts.items, "gen"))?;
        }
        println!(
            "generated {} document(s) under {}",
            opts.count,
            opts.out.display()
        );
    }
    if opts.edit > 0 {
        for i in 0..opts.edit {
            let path = doc_path(&opts.out, i);
            if !path.is_file() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("{} does not exist — generate first", path.display()),
                ));
            }
            // A different item count than generation used, plus the tag,
            // guarantees fresh bytes while staying schema-valid.
            let xml = po::document_xml(&mut alphabet, 1 + (i + opts.items + 1) % 11);
            std::fs::write(&path, format!("{xml}<!-- edited {i} tag {} -->", opts.tag))?;
        }
        println!(
            "edited {} document(s) under {} (tag {})",
            opts.edit,
            opts.out.display(),
            opts.tag
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gencorpus: {e}");
            ExitCode::from(2)
        }
    }
}
