//! A token-level view of one Rust source file, built for lint rules.
//!
//! The old selflint matched regex-ish substrings against raw lines, which
//! breaks in all the classic ways: a `HashMap` inside a string literal or
//! a doc comment fired the hot-path rule, and `#[cfg(test)]` stripping by
//! counting every `{` byte miscounted braces inside strings. This lexer
//! classifies every character as code, string/char-literal content, or
//! comment — honoring escapes, raw strings (`r#"…"#`), byte strings, and
//! nested block comments — and then resolves `#[cfg(test)]`-gated regions
//! by brace-matching over the *code* channel only.
//!
//! Rules consume the result per line: `code` has comments removed and
//! literal contents blanked (delimiters kept, so `.expect(` still reads
//! as a call), `comment` carries the comment text (so rules about
//! comments, like the `// ordering:` justification, can see it), and
//! `in_test` marks lines inside test-gated items.

/// One source line, split by channel.
#[derive(Debug)]
pub struct Line {
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// The comment text carried on this line (markers included).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Whether this is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// Lines, in order (index 0 is line 1).
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lines that lint rules for library code apply to: `(1-based line
    /// number, code channel)` outside test-gated regions.
    pub fn library_code(&self) -> impl Iterator<Item = (usize, &str)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.in_test)
            .map(|(i, l)| (i + 1, l.code.as_str()))
    }
}

/// Lexer state between characters.
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(usize),
    /// Inside `"…"`; `true` after a backslash.
    Str(bool),
    /// Inside `r##"…"##` with this many hashes.
    RawStr(usize),
}

/// Lexes one file into per-line channels.
pub fn lex(rel: &str, is_crate_root: bool, src: &str) -> SourceFile {
    let bytes = src.as_bytes();
    let mut lines: Vec<(String, String)> = Vec::new();
    let (mut code, mut comment) = (String::new(), String::new());
    let mut state = State::Code;
    let mut i = 0;

    macro_rules! flush_line {
        () => {{
            lines.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                // Raw (and byte/raw-byte) string start: optional `b`, `r`,
                // hashes, quote — with the `r` not glued to an identifier.
                if let Some((hashes, len)) = raw_string_start(bytes, i) {
                    for _ in 0..len {
                        code.push(bytes[i] as char);
                        i += 1;
                    }
                    let _ = hashes;
                    state = State::RawStr(hashes);
                    continue;
                }
                match b {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        state = State::LineComment;
                        comment.push_str("//");
                        i += 2;
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = State::BlockComment(1);
                        comment.push_str("/*");
                        i += 2;
                    }
                    b'"' => {
                        code.push('"');
                        state = State::Str(false);
                        i += 1;
                    }
                    b'\'' => {
                        // Char literal vs lifetime. `'\…'` and `'x'` are
                        // literals; `'ident` (no closing quote right
                        // after one char) is a lifetime.
                        if bytes.get(i + 1) == Some(&b'\\') {
                            code.push('\'');
                            i += 2; // consume the backslash
                            while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
                                code.push(' ');
                                i += 1;
                            }
                            if bytes.get(i) == Some(&b'\'') {
                                code.push('\'');
                                i += 1;
                            }
                        } else if char_literal_len(bytes, i).is_some() {
                            let end = char_literal_len(bytes, i).unwrap();
                            code.push('\'');
                            for _ in i + 1..end {
                                code.push(' ');
                            }
                            code.push('\'');
                            i = end + 1;
                        } else {
                            code.push('\''); // lifetime tick
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(b as char);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                comment.push(b as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    comment.push_str("*/");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    comment.push_str("/*");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    comment.push(b as char);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    code.push(' ');
                    state = State::Str(false);
                } else if b == b'\\' {
                    code.push(' ');
                    state = State::Str(true);
                } else if b == b'"' {
                    code.push('"');
                    state = State::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    code.push('"');
                    i += 1;
                    for _ in 0..hashes {
                        code.push('#');
                        i += 1;
                    }
                    state = State::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();

    let in_test = test_regions(&lines);
    SourceFile {
        rel: rel.to_string(),
        is_crate_root,
        lines: lines
            .into_iter()
            .zip(in_test)
            .map(|((code, comment), in_test)| Line {
                code,
                comment,
                in_test,
            })
            .collect(),
    }
}

/// If a raw-string literal starts at `i`, returns `(hash_count,
/// prefix_len_including_quote)`.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let prev_is_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
    if prev_is_ident {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Whether the `"` at `i` is followed by enough `#`s to close a raw
/// string with `hashes` hashes.
fn closes_raw(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// If a simple (non-escape) char literal starts at `i`, returns the index
/// of its closing quote. Multi-byte scalars count as their UTF-8 bytes.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    // `'` + one UTF-8 scalar + `'`.
    let first = *bytes.get(i + 1)?;
    let width = match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    };
    (bytes.get(i + 1 + width) == Some(&b'\'')).then_some(i + 1 + width)
}

/// Marks the lines covered by `#[cfg(test)]`-gated items: the attribute
/// line itself plus everything through the gated item's closing brace
/// (or its `;` for brace-less items), brace-matched over the code
/// channel so braces in literals cannot desynchronize the scan.
fn test_regions(lines: &[(String, String)]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].0.trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        while i < lines.len() {
            in_test[i] = true;
            let mut done = false;
            for b in lines[i].0.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            done = true;
                        }
                    }
                    // A brace-less gated item (a `use`, a `const`) ends
                    // at the first top-level semicolon.
                    b';' if !opened && depth == 0 => done = true,
                    _ => {}
                }
            }
            i += 1;
            if done {
                break;
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        lex("t.rs", false, src)
            .lines
            .iter()
            .map(|l| l.code.clone())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn comments_leave_the_code_channel() {
        let f = lex(
            "t.rs",
            false,
            "let x = 1; // HashMap here\n/* and\nhere */ let y = 2;\n",
        );
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(!f.lines[1].code.contains("here"));
        assert!(f.lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn string_contents_are_blanked_but_delimited() {
        let c = code_of(r#"let s = "HashMap { unwrap() }"; s.len();"#);
        assert!(!c.contains("HashMap"));
        assert!(!c.contains("unwrap"));
        assert!(c.contains(r#"let s = ""#));
        assert!(c.contains("s.len();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = code_of(r#"let s = "a\"b HashMap"; let t = 3;"#);
        assert!(!c.contains("HashMap"));
        assert!(c.contains("let t = 3;"));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let c = code_of("let s = r#\"std::sync::Mutex \"quoted\" more\"#; done();");
        assert!(!c.contains("std::sync"));
        assert!(c.contains("done();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code_of("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; g(x, c, d); }");
        // The `{` inside the char literal is blanked; braces still pair.
        assert_eq!(c.matches('{').count(), 1);
        assert!(c.contains("<'a>"));
        assert!(c.contains("g(x, c, d);"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let c = code_of("/* outer /* inner */ still comment */ let x = 1;");
        assert!(!c.contains("comment"));
        assert!(c.contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); let s = \"}\"; }\n\
                   }\n\
                   fn lib2() {}\n";
        let f = lex("t.rs", false, src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags[..6], [false, true, true, true, true, false]);
    }

    #[test]
    fn braceless_cfg_test_items_end_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::sync::Barrier;\nfn lib() {}\n";
        let f = lex("t.rs", false, src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags[..3], [true, true, false]);
    }

    #[test]
    fn braces_inside_strings_do_not_skew_test_regions() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       const S: &str = \"}}}\";\n\
                   }\n\
                   fn lib() { z.unwrap(); }\n";
        let f = lex("t.rs", false, src);
        assert!(!f.lines[4].in_test, "library fn marked as test");
    }
}
