//! The selflint rule registry.
//!
//! Every rule has a stable `SL`-prefixed id (for baselines, CI
//! annotations, and the JSON report), a short name, and a checker that
//! runs over the lexed workspace. Rules see token-level channels — code
//! with literals blanked, comment text, test-region flags — so none of
//! them can be fooled by a string literal or fire inside `#[cfg(test)]`.
//!
//! | id     | name               | invariant |
//! |--------|--------------------|-----------|
//! | SL0001 | panic-ratchet      | unwrap/expect in library code may only shrink |
//! | SL0002 | hot-path-collections | no `HashMap` in streaming hot-path modules |
//! | SL0003 | unsafe-gate        | every crate root carries `#![deny(unsafe_code)]` |
//! | SL0004 | std-sync-ban       | shim-migrated crates use `loomlite::{sync,thread}`, never `std::{sync,thread}` |
//! | SL0005 | ordering-justify   | every non-SeqCst atomic ordering carries a nearby `// ordering:` comment |
//! | SL0006 | guard-across-io    | no lock guard held across file I/O |

use crate::lexer::SourceFile;
use std::collections::BTreeMap;

/// File names (anywhere under `crates/*/src`) whose bodies may not name
/// `HashMap`: SipHash per lookup is exactly the per-event cost the
/// streaming hot path exists to avoid.
const HOT_PATH_FILES: &[&str] = &["stream.rs", "hot.rs", "index.rs"];

/// Crates migrated onto the loomlite concurrency shim. Library code here
/// must import `loomlite::sync` / `loomlite::thread`, so the model
/// checker sees every lock, channel, and atomic; a direct `std::sync`
/// use is invisible to it.
const SHIM_CRATES: &[&str] = &["crates/core/", "crates/engine/"];

/// Non-SeqCst orderings that demand a written justification.
const WEAK_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// How many lines above a weak-ordering use the `// ordering:`
/// justification may sit.
const ORDERING_COMMENT_WINDOW: usize = 6;

/// Calls that perform file I/O, for the guard-across-io rule.
const IO_MARKERS: &[&str] = &[
    "std::fs::",
    "fs::read",
    "fs::write",
    "fs::rename",
    "fs::remove_file",
    "fs::create_dir",
    "File::open",
    "File::create",
    ".read_to_end(",
    ".read_to_string(",
    ".write_all(",
    ".sync_all(",
    "read_dir(",
];

/// One finding.
#[derive(Debug)]
pub struct Violation {
    /// Stable rule id (`SL0001`…).
    pub rule: &'static str,
    /// Short rule name.
    pub name: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Everything a rule may look at.
pub struct Workspace<'a> {
    /// All lexed library sources.
    pub files: &'a [SourceFile],
    /// The grandfathered panic-site counts (rule SL0001).
    pub baseline: &'a BTreeMap<String, usize>,
}

/// A registered rule.
pub struct Rule {
    /// Stable id, `SL`-prefixed.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// The checker.
    pub check: fn(&Rule, &Workspace, &mut Vec<Violation>),
}

impl Rule {
    fn emit(&self, out: &mut Vec<Violation>, file: &str, line: usize, message: String) {
        out.push(Violation {
            rule: self.id,
            name: self.name,
            file: file.to_string(),
            line,
            message,
        });
    }
}

/// The registry, in id order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "SL0001",
        name: "panic-ratchet",
        check: panic_ratchet,
    },
    Rule {
        id: "SL0002",
        name: "hot-path-collections",
        check: hot_path_collections,
    },
    Rule {
        id: "SL0003",
        name: "unsafe-gate",
        check: unsafe_gate,
    },
    Rule {
        id: "SL0004",
        name: "std-sync-ban",
        check: std_sync_ban,
    },
    Rule {
        id: "SL0005",
        name: "ordering-justify",
        check: ordering_justify,
    },
    Rule {
        id: "SL0006",
        name: "guard-across-io",
        check: guard_across_io,
    },
];

/// Runs every registered rule.
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in RULES {
        (rule.check)(rule, ws, &mut out);
    }
    out
}

/// Panic sites (`.unwrap()` / `.expect(`) per file in non-test library
/// code. Shared by the ratchet rule and `--write-baseline`.
pub fn panic_counts(files: &[SourceFile]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for file in files {
        let n: usize = file
            .library_code()
            .map(|(_, code)| code.matches(".unwrap()").count() + code.matches(".expect(").count())
            .sum();
        if n > 0 {
            counts.insert(file.rel.clone(), n);
        }
    }
    counts
}

fn panic_ratchet(rule: &Rule, ws: &Workspace, out: &mut Vec<Violation>) {
    for (file, n) in panic_counts(ws.files) {
        let allowed = ws.baseline.get(&file).copied().unwrap_or(0);
        if n > allowed {
            rule.emit(
                out,
                &file,
                0,
                format!(
                    "{n} unwrap/expect site(s) in non-test library code, baseline allows \
                     {allowed} — handle the error or push the panic into #[cfg(test)]"
                ),
            );
        }
    }
}

fn hot_path_collections(rule: &Rule, ws: &Workspace, out: &mut Vec<Violation>) {
    for file in ws.files {
        let hot = file
            .rel
            .rsplit('/')
            .next()
            .is_some_and(|n| HOT_PATH_FILES.contains(&n));
        if !hot {
            continue;
        }
        for (line, code) in file.library_code() {
            if code.contains("HashMap") {
                rule.emit(
                    out,
                    &file.rel,
                    line,
                    "HashMap in a hot-path module — use an interned-symbol dense table".into(),
                );
            }
        }
    }
}

fn unsafe_gate(rule: &Rule, ws: &Workspace, out: &mut Vec<Violation>) {
    for file in ws.files {
        if !file.is_crate_root {
            continue;
        }
        let gated = file
            .lines
            .iter()
            .any(|l| l.code.contains("#![deny(unsafe_code)]"));
        if !gated {
            rule.emit(
                out,
                &file.rel,
                0,
                "crate root is missing #![deny(unsafe_code)]".into(),
            );
        }
    }
}

fn std_sync_ban(rule: &Rule, ws: &Workspace, out: &mut Vec<Violation>) {
    for file in ws.files {
        if !SHIM_CRATES.iter().any(|p| file.rel.starts_with(p)) {
            continue;
        }
        for (line, code) in file.library_code() {
            for banned in ["std::sync", "std::thread"] {
                if code.contains(banned) {
                    rule.emit(
                        out,
                        &file.rel,
                        line,
                        format!(
                            "direct `{banned}` in a shim-migrated crate — use the loomlite \
                             facade (`loomlite::sync` / `loomlite::thread`) so the model \
                             checker sees this operation"
                        ),
                    );
                }
            }
        }
    }
}

fn ordering_justify(rule: &Rule, ws: &Workspace, out: &mut Vec<Violation>) {
    for file in ws.files {
        for (line, code) in file.library_code() {
            let weak = WEAK_ORDERINGS.iter().find(|o| code.contains(*o));
            let Some(weak) = weak else { continue };
            let idx = line - 1;
            let from = idx.saturating_sub(ORDERING_COMMENT_WINDOW);
            let justified = file.lines[from..=idx]
                .iter()
                .any(|l| l.comment.contains("ordering:"));
            if !justified {
                rule.emit(
                    out,
                    &file.rel,
                    line,
                    format!(
                        "{weak} without a nearby `// ordering:` justification — say why \
                         this weak ordering is sound (or use SeqCst)"
                    ),
                );
            }
        }
    }
}

/// A `let`-bound lock guard that is still live.
struct Guard {
    ident: String,
    /// Brace depth at the start of the binding line; the guard dies when
    /// a later line *starts* below this depth.
    depth: i64,
}

fn guard_across_io(rule: &Rule, ws: &Workspace, out: &mut Vec<Violation>) {
    for file in ws.files {
        let mut depth: i64 = 0;
        let mut guards: Vec<Guard> = Vec::new();
        for (i, l) in file.lines.iter().enumerate() {
            let start_depth = depth;
            for b in l.code.bytes() {
                match b {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if l.in_test {
                continue;
            }
            guards.retain(|g| start_depth >= g.depth);
            let code = l.code.as_str();
            if !guards.is_empty() {
                if let Some(marker) = IO_MARKERS.iter().find(|m| code.contains(*m)) {
                    let held: Vec<&str> = guards.iter().map(|g| g.ident.as_str()).collect();
                    rule.emit(
                        out,
                        &file.rel,
                        i + 1,
                        format!(
                            "file I/O (`{marker}`) while lock guard(s) `{}` are held — \
                             drop the guard first or move the I/O out of the critical \
                             section",
                            held.join("`, `")
                        ),
                    );
                }
                guards.retain(|g| !code.contains(&format!("drop({})", g.ident)));
            }
            if code.contains(".lock(") {
                if let Some(ident) = let_bound_ident(code) {
                    guards.push(Guard {
                        ident,
                        depth: start_depth,
                    });
                }
            }
        }
    }
}

/// The identifier bound by a `let <ident> = … .lock(…)` line, if the
/// line is such a binding. `match`/`if let` scrutinees are not bindings
/// of the guard itself (the guard dies inside the arm), so they are
/// skipped.
fn let_bound_ident(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    // `let Ok(g) = …` / `let (a, b) = …` destructure the guard away or
    // rebind through a pattern; treat only plain identifiers as guards.
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return None;
    }
    // The `.lock(` must be on the right-hand side of *this* binding, and
    // not inside a `match`/`if` scrutinee (those guards die in the arm).
    let eq = rest.find('=')?;
    let rhs = rest[eq + 1..].trim_start();
    if rhs.starts_with("match ") || rhs.starts_with("if ") {
        return None;
    }
    rhs.contains(".lock(").then_some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ws_run(files: &[SourceFile]) -> Vec<Violation> {
        let baseline = BTreeMap::new();
        run_all(&Workspace {
            files,
            baseline: &baseline,
        })
    }

    fn ids(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    /// A library file every rule accepts.
    fn clean_file() -> SourceFile {
        lex(
            "crates/core/src/ok.rs",
            false,
            "use loomlite::sync::Mutex;\n\
             // ordering: Relaxed is fine here, the counter is advisory.\n\
             fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }\n\
             #[cfg(test)]\n\
             mod tests { use std::sync::Barrier; fn t(x: Option<u8>) { x.unwrap(); } }\n",
        )
    }

    #[test]
    fn clean_fixture_passes_every_rule() {
        assert!(ids(&ws_run(&[clean_file()])).is_empty());
    }

    #[test]
    fn sl0001_fires_on_unbaselined_unwrap_and_respects_baseline() {
        let f = lex(
            "crates/core/src/x.rs",
            false,
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        let v = ws_run(std::slice::from_ref(&f));
        assert_eq!(ids(&v), ["SL0001"]);

        let mut baseline = BTreeMap::new();
        baseline.insert("crates/core/src/x.rs".to_string(), 1);
        let v = run_all(&Workspace {
            files: std::slice::from_ref(&f),
            baseline: &baseline,
        });
        assert!(v.is_empty(), "grandfathered site still fired");
    }

    #[test]
    fn sl0001_ignores_strings_comments_and_tests() {
        let f = lex(
            "crates/core/src/x.rs",
            false,
            "// .unwrap() in a comment\n\
             const S: &str = \".unwrap()\";\n\
             #[cfg(test)]\n\
             mod tests { fn t(x: Option<u8>) { x.unwrap(); } }\n",
        );
        assert!(ids(&ws_run(&[f])).is_empty());
    }

    #[test]
    fn sl0002_fires_only_in_hot_path_files() {
        let hot = lex(
            "crates/core/src/stream.rs",
            false,
            "use std::collections::HashMap;\n",
        );
        let v = ws_run(&[hot]);
        assert!(ids(&v).contains(&"SL0002"));

        let cold = lex(
            "crates/schema/src/types.rs",
            false,
            "use std::collections::HashMap;\n",
        );
        assert!(!ids(&ws_run(&[cold])).contains(&"SL0002"));
    }

    #[test]
    fn sl0003_fires_on_ungated_crate_root() {
        let bad = lex("crates/core/src/lib.rs", true, "pub mod x;\n");
        assert!(ids(&ws_run(&[bad])).contains(&"SL0003"));
        let good = lex(
            "crates/core/src/lib.rs",
            true,
            "#![deny(unsafe_code)]\npub mod x;\n",
        );
        assert!(!ids(&ws_run(&[good])).contains(&"SL0003"));
    }

    #[test]
    fn sl0004_bans_std_sync_in_shim_crates_only() {
        let bad = lex(
            "crates/engine/src/x.rs",
            false,
            "use std::sync::Mutex;\nuse std::thread;\n",
        );
        let v = ws_run(&[bad]);
        assert_eq!(
            ids(&v).iter().filter(|id| **id == "SL0004").count(),
            2,
            "both the sync and the thread import must fire"
        );

        // Unmigrated crates may still use std directly.
        let other = lex("crates/regex/src/x.rs", false, "use std::sync::Mutex;\n");
        assert!(!ids(&ws_run(&[other])).contains(&"SL0004"));
        // Test code inside a shim crate is exempt.
        let test_only = lex(
            "crates/engine/src/x.rs",
            false,
            "#[cfg(test)]\nmod tests { use std::sync::Barrier; }\n",
        );
        assert!(!ids(&ws_run(&[test_only])).contains(&"SL0004"));
        // Doc comments naming std::thread are prose, not imports.
        let doc = lex(
            "crates/engine/src/x.rs",
            false,
            "//! Built on [`std::thread::scope`] semantics.\n",
        );
        assert!(!ids(&ws_run(&[doc])).contains(&"SL0004"));
    }

    #[test]
    fn sl0005_requires_a_nearby_ordering_comment() {
        let bad = lex(
            "crates/core/src/x.rs",
            false,
            "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }\n",
        );
        assert!(ids(&ws_run(&[bad])).contains(&"SL0005"));

        let good = lex(
            "crates/core/src/x.rs",
            false,
            "fn f(c: &AtomicUsize) {\n\
                 // ordering: Relaxed — the counter is monotonic and advisory.\n\
                 c.fetch_add(1, Ordering::Relaxed);\n\
             }\n",
        );
        assert!(!ids(&ws_run(&[good])).contains(&"SL0005"));

        // A justification too far above does not count.
        let far = lex(
            "crates/core/src/x.rs",
            false,
            &format!(
                "// ordering: way up here.\n{}c.fetch_add(1, Ordering::Relaxed);\n",
                "\n".repeat(ORDERING_COMMENT_WINDOW + 1)
            ),
        );
        assert!(ids(&ws_run(&[far])).contains(&"SL0005"));

        // SeqCst needs no justification.
        let seq = lex(
            "crates/core/src/x.rs",
            false,
            "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::SeqCst); }\n",
        );
        assert!(!ids(&ws_run(&[seq])).contains(&"SL0005"));
    }

    #[test]
    fn sl0006_flags_io_under_a_live_guard() {
        let bad = lex(
            "crates/engine/src/x.rs",
            false,
            "fn f(m: &Mutex<u32>, p: &Path) {\n\
                 let guard = m.lock().unwrap();\n\
                 std::fs::write(p, guard.to_string()).ok();\n\
             }\n",
        );
        let v = ws_run(&[bad]);
        assert!(ids(&v).contains(&"SL0006"));

        // Dropping the guard before the I/O is fine.
        let dropped = lex(
            "crates/engine/src/x.rs",
            false,
            "fn f(m: &Mutex<u32>, p: &Path) {\n\
                 let guard = m.lock().unwrap();\n\
                 let v = guard.to_string();\n\
                 drop(guard);\n\
                 std::fs::write(p, v).ok();\n\
             }\n",
        );
        assert!(!ids(&ws_run(&[dropped])).contains(&"SL0006"));

        // A guard that died with its block does not taint later I/O.
        let scoped = lex(
            "crates/engine/src/x.rs",
            false,
            "fn f(m: &Mutex<u32>, p: &Path) {\n\
                 {\n\
                     let guard = m.lock().unwrap();\n\
                     let _ = *guard;\n\
                 }\n\
                 std::fs::write(p, \"x\").ok();\n\
             }\n",
        );
        assert!(!ids(&ws_run(&[scoped])).contains(&"SL0006"));

        // `match rx.lock()` scrutinees release inside the arm — no guard.
        let matched = lex(
            "crates/engine/src/x.rs",
            false,
            "fn f(m: &Mutex<Receiver<u8>>, p: &Path) {\n\
                 let work = match m.lock() { Ok(g) => g.recv(), Err(_) => return };\n\
                 std::fs::write(p, \"x\").ok();\n\
             }\n",
        );
        assert!(!ids(&ws_run(&[matched])).contains(&"SL0006"));
    }
}
