//! Workspace self-lint: source-level invariants that rustc and clippy do
//! not express, run as a CI gate.
//!
//! Three rules, all over the workspace's own library sources (`crates/*/src`
//! plus the root `src/lib.rs`; vendored dependency shims under `vendor/` and
//! this tool itself are out of scope):
//!
//! 1. **Panic ratchet** — `.unwrap()` / `.expect(` in library code outside
//!    `#[cfg(test)]` must not grow. Existing sites are grandfathered in
//!    `baseline.txt`; any file exceeding its baseline (or a new file with
//!    any site at all) fails. Shrink the baseline with `--write-baseline`
//!    when sites are removed — never hand-edit it upward.
//! 2. **Hot-path collections** — `HashMap` is banned in the streaming
//!    hot-path modules (`stream.rs`, `hot.rs`, `index.rs`): SipHash per
//!    lookup is exactly the per-event cost those modules exist to avoid.
//!    Use the interned-symbol dense tables that the rest of the hot path
//!    already uses.
//! 3. **Unsafe gate** — every crate root must carry `#![deny(unsafe_code)]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// File names (anywhere under `crates/*/src`) whose bodies may not name
/// `HashMap`.
const HOT_PATH_FILES: &[&str] = &["stream.rs", "hot.rs", "index.rs"];

fn main() -> ExitCode {
    let mut write_baseline = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("selflint: unknown argument {other:?}");
                eprintln!("usage: selflint [--write-baseline]");
                return ExitCode::from(2);
            }
        }
    }
    let root = match repo_root() {
        Some(r) => r,
        None => {
            eprintln!("selflint: cannot locate the workspace root");
            return ExitCode::from(2);
        }
    };
    match run(&root, write_baseline) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!("selflint: {n} violation(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("selflint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root is two levels above this tool's manifest directory.
fn repo_root() -> Option<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent()?.parent()?;
    Some(root.to_path_buf())
}

fn run(root: &Path, write_baseline: bool) -> Result<usize, String> {
    let files = library_sources(root)?;
    let counts = panic_site_counts(root, &files)?;
    if write_baseline {
        let path = baseline_path();
        fs::write(&path, render_baseline(&counts))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("selflint: baseline rewritten ({} files)", counts.len());
        return Ok(0);
    }
    let mut violations = 0;
    violations += check_panic_ratchet(&counts)?;
    violations += check_hot_path_collections(root, &files)?;
    violations += check_unsafe_gate(root)?;
    if violations == 0 {
        println!(
            "selflint: {} library files clean (panic ratchet, hot-path collections, unsafe gate)",
            files.len()
        );
    }
    Ok(violations)
}

/// All `.rs` files under each `crates/*/src`, plus the root crate's
/// `src/lib.rs`. Sorted for deterministic reports.
fn library_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("reading {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", crates.display()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let root_lib = root.join("src/lib.rs");
    if root_lib.is_file() {
        files.push(root_lib);
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

// ---------------------------------------------------------------------------
// Rule 1: panic ratchet.
// ---------------------------------------------------------------------------

fn panic_site_counts(root: &Path, files: &[PathBuf]) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    for path in files {
        let body = strip_non_library(&read(path)?);
        let n = count_occurrences(&body, ".unwrap()") + count_occurrences(&body, ".expect(");
        if n > 0 {
            counts.insert(rel(root, path), n);
        }
    }
    Ok(counts)
}

fn check_panic_ratchet(counts: &BTreeMap<String, usize>) -> Result<usize, String> {
    let baseline = load_baseline()?;
    let mut violations = 0;
    for (file, &n) in counts {
        let allowed = baseline.get(file).copied().unwrap_or(0);
        if n > allowed {
            violations += 1;
            eprintln!(
                "selflint[panic-ratchet]: {file}: {n} unwrap/expect site(s) in non-test \
                 library code, baseline allows {allowed} — handle the error or push the \
                 panic into #[cfg(test)]"
            );
        } else if n < allowed {
            println!(
                "selflint[panic-ratchet]: {file}: {n} site(s), baseline {allowed} — \
                 run `cargo run -p selflint -- --write-baseline` to ratchet down"
            );
        }
    }
    Ok(violations)
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline.txt")
}

fn load_baseline() -> Result<BTreeMap<String, usize>, String> {
    let path = baseline_path();
    let text = read(&path)?;
    let mut map = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (file, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("{}:{}: expected `<path> <count>`", path.display(), i + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("{}:{}: bad count {count:?}", path.display(), i + 1))?;
        map.insert(file.trim().to_string(), count);
    }
    Ok(map)
}

fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "# Grandfathered unwrap()/expect() sites in non-test library code.\n\
         # Regenerate with `cargo run -p selflint -- --write-baseline`.\n\
         # This file may only shrink: never hand-edit a count upward.\n",
    );
    for (file, n) in counts {
        let _ = writeln!(out, "{file} {n}");
    }
    out
}

/// Removes `#[cfg(test)]`-gated items (by brace matching from the attribute)
/// and `//` line comments, leaving only the code the lint rules apply to.
fn strip_non_library(src: &str) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if line.trim_start().starts_with("#[cfg(test)]") {
            // Skip the attribute plus the item it gates, tracking brace
            // depth until the item's block closes.
            let mut depth: i64 = 0;
            let mut started = false;
            while i < lines.len() {
                for b in lines[i].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            started = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                i += 1;
                if started && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        let code = match line.find("//") {
            Some(pos) => &line[..pos],
            None => line,
        };
        out.push_str(code);
        out.push('\n');
        i += 1;
    }
    out
}

fn count_occurrences(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

// ---------------------------------------------------------------------------
// Rule 2: hot-path collections.
// ---------------------------------------------------------------------------

fn check_hot_path_collections(root: &Path, files: &[PathBuf]) -> Result<usize, String> {
    let mut violations = 0;
    for path in files {
        let is_hot = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| HOT_PATH_FILES.contains(&n));
        if !is_hot {
            continue;
        }
        let body = strip_non_library(&read(path)?);
        let hits = count_occurrences(&body, "HashMap");
        if hits > 0 {
            violations += 1;
            eprintln!(
                "selflint[hot-path]: {}: {hits} HashMap reference(s) in a hot-path \
                 module — use an interned-symbol dense table instead",
                rel(root, path)
            );
        }
    }
    Ok(violations)
}

// ---------------------------------------------------------------------------
// Rule 3: unsafe gate.
// ---------------------------------------------------------------------------

fn check_unsafe_gate(root: &Path) -> Result<usize, String> {
    let mut roots = Vec::new();
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("reading {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", crates.display()))?;
        let lib = entry.path().join("src/lib.rs");
        if lib.is_file() {
            roots.push(lib);
        }
    }
    roots.push(root.join("src/lib.rs"));
    roots.sort();
    let mut violations = 0;
    for path in &roots {
        if !read(path)?.contains("#![deny(unsafe_code)]") {
            violations += 1;
            eprintln!(
                "selflint[unsafe-gate]: {}: crate root is missing #![deny(unsafe_code)]",
                rel(root, path)
            );
        }
    }
    Ok(violations)
}
