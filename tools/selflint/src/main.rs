//! Workspace self-lint: source-level invariants that rustc and clippy do
//! not express, run as a CI gate.
//!
//! selflint is a small static-analysis driver: it lexes every library
//! source into token channels (code with literal contents blanked,
//! comment text, `#[cfg(test)]` region flags — see [`lexer`]) and runs
//! the `SL`-prefixed rule registry (see [`rules`]) over the result. Rules
//! therefore cannot be fooled by a `HashMap` in a string literal, a
//! `std::sync` mention in a doc comment, or braces inside `"…"`.
//!
//! Scope: `crates/*/src` plus the root `src/lib.rs`. Vendored shims under
//! `vendor/` and the tools themselves are out of scope (loomlite *is* the
//! std wrapper the std-sync ban points at).
//!
//! Usage: `selflint [--write-baseline] [--json]`.
//!
//! * `--write-baseline` regenerates the panic-ratchet baseline from the
//!   current tree (only ever run it to ratchet *down*).
//! * `--json` emits machine-readable findings on stdout for CI artifacts.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

mod lexer;
mod rules;

use lexer::SourceFile;
use rules::{Violation, Workspace};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut write_baseline = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            "--json" => json = true,
            other => {
                eprintln!("selflint: unknown argument {other:?}");
                eprintln!("usage: selflint [--write-baseline] [--json]");
                return ExitCode::from(2);
            }
        }
    }
    let root = match repo_root() {
        Some(r) => r,
        None => {
            eprintln!("selflint: cannot locate the workspace root");
            return ExitCode::from(2);
        }
    };
    match run(&root, write_baseline, json) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!("selflint: {n} violation(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("selflint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root is two levels above this tool's manifest directory.
fn repo_root() -> Option<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent()?.parent()?;
    Some(root.to_path_buf())
}

fn run(root: &Path, write_baseline: bool, json: bool) -> Result<usize, String> {
    let files = load_sources(root)?;
    if write_baseline {
        let counts = rules::panic_counts(&files);
        let path = baseline_path();
        fs::write(&path, render_baseline(&counts))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("selflint: baseline rewritten ({} files)", counts.len());
        return Ok(0);
    }
    let baseline = load_baseline()?;
    let violations = rules::run_all(&Workspace {
        files: &files,
        baseline: &baseline,
    });
    if json {
        println!("{}", render_json(&files, &violations));
    } else {
        for v in &violations {
            if v.line == 0 {
                eprintln!("selflint[{} {}]: {}: {}", v.rule, v.name, v.file, v.message);
            } else {
                eprintln!(
                    "selflint[{} {}]: {}:{}: {}",
                    v.rule, v.name, v.file, v.line, v.message
                );
            }
        }
        report_ratchet_slack(&files, &baseline);
        if violations.is_empty() {
            println!(
                "selflint: {} library files clean across {} rules",
                files.len(),
                rules::RULES.len()
            );
        }
    }
    Ok(violations.len())
}

/// Points out baseline entries that can ratchet down (informational).
fn report_ratchet_slack(files: &[SourceFile], baseline: &BTreeMap<String, usize>) {
    let counts = rules::panic_counts(files);
    for (file, &allowed) in baseline {
        let n = counts.get(file).copied().unwrap_or(0);
        if n < allowed {
            println!(
                "selflint[SL0001 panic-ratchet]: {file}: {n} site(s), baseline {allowed} — \
                 run `cargo run -p selflint -- --write-baseline` to ratchet down"
            );
        }
    }
}

/// Collects and lexes all `.rs` files under each `crates/*/src`, plus the
/// root crate's `src/lib.rs`. Sorted for deterministic reports.
fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("reading {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", crates.display()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    let root_lib = root.join("src/lib.rs");
    if root_lib.is_file() {
        paths.push(root_lib);
    }
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let is_crate_root = rel.ends_with("src/lib.rs");
            Ok(lexer::lex(&rel, is_crate_root, &text))
        })
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Panic-ratchet baseline I/O.
// ---------------------------------------------------------------------------

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline.txt")
}

fn load_baseline() -> Result<BTreeMap<String, usize>, String> {
    let path = baseline_path();
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut map = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (file, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("{}:{}: expected `<path> <count>`", path.display(), i + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("{}:{}: bad count {count:?}", path.display(), i + 1))?;
        map.insert(file.trim().to_string(), count);
    }
    Ok(map)
}

fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "# Grandfathered unwrap()/expect() sites in non-test library code.\n\
         # Regenerate with `cargo run -p selflint -- --write-baseline`.\n\
         # This file may only shrink: never hand-edit a count upward.\n",
    );
    for (file, n) in counts {
        let _ = writeln!(out, "{file} {n}");
    }
    out
}

// ---------------------------------------------------------------------------
// JSON report (hand-rolled: the workspace carries no serde).
// ---------------------------------------------------------------------------

fn render_json(files: &[SourceFile], violations: &[Violation]) -> String {
    use std::fmt::Write;
    let mut out = String::from("{");
    let _ = write!(out, "\"files_scanned\":{},", files.len());
    let _ = write!(
        out,
        "\"rules\":[{}],",
        rules::RULES
            .iter()
            .map(|r| format!("{{\"id\":\"{}\",\"name\":\"{}\"}}", r.id, r.name))
            .collect::<Vec<_>>()
            .join(",")
    );
    out.push_str("\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            v.rule,
            v.name,
            json_escape(&v.file),
            v.line,
            json_escape(&v.message)
        );
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
