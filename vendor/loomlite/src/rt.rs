//! The virtual scheduler: one-at-a-time execution of model threads with a
//! DFS over scheduling (and relaxed-load visibility) choices.
//!
//! Only compiled under `--cfg loomlite`. Every shim operation reports to
//! this module: the running thread hits a *choice point* before each
//! effect, the scheduler consults the current [`Path`] (the DFS cursor
//! into the interleaving tree), and either lets the thread continue or
//! context-switches. Blocking operations park the thread on a resource
//! id; releases wake parked threads (wake ≠ run — a woken thread still
//! competes at the next choice point). When no thread can run and at
//! least one is parked, the execution is a deadlock and the failure is
//! reported with a replayable schedule seed.
//!
//! Memory orderings are modeled per atomic location: every store is kept
//! in modification order with the storer's vector clock, and a
//! non-SeqCst load may read any store that is neither behind the
//! loader's coherence floor nor superseded by a store that
//! happened-before the load. Acquire loads of Release stores join
//! clocks. `SeqCst` loads and all read-modify-writes read the newest
//! store (a sound simplification documented in DESIGN.md §14).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Hard ceiling on model threads per execution (keep models small).
pub(crate) const MAX_THREADS: usize = 8;
/// Soft cap on retained stores per atomic before dead-store pruning.
const ATOMIC_SOFT_CAP: usize = 16;
/// Hard cap: a model retaining this many live stores on one atomic is
/// too large to check and fails loudly rather than thrashing.
const ATOMIC_HARD_CAP: usize = 256;

/// Process-global object-id allocator. Ids only key per-execution state,
/// so their absolute values never affect replay determinism.
static OBJECT_IDS: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_object_id() -> u64 {
    OBJECT_IDS.fetch_add(1, StdOrdering::Relaxed)
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling thread's identity within the active model execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Sched>,
    pub(crate) tid: usize,
}

pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(new: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = new);
}

/// Panic payload used to tear an execution down after a failure; never
/// reported as the root cause itself.
pub(crate) struct Aborted;

fn panic_abort() -> ! {
    std::panic::panic_any(Aborted)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Vector clocks.
// ---------------------------------------------------------------------------

/// A per-thread vector clock (indexed by model thread id).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub(crate) struct Vc(Vec<u32>);

impl Vc {
    fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &Vc) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

// ---------------------------------------------------------------------------
// The DFS path: the position in the interleaving tree.
// ---------------------------------------------------------------------------

/// The sequence of choices (with arities) defining one execution. The
/// seed string round-trips through [`Path::seed`]/[`Path::from_seed`].
#[derive(Clone, Default, Debug)]
pub(crate) struct Path {
    arity: Vec<u32>,
    chosen: Vec<u32>,
    cursor: usize,
}

impl Path {
    /// Takes the next choice among `arity` alternatives. Unary points
    /// are not recorded (they cannot branch), keeping seeds short.
    fn next(&mut self, arity: u32) -> u32 {
        debug_assert!(arity >= 1);
        if arity == 1 {
            return 0;
        }
        let at = self.cursor;
        self.cursor += 1;
        if at < self.chosen.len() {
            // Replaying a prefix (or a full seed). Clamp defensively so a
            // stale seed degrades to *an* execution rather than an index
            // panic; exact traces require an unchanged model.
            self.arity[at] = arity;
            self.chosen[at] = self.chosen[at].min(arity - 1);
            self.chosen[at]
        } else {
            self.arity.push(arity);
            self.chosen.push(0);
            0
        }
    }

    /// Advances to the lexicographically next schedule. Returns `false`
    /// once the tree is exhausted.
    pub(crate) fn advance(&mut self) -> bool {
        while let Some((&a, &c)) = self.arity.last().zip(self.chosen.last()) {
            if c + 1 < a {
                *self.chosen.last_mut().expect("nonempty") += 1;
                self.cursor = 0;
                return true;
            }
            self.arity.pop();
            self.chosen.pop();
        }
        false
    }

    /// Resets the replay cursor for a fresh execution of this path.
    pub(crate) fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Drops planned choices the execution never reached (after an early
    /// failure), so seeds describe exactly the consumed schedule.
    pub(crate) fn truncate_to_cursor(&mut self) {
        self.arity.truncate(self.cursor);
        self.chosen.truncate(self.cursor);
    }

    /// Encodes the schedule as a replayable seed string.
    pub(crate) fn seed(&self) -> String {
        let digits: Vec<String> = self.chosen.iter().map(|c| c.to_string()).collect();
        format!("ll1:{}", digits.join("."))
    }

    /// Decodes a seed produced by [`Path::seed`].
    pub(crate) fn from_seed(seed: &str) -> Option<Path> {
        let body = seed.trim().strip_prefix("ll1:")?;
        let mut chosen = Vec::new();
        if !body.is_empty() {
            for part in body.split('.') {
                chosen.push(part.parse().ok()?);
            }
        }
        Some(Path {
            arity: vec![u32::MAX; chosen.len()],
            chosen,
            cursor: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// Scheduler state.
// ---------------------------------------------------------------------------

/// Exploration limits. See [`crate::Config`] for the public face (the
/// execution-count ceiling is enforced by the exploration driver, not
/// here).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RtConfig {
    pub(crate) preemption_bound: Option<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(u64),
    Finished,
}

struct ThreadSt {
    status: Status,
    vc: Vc,
    /// Resource id joiners block on until this thread finishes.
    finish_res: u64,
}

/// One store in an atomic location's modification order.
struct AtomicStore {
    val: u64,
    tid: usize,
    /// The storer's full clock at the store (for happened-before tests).
    vc_at: Vc,
    /// The clock transferred to acquire loads (set by release stores and
    /// carried along release sequences through read-modify-writes).
    rel: Option<Vc>,
}

enum Resource {
    Lock {
        held: bool,
        release_vc: Vc,
    },
    RwLock {
        readers: usize,
        writer: bool,
        release_vc: Vc,
    },
    Chan {
        len: usize,
        cap: usize,
        senders: usize,
        recv_alive: bool,
        msg_vc: VecDeque<Vc>,
    },
    Condvar {
        notify_vc: Vc,
    },
    Atomic {
        stores: Vec<AtomicStore>,
        /// Per-thread coherence floor: the oldest store index the thread
        /// may still read.
        floor: Vec<usize>,
    },
    // Finished-thread markers (ThreadSt::finish_res) are bare resource
    // ids threads park on; they never get a Resource entry.
}

struct State {
    threads: Vec<ThreadSt>,
    active: usize,
    path: Path,
    preemptions: usize,
    aborted: bool,
    failure: Option<String>,
    resources: HashMap<u64, Resource>,
}

/// The per-execution scheduler shared by every model thread.
pub(crate) struct Sched {
    m: StdMutex<State>,
    cv: StdCondvar,
    cfg: RtConfig,
}

/// What [`Sched::chan_send`] / [`Sched::chan_recv`] observed.
pub(crate) enum ChanVerdict {
    Ok,
    Disconnected,
}

impl Sched {
    pub(crate) fn new(cfg: RtConfig, mut path: Path) -> Sched {
        path.rewind();
        let main = ThreadSt {
            status: Status::Runnable,
            vc: Vc::default(),
            finish_res: fresh_object_id(),
        };
        Sched {
            m: StdMutex::new(State {
                threads: vec![main],
                active: 0,
                path,
                preemptions: 0,
                aborted: false,
                failure: None,
                resources: HashMap::new(),
            }),
            cv: StdCondvar::new(),
            cfg,
        }
    }

    fn state(&self) -> StdMutexGuard<'_, State> {
        // The scheduler's own lock is never held across user code, so it
        // can only be poisoned by a bug in this module; propagate.
        match self.m.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    /// Records the first failure of the execution and tears it down.
    fn fail(&self, st: &mut State, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborted = true;
        self.cv.notify_all();
    }

    /// Public entry for shim-level failures (e.g. model-size overflow).
    pub(crate) fn fail_now(&self, msg: String) -> ! {
        let mut st = self.state();
        self.fail(&mut st, msg);
        drop(st);
        panic_abort()
    }

    /// Tears the execution down from a thread that must keep control
    /// (e.g. a scope owner unwinding with unscheduled children): records
    /// the root cause, wakes everything, and returns without panicking.
    pub(crate) fn abort_execution(&self, root_cause: Option<String>) {
        let mut st = self.state();
        if let Some(msg) = root_cause {
            self.fail(&mut st, msg);
        } else {
            st.aborted = true;
            self.cv.notify_all();
        }
    }

    /// Waits for `tid` to finish without scheduling or abort panics —
    /// teardown-safe (the target finishes by unwinding on its own).
    pub(crate) fn join_finished_raw(&self, tid: usize) {
        let mut st = self.state();
        while st.threads[tid].status != Status::Finished {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
    }

    pub(crate) fn take_result(&self) -> (Path, Option<String>, usize) {
        let mut st = self.state();
        let path = std::mem::take(&mut st.path);
        (path, st.failure.take(), st.preemptions)
    }

    // -- core scheduling --------------------------------------------------

    /// Picks the next active thread after `me` stopped, blocked, or hit a
    /// choice point. Must be called with the state lock held.
    fn pick_next(&self, st: &mut State, me: usize) {
        if st.aborted {
            return;
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<usize> = (0..st.threads.len())
                .filter(|&t| matches!(st.threads[t].status, Status::Blocked(_)))
                .collect();
            if !blocked.is_empty() {
                self.fail(
                    st,
                    format!("deadlock: thread(s) {blocked:?} blocked with no runnable thread"),
                );
            }
            // All finished: execution complete; waiters see it via status.
            self.cv.notify_all();
            return;
        }
        let me_runnable = st.threads[me].status == Status::Runnable;
        let budget_left = self
            .cfg
            .preemption_bound
            .map_or(true, |b| st.preemptions < b);
        let chosen = if me_runnable && !budget_left {
            me
        } else {
            // Candidate order: the current thread first (choice 0 = "no
            // preemption"), then the others by id, so seeds are stable.
            let mut candidates = Vec::with_capacity(runnable.len());
            if me_runnable {
                candidates.push(me);
            }
            candidates.extend(runnable.iter().copied().filter(|&t| t != me));
            let pick = st.path.next(candidates.len() as u32) as usize;
            candidates[pick]
        };
        if chosen != me && me_runnable {
            st.preemptions += 1;
        }
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Parks until this thread is both runnable and active.
    fn wait_active<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, State>,
        me: usize,
    ) -> StdMutexGuard<'a, State> {
        loop {
            if st.aborted {
                if std::thread::panicking() {
                    // Already unwinding (teardown drop handler): never
                    // double-panic; degrade to free-running teardown.
                    return st;
                }
                drop(st);
                panic_abort();
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                return st;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
    }

    /// The choice point before every shim effect: may context-switch.
    pub(crate) fn yield_point(&self, me: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut st = self.state();
        if st.aborted {
            drop(st);
            panic_abort();
        }
        self.pick_next(&mut st, me);
        let st = self.wait_active(st, me);
        drop(st);
    }

    /// Parks `me` on `res` until a wake, then reschedules. The state
    /// guard is consumed so block decisions stay atomic with the check
    /// that led to them.
    fn block_on<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, State>,
        me: usize,
        res: u64,
    ) -> StdMutexGuard<'a, State> {
        st.threads[me].status = Status::Blocked(res);
        self.pick_next(&mut st, me);
        self.wait_active(st, me)
    }

    fn wake_all(st: &mut State, res: u64) {
        for t in &mut st.threads {
            if t.status == Status::Blocked(res) {
                t.status = Status::Runnable;
            }
        }
    }

    fn wake_one(st: &mut State, res: u64) {
        for t in &mut st.threads {
            if t.status == Status::Blocked(res) {
                t.status = Status::Runnable;
                return;
            }
        }
    }

    // -- threads ----------------------------------------------------------

    /// Registers a child thread of `parent`; the child starts runnable
    /// but does not run until scheduled. The caller must hit a choice
    /// point (`yield_point`) only *after* the backing OS thread exists,
    /// or the scheduler could hand the token to a thread nobody runs.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.state();
        if st.threads.len() >= MAX_THREADS {
            let msg = format!("model spawned more than {MAX_THREADS} threads");
            self.fail(&mut st, msg);
            drop(st);
            panic_abort();
        }
        st.threads[parent].vc.tick(parent);
        let vc = st.threads[parent].vc.clone();
        let tid = st.threads.len();
        st.threads.push(ThreadSt {
            status: Status::Runnable,
            vc,
            finish_res: fresh_object_id(),
        });
        tid
    }

    /// First schedule gate for a freshly spawned model thread.
    pub(crate) fn first_schedule(&self, me: usize) {
        let st = self.state();
        let st = self.wait_active(st, me);
        drop(st);
    }

    /// Marks `me` finished (normal return) and hands the token on.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.state();
        st.threads[me].status = Status::Finished;
        let res = st.threads[me].finish_res;
        Self::wake_all(&mut st, res);
        if !st.aborted {
            self.pick_next(&mut st, me);
        } else {
            // Raw condvar waiters (teardown joins) still need the nudge.
            self.cv.notify_all();
        }
    }

    /// Marks `me` finished after a panic. A non-[`Aborted`] payload is
    /// the execution's root-cause failure.
    pub(crate) fn finish_thread_panicked(&self, me: usize, root_cause: Option<String>) {
        let mut st = self.state();
        st.threads[me].status = Status::Finished;
        let res = st.threads[me].finish_res;
        Self::wake_all(&mut st, res);
        if let Some(msg) = root_cause {
            self.fail(&mut st, format!("thread {me} panicked: {msg}"));
        }
        if !st.aborted {
            self.pick_next(&mut st, me);
        } else {
            self.cv.notify_all();
        }
    }

    /// Blocks `me` until `tid` finishes (join). Tolerates abort mode,
    /// where the joined thread finishes by unwinding on its own.
    pub(crate) fn join_thread(&self, me: usize, tid: usize) {
        self.yield_point(me);
        let mut st = self.state();
        loop {
            if st.threads[tid].status == Status::Finished {
                let vc = st.threads[tid].vc.clone();
                st.threads[me].vc.join(&vc);
                return;
            }
            if st.aborted {
                // The child will finish by panicking once woken; wait on
                // the raw condvar without scheduling.
                st = match self.cv.wait(st) {
                    Ok(g) => g,
                    Err(e) => e.into_inner(),
                };
                continue;
            }
            let res = st.threads[tid].finish_res;
            st = self.block_on(st, me, res);
        }
    }

    /// Drives the execution to completion after the model closure
    /// returned (or unwound): marks the main thread finished and waits
    /// for every other thread to finish.
    pub(crate) fn drive_to_completion(&self) {
        let mut st = self.state();
        if st.threads[0].status != Status::Finished {
            st.threads[0].status = Status::Finished;
            let res = st.threads[0].finish_res;
            Self::wake_all(&mut st, res);
            if !st.aborted {
                self.pick_next(&mut st, 0);
            } else {
                self.cv.notify_all();
            }
        }
        while !st.threads.iter().all(|t| t.status == Status::Finished) {
            // In abort mode threads finish by unwinding; otherwise
            // pick_next has already handed the token to a runnable thread
            // (or declared a deadlock, which sets abort mode).
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
    }

    // -- locks ------------------------------------------------------------

    pub(crate) fn lock_acquire(&self, me: usize, res: u64) {
        self.yield_point(me);
        let mut st = self.state();
        loop {
            if st.aborted {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                panic_abort();
            }
            let r = st.resources.entry(res).or_insert(Resource::Lock {
                held: false,
                release_vc: Vc::default(),
            });
            let Resource::Lock { held, release_vc } = r else {
                unreachable!("resource kind mismatch");
            };
            if !*held {
                *held = true;
                let vc = release_vc.clone();
                st.threads[me].vc.join(&vc);
                return;
            }
            st = self.block_on(st, me, res);
        }
    }

    pub(crate) fn lock_release(&self, me: usize, res: u64) {
        let mut st = self.state();
        st.threads[me].vc.tick(me);
        let vc = st.threads[me].vc.clone();
        if let Some(Resource::Lock { held, release_vc }) = st.resources.get_mut(&res) {
            *held = false;
            release_vc.join(&vc);
        }
        Self::wake_all(&mut st, res);
    }

    pub(crate) fn rwlock_acquire(&self, me: usize, res: u64, write: bool) {
        self.yield_point(me);
        let mut st = self.state();
        loop {
            if st.aborted {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                panic_abort();
            }
            let r = st.resources.entry(res).or_insert(Resource::RwLock {
                readers: 0,
                writer: false,
                release_vc: Vc::default(),
            });
            let Resource::RwLock {
                readers,
                writer,
                release_vc,
            } = r
            else {
                unreachable!("resource kind mismatch");
            };
            let free = if write {
                !*writer && *readers == 0
            } else {
                !*writer
            };
            if free {
                if write {
                    *writer = true;
                } else {
                    *readers += 1;
                }
                let vc = release_vc.clone();
                st.threads[me].vc.join(&vc);
                return;
            }
            st = self.block_on(st, me, res);
        }
    }

    pub(crate) fn rwlock_release(&self, me: usize, res: u64, write: bool) {
        let mut st = self.state();
        st.threads[me].vc.tick(me);
        let vc = st.threads[me].vc.clone();
        if let Some(Resource::RwLock {
            readers,
            writer,
            release_vc,
        }) = st.resources.get_mut(&res)
        {
            if write {
                *writer = false;
            } else {
                *readers = readers.saturating_sub(1);
            }
            release_vc.join(&vc);
        }
        Self::wake_all(&mut st, res);
    }

    // -- condition variables ----------------------------------------------

    /// Atomically releases `lock_res` and parks on `cv_res`; the caller
    /// reacquires the lock afterwards.
    pub(crate) fn condvar_wait(&self, me: usize, cv_res: u64, lock_res: u64) {
        self.yield_point(me);
        let mut st = self.state();
        st.threads[me].vc.tick(me);
        let vc = st.threads[me].vc.clone();
        if let Some(Resource::Lock { held, release_vc }) = st.resources.get_mut(&lock_res) {
            *held = false;
            release_vc.join(&vc);
        }
        Self::wake_all(&mut st, lock_res);
        st.resources.entry(cv_res).or_insert(Resource::Condvar {
            notify_vc: Vc::default(),
        });
        let mut st = self.block_on(st, me, cv_res);
        if let Some(Resource::Condvar { notify_vc }) = st.resources.get(&cv_res) {
            let vc = notify_vc.clone();
            st.threads[me].vc.join(&vc);
        }
    }

    pub(crate) fn condvar_notify(&self, me: usize, cv_res: u64, all: bool) {
        self.yield_point(me);
        let mut st = self.state();
        st.threads[me].vc.tick(me);
        let vc = st.threads[me].vc.clone();
        let entry = st.resources.entry(cv_res).or_insert(Resource::Condvar {
            notify_vc: Vc::default(),
        });
        if let Resource::Condvar { notify_vc } = entry {
            notify_vc.join(&vc);
        }
        // A notification with no waiter is lost — exactly the std
        // semantics the lost-wakeup suite exercises.
        if all {
            Self::wake_all(&mut st, cv_res);
        } else {
            Self::wake_one(&mut st, cv_res);
        }
    }

    // -- bounded channels --------------------------------------------------

    pub(crate) fn chan_register(&self, res: u64, cap: usize) {
        let mut st = self.state();
        st.resources.entry(res).or_insert(Resource::Chan {
            len: 0,
            cap,
            senders: 1,
            recv_alive: true,
            msg_vc: VecDeque::new(),
        });
    }

    /// Blocks while the queue is full; `Disconnected` once the receiver
    /// is gone. On `Ok` the caller must push the value into the typed
    /// queue before its next choice point.
    pub(crate) fn chan_send(&self, me: usize, res: u64) -> ChanVerdict {
        self.yield_point(me);
        let mut st = self.state();
        loop {
            if st.aborted {
                drop(st);
                if std::thread::panicking() {
                    return ChanVerdict::Disconnected;
                }
                panic_abort();
            }
            let Some(Resource::Chan {
                len,
                cap,
                recv_alive,
                msg_vc,
                ..
            }) = st.resources.get_mut(&res)
            else {
                return ChanVerdict::Disconnected;
            };
            if !*recv_alive {
                return ChanVerdict::Disconnected;
            }
            if *len < *cap {
                *len += 1;
                let _ = msg_vc;
                st.threads[me].vc.tick(me);
                let vc = st.threads[me].vc.clone();
                if let Some(Resource::Chan { msg_vc, .. }) = st.resources.get_mut(&res) {
                    msg_vc.push_back(vc);
                }
                Self::wake_all(&mut st, res);
                return ChanVerdict::Ok;
            }
            st = self.block_on(st, me, res);
        }
    }

    /// Blocks while the queue is empty; `Disconnected` once every sender
    /// is gone *and* the queue drained. On `Ok` the caller pops the
    /// typed queue before its next choice point.
    pub(crate) fn chan_recv(&self, me: usize, res: u64) -> ChanVerdict {
        self.yield_point(me);
        let mut st = self.state();
        loop {
            if st.aborted {
                drop(st);
                if std::thread::panicking() {
                    return ChanVerdict::Disconnected;
                }
                panic_abort();
            }
            let Some(Resource::Chan {
                len,
                senders,
                msg_vc,
                ..
            }) = st.resources.get_mut(&res)
            else {
                return ChanVerdict::Disconnected;
            };
            if *len > 0 {
                *len -= 1;
                let vc = msg_vc.pop_front().unwrap_or_default();
                st.threads[me].vc.join(&vc);
                Self::wake_all(&mut st, res);
                return ChanVerdict::Ok;
            }
            if *senders == 0 {
                return ChanVerdict::Disconnected;
            }
            st = self.block_on(st, me, res);
        }
    }

    pub(crate) fn chan_sender_cloned(&self, res: u64) {
        let mut st = self.state();
        if let Some(Resource::Chan { senders, .. }) = st.resources.get_mut(&res) {
            *senders += 1;
        }
    }

    pub(crate) fn chan_sender_dropped(&self, res: u64) {
        let mut st = self.state();
        if let Some(Resource::Chan { senders, .. }) = st.resources.get_mut(&res) {
            *senders = senders.saturating_sub(1);
            if *senders == 0 {
                Self::wake_all(&mut st, res);
            }
        }
    }

    pub(crate) fn chan_receiver_dropped(&self, res: u64) {
        let mut st = self.state();
        if let Some(Resource::Chan { recv_alive, .. }) = st.resources.get_mut(&res) {
            *recv_alive = false;
            Self::wake_all(&mut st, res);
        }
    }

    // -- atomics -----------------------------------------------------------

    fn atomic_entry<'a>(
        st: &'a mut State,
        res: u64,
        init: u64,
    ) -> (&'a mut Vec<AtomicStore>, &'a mut Vec<usize>) {
        let r = st.resources.entry(res).or_insert_with(|| Resource::Atomic {
            stores: vec![AtomicStore {
                val: init,
                tid: 0,
                vc_at: Vc::default(),
                rel: None,
            }],
            floor: Vec::new(),
        });
        let Resource::Atomic { stores, floor } = r else {
            unreachable!("resource kind mismatch");
        };
        (stores, floor)
    }

    fn floor_of(floor: &mut Vec<usize>, tid: usize) -> usize {
        if floor.len() <= tid {
            floor.resize(tid + 1, 0);
        }
        floor[tid]
    }

    /// Whether `stores[j]` happened before the current point of `me`.
    fn store_hb(stores: &[AtomicStore], j: usize, me_vc: &Vc) -> bool {
        let s = &stores[j];
        // The initial store (empty clock) happened before everything.
        s.vc_at.is_empty() || s.vc_at.get(s.tid) <= me_vc.get(s.tid)
    }

    /// A load with ordering `ord`: SeqCst reads the newest store; weaker
    /// orderings may read any coherent, non-superseded store (a DFS
    /// choice when several qualify).
    pub(crate) fn atomic_load(
        &self,
        me: usize,
        res: u64,
        ord: std::sync::atomic::Ordering,
        init: u64,
    ) -> u64 {
        use std::sync::atomic::Ordering::*;
        self.yield_point(me);
        let mut st = self.state();
        let me_vc = st.threads[me].vc.clone();
        let (stores, floor) = Self::atomic_entry(&mut st, res, init);
        let newest = stores.len() - 1;
        let lo = Self::floor_of(floor, me);
        let chosen = if matches!(ord, SeqCst) {
            newest
        } else {
            // Candidates newest-first so choice 0 (the first schedule
            // explored) behaves sequentially consistently.
            let mut candidates: Vec<usize> = Vec::new();
            'cand: for i in (lo..=newest).rev() {
                for j in (i + 1)..=newest {
                    if Self::store_hb(stores, j, &me_vc) {
                        continue 'cand; // superseded: j hb the load
                    }
                }
                candidates.push(i);
            }
            debug_assert!(!candidates.is_empty(), "newest store is always readable");
            let pick = st.path.next(candidates.len() as u32) as usize;
            candidates[pick]
        };
        let (stores, floor) = Self::atomic_entry(&mut st, res, init);
        let val = stores[chosen].val;
        let rel = stores[chosen].rel.clone();
        Self::floor_of(floor, me);
        floor[me] = floor[me].max(chosen);
        if matches!(ord, Acquire | AcqRel | SeqCst) {
            if let Some(rel) = rel {
                st.threads[me].vc.join(&rel);
            }
        }
        val
    }

    pub(crate) fn atomic_store(
        &self,
        me: usize,
        res: u64,
        ord: std::sync::atomic::Ordering,
        init: u64,
        val: u64,
    ) {
        use std::sync::atomic::Ordering::*;
        self.yield_point(me);
        let mut st = self.state();
        st.threads[me].vc.tick(me);
        let me_vc = st.threads[me].vc.clone();
        let rel = if matches!(ord, Release | AcqRel | SeqCst) {
            Some(me_vc.clone())
        } else {
            None
        };
        let (stores, floor) = Self::atomic_entry(&mut st, res, init);
        stores.push(AtomicStore {
            val,
            tid: me,
            vc_at: me_vc,
            rel,
        });
        Self::floor_of(floor, me);
        floor[me] = stores.len() - 1;
        self.atomic_prune(&mut st, res);
    }

    /// Read-modify-write: reads the newest store (as C11 requires),
    /// applies `f`, appends the result, and carries release sequences.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        res: u64,
        ord: std::sync::atomic::Ordering,
        init: u64,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> (u64, u64) {
        use std::sync::atomic::Ordering::*;
        self.yield_point(me);
        let mut st = self.state();
        st.threads[me].vc.tick(me);
        let me_vc = st.threads[me].vc.clone();
        let (stores, floor) = Self::atomic_entry(&mut st, res, init);
        let old = stores.last().expect("nonempty history").val;
        let prev_rel = stores.last().expect("nonempty history").rel.clone();
        let new = f(old);
        // Release sequence: an acquire read of this RMW synchronizes with
        // the release store it read from, so carry that clock forward.
        let mut rel = if matches!(ord, Release | AcqRel | SeqCst) {
            Some(me_vc.clone())
        } else {
            None
        };
        if let Some(p) = prev_rel.clone() {
            match &mut rel {
                Some(r) => r.join(&p),
                None => rel = Some(p),
            }
        }
        stores.push(AtomicStore {
            val: new,
            tid: me,
            vc_at: me_vc,
            rel,
        });
        let newest = stores.len() - 1;
        Self::floor_of(floor, me);
        floor[me] = newest;
        if matches!(ord, Acquire | AcqRel | SeqCst) {
            if let Some(p) = prev_rel {
                st.threads[me].vc.join(&p);
            }
        }
        self.atomic_prune(&mut st, res);
        (old, new)
    }

    /// Compare-and-swap against the newest store. A hit appends the new
    /// value (carrying release sequences like any RMW); a miss is just a
    /// load of the newest store — no store is appended, so no spurious
    /// happens-before edges are introduced.
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        res: u64,
        ord: std::sync::atomic::Ordering,
        init: u64,
        current: u64,
        new: u64,
    ) -> Result<u64, u64> {
        use std::sync::atomic::Ordering::*;
        self.yield_point(me);
        let mut st = self.state();
        let (stores, floor) = Self::atomic_entry(&mut st, res, init);
        let newest = stores.len() - 1;
        let old = stores[newest].val;
        let prev_rel = stores[newest].rel.clone();
        let hit = old == current;
        if hit {
            st.threads[me].vc.tick(me);
            let me_vc = st.threads[me].vc.clone();
            let mut rel = if matches!(ord, Release | AcqRel | SeqCst) {
                Some(me_vc.clone())
            } else {
                None
            };
            if let Some(p) = prev_rel.clone() {
                match &mut rel {
                    Some(r) => r.join(&p),
                    None => rel = Some(p),
                }
            }
            let (stores, floor) = Self::atomic_entry(&mut st, res, init);
            stores.push(AtomicStore {
                val: new,
                tid: me,
                vc_at: me_vc,
                rel,
            });
            let top = stores.len() - 1;
            Self::floor_of(floor, me);
            floor[me] = top;
        } else {
            Self::floor_of(floor, me);
            floor[me] = floor[me].max(newest);
        }
        if matches!(ord, Acquire | AcqRel | SeqCst) {
            if let Some(p) = prev_rel {
                st.threads[me].vc.join(&p);
            }
        }
        if hit {
            self.atomic_prune(&mut st, res);
            Ok(old)
        } else {
            Err(old)
        }
    }

    /// Drops stores no live thread can ever read again; fails the model
    /// if the history still overflows the hard cap.
    fn atomic_prune(&self, st: &mut State, res: u64) {
        let live_vcs: Vec<Vc> = st
            .threads
            .iter()
            .filter(|t| t.status != Status::Finished)
            .map(|t| t.vc.clone())
            .collect();
        let Some(Resource::Atomic { stores, floor }) = st.resources.get_mut(&res) else {
            return;
        };
        if stores.len() <= ATOMIC_SOFT_CAP {
            return;
        }
        // A store is dead once some later store happened-before every
        // live thread: no current (or future, by clock inheritance)
        // thread may read it.
        let mut cut = 0;
        'scan: for i in 0..stores.len() - 1 {
            let superseded = ((i + 1)..stores.len())
                .any(|j| live_vcs.iter().all(|vc| Self::store_hb(stores, j, vc)));
            if superseded {
                cut = i + 1;
            } else {
                break 'scan;
            }
        }
        if cut > 0 {
            stores.drain(..cut);
            for f in floor.iter_mut() {
                *f = f.saturating_sub(cut);
            }
        }
        if stores.len() > ATOMIC_HARD_CAP {
            let msg =
                format!("atomic history exceeded {ATOMIC_HARD_CAP} live stores; shrink the model");
            self.fail(st, msg);
        }
    }
}
