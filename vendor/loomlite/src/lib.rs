//! loomlite — a zero-dependency deterministic-interleaving model
//! checker in the loom/shuttle school, sized for this workspace.
//!
//! Code is written once against `loomlite::sync` / `loomlite::thread`:
//!
//! - **Normal builds** compile those modules to pure `std::sync` /
//!   `std::thread` re-exports — zero cost, byte-for-byte std behavior —
//!   and [`model`] simply runs the closure once (a smoke execution).
//! - **Under `--cfg loomlite`** the same paths resolve to shim types
//!   driven by a virtual scheduler. [`model`] then runs the closure
//!   under *every* schedule (DFS over context-switch and relaxed-load
//!   visibility choices, preemption-bounded), and any panic, deadlock,
//!   or assertion failure is reported together with a **seed** such as
//!   `ll1:0.2.1` that [`replay`] (or the `LOOMLITE_REPLAY` environment
//!   variable) turns back into the exact failing interleaving.
//!
//! Model closures must create their shared state inside the closure
//! (each execution is independent), keep models small (≤ 4 threads, a
//! handful of operations), and must not touch real time or real I/O on
//! modeled paths.
//!
//! The checker is exhaustive *for the model*, not for the real memory
//! system: `SeqCst` loads and all read-modify-writes read the newest
//! store in modification order, so some exotic non-SeqCst behaviors are
//! under-approximated; see DESIGN.md §14 for the full soundness notes.

/// Exploration limits for [`model_with`].
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum number of involuntary context switches per execution
    /// (`None` = unbounded). Two preemptions catch almost every real
    /// bug (the CHESS observation) at a fraction of the schedule count.
    pub preemption_bound: Option<usize>,
    /// Hard ceiling on explored executions; exceeding it fails the test
    /// rather than burning CI time.
    pub max_executions: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(2),
            max_executions: 100_000,
        }
    }
}

/// Extracts the replay seed from a [`model`] failure message (panic
/// payload), if one is present.
pub fn seed_from_failure(msg: &str) -> Option<String> {
    let at = msg.find("schedule seed: ")?;
    let rest = &msg[at + "schedule seed: ".len()..];
    let seed: String = rest.chars().take_while(|c| !c.is_whitespace()).collect();
    seed.starts_with("ll1:").then_some(seed)
}

#[cfg(not(loomlite))]
mod facade {
    /// `true` when built with `--cfg loomlite` (exhaustive mode).
    pub const MODEL_CHECKING_ENABLED: bool = false;

    /// Drop-in for `std::sync`, re-exported verbatim in normal builds.
    pub mod sync {
        pub use std::sync::{
            Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard,
            RwLockWriteGuard, TryLockError, TryLockResult, Weak,
        };

        /// Drop-in for `std::sync::atomic`.
        pub mod atomic {
            pub use std::sync::atomic::*;
        }

        /// Drop-in for `std::sync::mpsc`.
        pub mod mpsc {
            pub use std::sync::mpsc::*;
        }
    }

    /// Drop-in for `std::thread`, re-exported verbatim in normal builds.
    pub mod thread {
        pub use std::thread::*;
    }

    /// Runs the closure once (a smoke execution). Under `--cfg
    /// loomlite` this same call explores every schedule.
    pub fn model<F: Fn()>(f: F) {
        f();
    }

    /// [`model`] with explicit limits (ignored in normal builds).
    pub fn model_with<F: Fn()>(_cfg: super::Config, f: F) {
        f();
    }

    /// Replays a recorded schedule. In normal builds the schedule is
    /// meaningless, so the closure just runs once.
    pub fn replay<F: Fn()>(_seed: &str, f: F) {
        f();
    }
}

#[cfg(loomlite)]
mod msync;
#[cfg(loomlite)]
mod mthread;
#[cfg(loomlite)]
mod rt;

#[cfg(loomlite)]
mod facade {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    use crate::rt;

    /// `true` when built with `--cfg loomlite` (exhaustive mode).
    pub const MODEL_CHECKING_ENABLED: bool = true;

    /// Model-checked drop-in for `std::sync`.
    pub mod sync {
        pub use crate::msync::{
            Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
        };
        pub use std::sync::{Arc, LockResult, PoisonError, TryLockError, TryLockResult, Weak};

        /// Model-checked drop-in for `std::sync::atomic`.
        pub mod atomic {
            pub use crate::msync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
            pub use std::sync::atomic::Ordering;
        }

        /// Model-checked drop-in for `std::sync::mpsc`.
        pub mod mpsc {
            pub use crate::msync::{sync_channel, Iter, Receiver, SyncSender};
            pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};
        }
    }

    /// Model-checked drop-in for `std::thread`.
    pub mod thread {
        pub use crate::mthread::{
            available_parallelism, scope, spawn, yield_now, JoinHandle, Result, Scope,
            ScopedJoinHandle,
        };
    }

    impl From<super::Config> for rt::RtConfig {
        fn from(c: super::Config) -> rt::RtConfig {
            rt::RtConfig {
                preemption_bound: c.preemption_bound,
            }
        }
    }

    /// Runs `f` under every schedule (DFS, preemption-bounded) and
    /// panics with a replayable seed on the first failing one.
    pub fn model<F: Fn()>(f: F) {
        model_with(super::Config::default(), f);
    }

    /// [`model`] with explicit exploration limits. Honors the
    /// `LOOMLITE_REPLAY` environment variable by replaying that seed
    /// instead of exploring.
    pub fn model_with<F: Fn()>(cfg: super::Config, f: F) {
        if let Ok(seed) = std::env::var("LOOMLITE_REPLAY") {
            replay_with(cfg, &seed, &f);
            return;
        }
        let mut path = rt::Path::default();
        let mut executions = 0usize;
        loop {
            executions += 1;
            if executions > cfg.max_executions {
                panic!(
                    "loomlite: {} executions without exhausting the schedule \
                     space; shrink the model or raise Config::max_executions",
                    cfg.max_executions
                );
            }
            let (next, failure) = run_one(cfg, path, &f);
            path = next;
            if let Some(msg) = failure {
                path.truncate_to_cursor();
                panic!(
                    "loomlite: model failure on execution {executions}: {msg}\n  \
                     schedule seed: {seed}\n  \
                     replay with loomlite::replay(\"{seed}\", ...) or \
                     LOOMLITE_REPLAY={seed}",
                    seed = path.seed()
                );
            }
            if !path.advance() {
                break;
            }
        }
    }

    /// Replays one recorded schedule; panics if it still fails (the
    /// expected outcome when diagnosing) and returns quietly otherwise.
    pub fn replay<F: Fn()>(seed: &str, f: F) {
        replay_with(super::Config::default(), seed, &f);
    }

    fn replay_with<F: Fn()>(cfg: super::Config, seed: &str, f: &F) {
        let path = rt::Path::from_seed(seed)
            .unwrap_or_else(|| panic!("loomlite: malformed schedule seed {seed:?}"));
        let (mut path, failure) = run_one(cfg, path, f);
        if let Some(msg) = failure {
            path.truncate_to_cursor();
            panic!(
                "loomlite: replayed failure: {msg}\n  schedule seed: {}",
                path.seed()
            );
        }
    }

    /// One execution of `f` along `path`. Returns the as-executed path
    /// and the failure, if any.
    fn run_one<F: Fn()>(cfg: super::Config, path: rt::Path, f: &F) -> (rt::Path, Option<String>) {
        let sched = Arc::new(rt::Sched::new(cfg.into(), path));
        rt::set_ctx(Some(rt::Ctx {
            sched: sched.clone(),
            tid: 0,
        }));
        let out = catch_unwind(AssertUnwindSafe(f));
        if let Err(p) = &out {
            let root = if p.is::<rt::Aborted>() {
                None
            } else {
                Some(format!(
                    "main model thread panicked: {}",
                    rt::payload_msg(p.as_ref() as &(dyn std::any::Any + Send))
                ))
            };
            sched.abort_execution(root);
        }
        sched.drive_to_completion();
        rt::set_ctx(None);
        let (path, failure, _preemptions) = sched.take_result();
        (path, failure)
    }
}

pub use facade::*;
