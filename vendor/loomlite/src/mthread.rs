//! Model-mode shims for `std::thread`. Only compiled under
//! `--cfg loomlite`.
//!
//! Model threads are real OS threads gated by the virtual scheduler: at
//! most one runs between choice points, so the interleaving is exactly
//! the one the DFS path dictates. Spawned outside a model execution,
//! everything degrades to plain `std::thread`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt::{ctx, payload_msg, set_ctx, Aborted, Ctx, Sched};

pub use std::thread::{available_parallelism, Result};

/// Runs `f` as model thread `tid`: installs the context, waits for the
/// first schedule, and reports normal or panicked completion.
fn run_model<T>(sched: Arc<Sched>, tid: usize, f: impl FnOnce() -> T) -> T {
    set_ctx(Some(Ctx {
        sched: sched.clone(),
        tid,
    }));
    sched.first_schedule(tid);
    let out = catch_unwind(AssertUnwindSafe(f));
    set_ctx(None);
    match out {
        Ok(v) => {
            sched.finish_thread(tid);
            v
        }
        Err(p) => {
            let root = if p.is::<Aborted>() {
                None
            } else {
                Some(payload_msg(p.as_ref()))
            };
            sched.finish_thread_panicked(tid, root);
            resume_unwind(p)
        }
    }
}

/// Model-checked drop-in for [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    std: std::thread::JoinHandle<T>,
    model: Option<(Arc<Sched>, usize)>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> Result<T> {
        if let Some((sched, tid)) = &self.model {
            match ctx() {
                Some(c) => sched.join_thread(c.tid, *tid),
                None => sched.join_finished_raw(*tid),
            }
        }
        self.std.join()
    }

    pub fn is_finished(&self) -> bool {
        self.std.is_finished()
    }
}

/// Model-checked drop-in for [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        None => JoinHandle {
            std: std::thread::spawn(f),
            model: None,
        },
        Some(c) => {
            let tid = c.sched.register_thread(c.tid);
            let sched = c.sched.clone();
            let std = std::thread::spawn(move || run_model(sched, tid, f));
            // The spawn is a choice point, but only now that the OS
            // thread backing the new model thread actually exists.
            c.sched.yield_point(c.tid);
            JoinHandle {
                std,
                model: Some((c.sched, tid)),
            }
        }
    }
}

/// Model-checked drop-in for [`std::thread::yield_now`]: a pure choice
/// point inside a model execution.
pub fn yield_now() {
    match ctx() {
        None => std::thread::yield_now(),
        Some(c) => c.sched.yield_point(c.tid),
    }
}

/// Model-checked drop-in for [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<ScopeModel>,
}

struct ScopeModel {
    sched: Arc<Sched>,
    owner: usize,
    children: std::sync::Mutex<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            None => ScopedJoinHandle {
                std: self.std.spawn(f),
                model: None,
            },
            Some(m) => {
                let me = ctx().map_or(m.owner, |c| c.tid);
                let tid = m.sched.register_thread(me);
                m.children
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(tid);
                let sched = m.sched.clone();
                let std = self.std.spawn(move || run_model(sched, tid, f));
                m.sched.yield_point(me);
                ScopedJoinHandle {
                    std,
                    model: Some((m.sched.clone(), tid)),
                }
            }
        }
    }
}

/// Model-checked drop-in for [`std::thread::ScopedJoinHandle`].
pub struct ScopedJoinHandle<'scope, T> {
    std: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Sched>, usize)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T> {
        if let Some((sched, tid)) = &self.model {
            match ctx() {
                Some(c) => sched.join_thread(c.tid, *tid),
                None => sched.join_finished_raw(*tid),
            }
        }
        self.std.join()
    }

    pub fn is_finished(&self) -> bool {
        self.std.is_finished()
    }
}

/// Model-checked drop-in for [`std::thread::scope`]. Before std's
/// implicit join of still-running children, every child is model-joined
/// (normal exit) or the execution is aborted and children are waited out
/// (owner unwinding) — otherwise the implicit join would deadlock the
/// scheduler.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    match ctx() {
        None => std::thread::scope(|s| {
            f(&Scope {
                std: s,
                model: None,
            })
        }),
        Some(c) => std::thread::scope(|s| {
            let sc = Scope {
                std: s,
                model: Some(ScopeModel {
                    sched: c.sched.clone(),
                    owner: c.tid,
                    children: std::sync::Mutex::new(Vec::new()),
                }),
            };
            let out = catch_unwind(AssertUnwindSafe(|| f(&sc)));
            let m = sc.model.as_ref().expect("model scope");
            let children: Vec<usize> = {
                let g = m
                    .children
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                g.clone()
            };
            match out {
                Ok(v) => {
                    for tid in children {
                        m.sched.join_thread(m.owner, tid);
                    }
                    v
                }
                Err(p) => {
                    let root = if p.is::<Aborted>() {
                        None
                    } else {
                        Some(format!(
                            "scope owner (thread {}) panicked: {}",
                            m.owner,
                            payload_msg(p.as_ref())
                        ))
                    };
                    m.sched.abort_execution(root);
                    for tid in children {
                        m.sched.join_finished_raw(tid);
                    }
                    resume_unwind(p)
                }
            }
        }),
    }
}
