//! Model-mode shim types for `std::sync`. Only compiled under
//! `--cfg loomlite`.
//!
//! Every type embeds its real `std` counterpart so that, when an
//! operation runs *outside* a [`crate::model`] execution (no thread-local
//! scheduler context), it degrades gracefully to plain std behavior.
//! Inside a model execution the operation first reports to the virtual
//! scheduler (choice point, blocking, happens-before bookkeeping) and
//! only then touches the std object, which by construction is always
//! uncontended at that instant.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{RecvError, SendError};
use std::sync::{Arc, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

use crate::rt::{ctx, fresh_object_id, ChanVerdict, Ctx, Sched};

// ---------------------------------------------------------------------------
// Mutex.
// ---------------------------------------------------------------------------

/// Model-checked drop-in for [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Mutex<T> {
        Mutex {
            id: fresh_object_id(),
            inner: StdMutex::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = ctx();
        if let Some(c) = &model {
            c.sched.lock_acquire(c.tid, self.id);
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]; releases the model lock (waking contenders) on
/// drop, after the embedded std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// The scheduler context captured at acquisition; `None` when the
    /// lock was taken outside a model execution.
    model: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(c) = self.model.take() {
            c.sched.lock_release(c.tid, self.lock.id);
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock.
// ---------------------------------------------------------------------------

/// Model-checked drop-in for [`std::sync::RwLock`].
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(t: T) -> RwLock<T> {
        RwLock {
            id: fresh_object_id(),
            inner: std::sync::RwLock::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let model = ctx();
        if let Some(c) = &model {
            c.sched.rwlock_acquire(c.tid, self.id, false);
        }
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                lock_id: self.id,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                lock_id: self.id,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let model = ctx();
        if let Some(c) = &model {
            c.sched.rwlock_acquire(c.tid, self.id, true);
        }
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                lock_id: self.id,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                lock_id: self.id,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock_id: u64,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(c) = self.model.take() {
            c.sched.rwlock_release(c.tid, self.lock_id, false);
        }
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock_id: u64,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(c) = self.model.take() {
            c.sched.rwlock_release(c.tid, self.lock_id, true);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar.
// ---------------------------------------------------------------------------

/// Model-checked drop-in for [`std::sync::Condvar`]. Notifications with
/// no waiter are lost, exactly like the real thing — which is what the
/// lost-wakeup suites rely on.
pub struct Condvar {
    id: u64,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            id: fresh_object_id(),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let std_g = guard.inner.take().expect("guard present");
                let lock = guard.lock;
                drop(guard); // disarmed: no model release
                match self.inner.wait(std_g) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
            Some(c) => {
                // Dissolve the guard (std unlock now; the model release
                // happens atomically with parking inside condvar_wait).
                let lock = guard.lock;
                drop(guard.inner.take());
                drop(guard);
                c.sched.condvar_wait(c.tid, self.id, lock.id);
                // Reacquire: model first, then the (uncontended) std lock.
                c.sched.lock_acquire(c.tid, lock.id);
                match lock.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: Some(c),
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: Some(c),
                    })),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match ctx() {
            None => self.inner.notify_one(),
            Some(c) => c.sched.condvar_notify(c.tid, self.id, false),
        }
    }

    pub fn notify_all(&self) {
        match ctx() {
            None => self.inner.notify_all(),
            Some(c) => c.sched.condvar_notify(c.tid, self.id, true),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// Atomics.
// ---------------------------------------------------------------------------

/// Generates a model-checked drop-in for one std integer atomic.
macro_rules! model_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Model-checked drop-in for the std atomic of the same name.
        /// The embedded std atomic mirrors the newest value so fallback
        /// (non-model) use and lazy model registration stay coherent.
        pub struct $name {
            id: std::sync::OnceLock<u64>,
            std: $std,
        }

        impl $name {
            pub const fn new(v: $prim) -> $name {
                $name {
                    id: std::sync::OnceLock::new(),
                    std: <$std>::new(v),
                }
            }

            fn res(&self) -> u64 {
                *self.id.get_or_init(fresh_object_id)
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                match ctx() {
                    None => self.std.load(ord),
                    Some(c) => {
                        let init = self.std.load(Ordering::Relaxed) as u64;
                        c.sched.atomic_load(c.tid, self.res(), ord, init) as $prim
                    }
                }
            }

            pub fn store(&self, val: $prim, ord: Ordering) {
                match ctx() {
                    None => self.std.store(val, ord),
                    Some(c) => {
                        let init = self.std.load(Ordering::Relaxed) as u64;
                        c.sched
                            .atomic_store(c.tid, self.res(), ord, init, val as u64);
                        self.std.store(val, Ordering::Relaxed);
                    }
                }
            }

            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, |_| val, |s| s.swap(val, ord))
            }

            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, |o| o.wrapping_add(val), |s| s.fetch_add(val, ord))
            }

            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, |o| o.wrapping_sub(val), |s| s.fetch_sub(val, ord))
            }

            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, |o| o | val, |s| s.fetch_or(val, ord))
            }

            pub fn fetch_and(&self, val: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, |o| o & val, |s| s.fetch_and(val, ord))
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match ctx() {
                    None => self.std.compare_exchange(current, new, success, failure),
                    Some(c) => {
                        let init = self.std.load(Ordering::Relaxed) as u64;
                        // The failure ordering is subsumed by modeling the
                        // miss as a plain load of the newest store.
                        let r = c.sched.atomic_cas(
                            c.tid,
                            self.res(),
                            success,
                            init,
                            current as u64,
                            new as u64,
                        );
                        if r.is_ok() {
                            self.std.store(new, Ordering::Relaxed);
                        }
                        r.map(|v| v as $prim).map_err(|v| v as $prim)
                    }
                }
            }

            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                // Spurious failures are not modeled; correct code must
                // already loop, and the strong semantics are a subset.
                self.compare_exchange(current, new, success, failure)
            }

            fn rmw(
                &self,
                ord: Ordering,
                model_op: impl Fn($prim) -> $prim,
                std_op: impl FnOnce(&$std) -> $prim,
            ) -> $prim {
                match ctx() {
                    None => std_op(&self.std),
                    Some(c) => {
                        let init = self.std.load(Ordering::Relaxed) as u64;
                        let (old, new) =
                            c.sched.atomic_rmw(c.tid, self.res(), ord, init, &mut |o| {
                                model_op(o as $prim) as u64
                            });
                        self.std.store(new as $prim, Ordering::Relaxed);
                        old as $prim
                    }
                }
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(<$prim>::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.std.fmt(f)
            }
        }
    };
}

model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

/// Model-checked drop-in for [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    id: std::sync::OnceLock<u64>,
    std: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            id: std::sync::OnceLock::new(),
            std: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn res(&self) -> u64 {
        *self.id.get_or_init(fresh_object_id)
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match ctx() {
            None => self.std.load(ord),
            Some(c) => {
                let init = self.std.load(Ordering::Relaxed) as u64;
                c.sched.atomic_load(c.tid, self.res(), ord, init) != 0
            }
        }
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        match ctx() {
            None => self.std.store(val, ord),
            Some(c) => {
                let init = self.std.load(Ordering::Relaxed) as u64;
                c.sched
                    .atomic_store(c.tid, self.res(), ord, init, val as u64);
                self.std.store(val, Ordering::Relaxed);
            }
        }
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match ctx() {
            None => self.std.swap(val, ord),
            Some(c) => {
                let init = self.std.load(Ordering::Relaxed) as u64;
                let (old, new) = c
                    .sched
                    .atomic_rmw(c.tid, self.res(), ord, init, &mut |_| val as u64);
                self.std.store(new != 0, Ordering::Relaxed);
                old != 0
            }
        }
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match ctx() {
            None => self.std.compare_exchange(current, new, success, failure),
            Some(c) => {
                let init = self.std.load(Ordering::Relaxed) as u64;
                let r = c.sched.atomic_cas(
                    c.tid,
                    self.res(),
                    success,
                    init,
                    current as u64,
                    new as u64,
                );
                if r.is_ok() {
                    self.std.store(new, Ordering::Relaxed);
                }
                r.map(|v| v != 0).map_err(|v| v != 0)
            }
        }
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.std.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Bounded channel (std::sync::mpsc::sync_channel).
// ---------------------------------------------------------------------------

struct ModelChan<T> {
    id: u64,
    sched: Arc<Sched>,
    q: StdMutex<VecDeque<T>>,
}

impl<T> ModelChan<T> {
    fn q(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match self.q.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

enum SInner<T> {
    Std(std::sync::mpsc::SyncSender<T>),
    Model(Arc<ModelChan<T>>),
}

enum RInner<T> {
    Std(std::sync::mpsc::Receiver<T>),
    Model(Arc<ModelChan<T>>),
}

/// Model-checked drop-in for [`std::sync::mpsc::SyncSender`].
pub struct SyncSender<T>(SInner<T>);

/// Model-checked drop-in for [`std::sync::mpsc::Receiver`].
pub struct Receiver<T>(RInner<T>);

/// Model-checked drop-in for [`std::sync::mpsc::sync_channel`]. The
/// channel mode is fixed at creation: created inside a model execution,
/// it is scheduler-driven; otherwise it is a plain std channel.
pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
    match ctx() {
        None => {
            let (tx, rx) = std::sync::mpsc::sync_channel(cap);
            (SyncSender(SInner::Std(tx)), Receiver(RInner::Std(rx)))
        }
        Some(c) => {
            if cap == 0 {
                c.sched
                    .fail_now("loomlite: rendezvous (capacity 0) channels are not modeled".into());
            }
            let id = fresh_object_id();
            c.sched.chan_register(id, cap);
            let chan = Arc::new(ModelChan {
                id,
                sched: c.sched.clone(),
                q: StdMutex::new(VecDeque::new()),
            });
            (
                SyncSender(SInner::Model(chan.clone())),
                Receiver(RInner::Model(chan)),
            )
        }
    }
}

impl<T> SyncSender<T> {
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SInner::Std(tx) => tx.send(t),
            SInner::Model(chan) => {
                let Some(c) = ctx() else {
                    // Model channel used outside the execution (teardown
                    // stragglers): the receiver is unreachable for real.
                    return Err(SendError(t));
                };
                match chan.sched.chan_send(c.tid, chan.id) {
                    ChanVerdict::Ok => {
                        chan.q().push_back(t);
                        Ok(())
                    }
                    ChanVerdict::Disconnected => Err(SendError(t)),
                }
            }
        }
    }
}

impl<T> Clone for SyncSender<T> {
    fn clone(&self) -> SyncSender<T> {
        match &self.0 {
            SInner::Std(tx) => SyncSender(SInner::Std(tx.clone())),
            SInner::Model(chan) => {
                chan.sched.chan_sender_cloned(chan.id);
                SyncSender(SInner::Model(chan.clone()))
            }
        }
    }
}

impl<T> Drop for SyncSender<T> {
    fn drop(&mut self) {
        if let SInner::Model(chan) = &self.0 {
            chan.sched.chan_sender_dropped(chan.id);
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            RInner::Std(rx) => rx.recv(),
            RInner::Model(chan) => {
                let Some(c) = ctx() else {
                    return Err(RecvError);
                };
                match chan.sched.chan_recv(c.tid, chan.id) {
                    ChanVerdict::Ok => chan.q().pop_front().ok_or(RecvError),
                    ChanVerdict::Disconnected => Err(RecvError),
                }
            }
        }
    }

    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Blocking iterator over received values, ending at disconnect.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let RInner::Model(chan) = &self.0 {
            chan.sched.chan_receiver_dropped(chan.id);
        }
    }
}
