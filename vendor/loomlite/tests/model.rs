//! Checker self-tests.
//!
//! The first half runs in both modes (one smoke execution in normal
//! builds, exhaustive under `--cfg loomlite`). The second half is
//! gated on the model cfg: it seeds bugs the checker must *find* and
//! verifies the failure seeds replay deterministically.

use loomlite::sync::atomic::{AtomicUsize, Ordering};
use loomlite::sync::{Arc, Condvar, Mutex};
use loomlite::{model, thread};

#[test]
fn mutex_counter_is_exact() {
    model(|| {
        let n = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = n.clone();
            handles.push(thread::spawn(move || {
                *n.lock().expect("unpoisoned") += 1;
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*n.lock().expect("unpoisoned"), 2);
    });
}

#[test]
fn atomic_rmw_counter_is_exact() {
    model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = n.clone();
            handles.push(thread::spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn channel_is_fifo_and_drains() {
    model(|| {
        let (tx, rx) = loomlite::sync::mpsc::sync_channel::<u32>(2);
        let producer = thread::spawn(move || {
            for i in 0..4 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().expect("producer");
        assert_eq!(got, vec![0, 1, 2, 3]);
    });
}

#[test]
fn release_acquire_publishes() {
    model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d, f) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            // ordering: Release pairs with the Acquire load below; the
            // data write must be visible once the flag is observed.
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        // ordering: Acquire pairs with the Release store above.
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().expect("publisher");
    });
}

#[test]
fn scoped_threads_accumulate() {
    model(|| {
        let total = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn condvar_handoff_completes() {
    model(|| {
        let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let s = slot.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*s;
            *m.lock().expect("unpoisoned") = Some(7);
            cv.notify_one();
        });
        let (m, cv) = &*slot;
        let mut g = m.lock().expect("unpoisoned");
        while g.is_none() {
            g = cv.wait(g).expect("unpoisoned");
        }
        assert_eq!(*g, Some(7));
        drop(g);
        t.join().expect("setter");
    });
}

// ---------------------------------------------------------------------------
// Exhaustive-mode-only: the checker must FIND seeded bugs, and the
// printed seed must replay the exact failing interleaving.
// ---------------------------------------------------------------------------

#[cfg(loomlite)]
mod detection {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn payload_string(p: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            panic!("non-string model failure payload");
        }
    }

    /// The checker must find a failure containing `needle`, print a
    /// seed, and that seed must deterministically replay to the same
    /// failure.
    fn expect_found_and_replayable(f: impl Fn() + Copy + 'static, needle: &str) {
        let err = catch_unwind(AssertUnwindSafe(|| model(f)))
            .expect_err("the checker missed a seeded bug");
        let msg = payload_string(err.as_ref());
        assert!(msg.contains(needle), "unexpected failure: {msg}");
        let seed = loomlite::seed_from_failure(&msg)
            .unwrap_or_else(|| panic!("failure without a seed: {msg}"));
        let err = catch_unwind(AssertUnwindSafe(|| loomlite::replay(&seed, f)))
            .expect_err("seed failed to reproduce the bug");
        let rmsg = payload_string(err.as_ref());
        assert!(rmsg.contains(needle), "replay diverged: {rmsg}");
    }

    #[test]
    fn finds_lost_update_on_relaxed_counter() {
        expect_found_and_replayable(
            || {
                let n = Arc::new(AtomicUsize::new(0));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let n = n.clone();
                    handles.push(thread::spawn(move || {
                        // Seeded bug: load+store instead of an atomic RMW.
                        let v = n.load(Ordering::Relaxed);
                        n.store(v + 1, Ordering::Relaxed);
                    }));
                }
                for h in handles {
                    h.join().expect("worker");
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            },
            "lost update",
        );
    }

    #[test]
    fn finds_relaxed_publish_reordering() {
        expect_found_and_replayable(
            || {
                let data = Arc::new(AtomicUsize::new(0));
                let flag = Arc::new(AtomicUsize::new(0));
                let (d, f) = (data.clone(), flag.clone());
                let t = thread::spawn(move || {
                    d.store(42, Ordering::Relaxed);
                    // Seeded bug: Relaxed where Release is required.
                    f.store(1, Ordering::Relaxed);
                });
                if flag.load(Ordering::Relaxed) == 1 {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "unpublished read");
                }
                t.join().expect("publisher");
            },
            "unpublished read",
        );
    }

    #[test]
    fn finds_ab_ba_deadlock() {
        expect_found_and_replayable(
            || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (a.clone(), b.clone());
                let t = thread::spawn(move || {
                    let _ga = a2.lock().expect("unpoisoned");
                    let _gb = b2.lock().expect("unpoisoned");
                });
                let _gb = b.lock().expect("unpoisoned");
                let _ga = a.lock().expect("unpoisoned");
                drop((_ga, _gb));
                t.join().expect("worker");
            },
            "deadlock",
        );
    }

    #[test]
    fn finds_lost_wakeup() {
        expect_found_and_replayable(
            || {
                let ready = Arc::new(AtomicUsize::new(0));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let (r, p) = (ready.clone(), pair.clone());
                let t = thread::spawn(move || {
                    // Seeded bug: predicate not under the condvar's
                    // mutex, so the notify can land between the check
                    // and the wait and nobody re-checks.
                    r.store(1, Ordering::SeqCst);
                    p.1.notify_one();
                });
                let (m, cv) = &*pair;
                let g = m.lock().expect("unpoisoned");
                if ready.load(Ordering::SeqCst) == 0 {
                    let _g = cv.wait(g).expect("unpoisoned");
                }
                t.join().expect("notifier");
            },
            "deadlock",
        );
    }

    #[test]
    fn seq_cst_publish_is_clean() {
        // Control: the correctly-ordered sibling of the seeded bugs
        // explores the same schedules and finds nothing.
        model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let n = n.clone();
                handles.push(thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().expect("worker");
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }
}
