//! Minimal read-only memory mapping for the corpus pipeline.
//!
//! The workspace vendors every dependency, so instead of the `memmap2`
//! crate this shim binds `mmap(2)`/`munmap(2)` directly (libc is already
//! linked by std on every unix target — no `libc` crate needed) and
//! falls back to an ordinary buffered read whenever mapping is
//! unavailable: zero-length files (POSIX forbids zero-length mappings),
//! non-unix platforms, or an `mmap` failure of any kind. Callers never
//! see the difference except through [`Mmap::is_mapped`], which the
//! batch stats use to report `bytes_mmapped` honestly.
//!
//! This is the one place in the workspace that contains `unsafe` — the
//! library crates all carry `#![deny(unsafe_code)]` and the selflint
//! gate keeps it that way; vendored shims are its explicit escape hatch.
//! The mapping is private and read-only (`PROT_READ`, `MAP_PRIVATE`), so
//! the usual aliasing hazards reduce to one: truncating the file while
//! it is mapped can deliver `SIGBUS` on access. The corpus pipeline maps
//! each file briefly, validates, and drops the map; a corpus mutated
//! mid-run is already outside its consistency contract.

use std::fs::File;
use std::io;
use std::io::Read;

/// The bytes of one file, either memory-mapped or buffered.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped(Region),
    Buffered(Vec<u8>),
}

#[cfg(unix)]
struct Region {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// A private read-only mapping is plain immutable memory: sharing the
// pointer across threads is as safe as sharing a `&[u8]`.
#[cfg(unix)]
unsafe impl Send for Region {}
#[cfg(unix)]
unsafe impl Sync for Region {}

#[cfg(unix)]
impl Drop for Region {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap of exactly
        // this length, and the region is not referenced after drop.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(unix)]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut core::ffi::c_void {
        usize::MAX as *mut core::ffi::c_void
    }
}

impl Mmap {
    /// Maps `file` read-only from offset 0 for its full current length,
    /// falling back to reading it into a buffer when mapping is
    /// unavailable. The buffered fallback reads from the file's current
    /// cursor, so pass a freshly opened handle.
    ///
    /// # Errors
    /// Only the fallback read can fail; a refused mapping itself is not
    /// an error, just a slower path.
    pub fn map(file: &File) -> io::Result<Mmap> {
        #[cfg(unix)]
        {
            let len = file.metadata()?.len();
            if len > 0 {
                if let Ok(len) = usize::try_from(len) {
                    if let Some(region) = unix_map(file, len) {
                        return Ok(Mmap {
                            inner: Inner::Mapped(region),
                        });
                    }
                }
            }
        }
        let mut buf = Vec::new();
        let mut reader: &File = file;
        reader.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Buffered(buf),
        })
    }

    /// The file's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: the region was mapped readable for exactly `len`
            // bytes and lives as long as `self`.
            Inner::Mapped(r) => unsafe { std::slice::from_raw_parts(r.ptr.cast::<u8>(), r.len) },
            Inner::Buffered(b) => b,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes come from a real memory mapping (`false` means
    /// the buffered fallback was taken).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(_) => true,
            Inner::Buffered(_) => false,
        }
    }
}

#[cfg(unix)]
fn unix_map(file: &File, len: usize) -> Option<Region> {
    use std::os::unix::io::AsRawFd;
    let fd = file.as_raw_fd();
    // SAFETY: a fresh private read-only mapping of a file descriptor we
    // hold open; the kernel validates fd/len/offset and reports failure
    // as MAP_FAILED, which we turn into the buffered fallback.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            fd,
            0,
        )
    };
    if ptr == sys::map_failed() || ptr.is_null() {
        return None;
    }
    Some(Region { ptr, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mmapio-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        File::create(&path)
            .and_then(|mut f| f.write_all(&payload))
            .expect("write temp file");
        let file = File::open(&path).expect("open");
        let map = Mmap::map(&file).expect("map");
        assert_eq!(map.as_bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        #[cfg(unix)]
        assert!(map.is_mapped(), "non-empty file on unix must really map");
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_takes_the_buffered_path() {
        let path = temp_path("empty");
        File::create(&path).expect("create");
        let file = File::open(&path).expect("open");
        let map = Mmap::map(&file).expect("map");
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        assert_eq!(map.as_bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_maps_drop_cleanly() {
        let path = temp_path("drops");
        File::create(&path)
            .and_then(|mut f| f.write_all(b"<doc/>"))
            .expect("write");
        for _ in 0..2_000 {
            let file = File::open(&path).expect("open");
            let map = Mmap::map(&file).expect("map");
            assert_eq!(map.as_bytes(), b"<doc/>");
        }
        std::fs::remove_file(&path).ok();
    }
}
