//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! subset of proptest its property tests actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map` / `prop_recursive`, boxed strategies,
//! * range, tuple, [`Just`], [`prop_oneof!`], `any::<T>()` and
//!   `prop::collection::vec` strategies,
//! * `prop_assert!` / `prop_assert_eq!` (plain panicking asserts here).
//!
//! Failing cases are reported with their case number and **are not shrunk**
//! — rerun with the printed case seed to reproduce. Generation is
//! deterministic per test name, so a red run is always reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Runner configuration (only the `cases` knob is vendored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Test-runner internals used by the generated code.
pub mod test_runner {
    pub use super::ProptestConfig as Config;
    use super::*;

    /// The deterministic RNG driving value generation.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// A generator seeded from the test name (stable across runs).
        pub fn deterministic(test_name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(seed))
        }

        /// Derives the per-case generator so cases are independent.
        pub fn case_rng(&mut self, case: u32) -> TestRng {
            let base: u64 = self.0.gen_range(0..=u64::MAX);
            TestRng(SmallRng::seed_from_u64(
                base ^ (case as u64).rotate_left(17),
            ))
        }

        pub(crate) fn inner(&mut self) -> &mut SmallRng {
            &mut self.0
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Error type carried by `prop_assert!` in real proptest; the vendored
/// asserts panic instead, so this only exists to keep signatures compiling.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// `any::<T>()` — the standard strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy.
pub trait Arbitrary {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element, 2..4)` — vectors of 2 or 3 elements.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            let n = rng.inner().gen_range(self.len.clone());
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..100, v in prop::collection::vec(0u32..3, 2..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    // One test fn, then recurse on the rest.
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut case_rng = rng.case_rng(case);
                let ($($arg,)+) =
                    $crate::Strategy::gen_value(&strategies, &mut case_rng);
                // Property bodies may `return Ok(())` early, mirroring real
                // proptest's `Result<(), TestCaseError>` runner signature.
                let run = || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(e) = run() {
                    panic!("property {} failed at case {case}: {e:?}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Panicking stand-in for proptest's recorded assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Panicking stand-in for proptest's recorded equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Panicking stand-in for proptest's recorded inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::uniform(vec![
            $($crate::Strategy::boxed($strat),)+
        ])
    };
}
