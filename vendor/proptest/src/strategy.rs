//! Value-generation strategies (no shrinking in the vendored build).

use crate::test_runner::TestRng;
use rand::Rng;
use std::sync::Arc;

/// Generates random values of an associated type.
///
/// Unlike real proptest there is no value tree: `gen_value` produces the
/// final value directly and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can be mixed.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.gen_value(rng)))
    }

    /// Builds recursive values: `self` is the leaf strategy and `branch`
    /// wraps an inner strategy into the recursive cases. `depth` bounds the
    /// nesting; the size hints of real proptest are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branched = branch(current).boxed();
            let leaf = leaf.clone();
            // Mix in leaves at every level so shallow values stay likely
            // and expected size stays bounded.
            current = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                if rng.inner().gen_bool(0.25) {
                    leaf.gen_value(rng)
                } else {
                    branched.gen_value(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy of `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.inner().gen_bool(0.5)
    }
}

/// The strategy behind [`crate::prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Uniform choice between the arms.
    pub fn uniform(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        Self::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice between the arms.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total_weight }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.inner().gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.gen_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_oneof_generate_in_domain() {
        let mut rng = TestRng::deterministic("strategy_smoke");
        let s = (0u32..5, crate::prop_oneof![Just(10u32), Just(20u32)]);
        for _ in 0..500 {
            let (a, b) = s.gen_value(&mut rng);
            assert!(a < 5);
            assert!(b == 10 || b == 20);
        }
    }

    #[test]
    fn prop_map_and_vec_compose() {
        let mut rng = TestRng::deterministic("map_vec");
        let s = crate::collection::vec((0u32..3).prop_map(|x| x * 2), 2..4);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            assert!(v.iter().all(|&x| x % 2 == 0 && x < 6));
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(T::Leaf).prop_recursive(3, 24, 3, |inner| {
            crate::collection::vec(inner, 2..4).prop_map(T::Node)
        });
        let mut rng = TestRng::deterministic("recursion");
        let mut saw_node = false;
        for _ in 0..300 {
            let t = s.gen_value(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, T::Node(_));
        }
        assert!(saw_node);
    }
}
