//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal harness exposing the API surface the bench suite uses
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`Throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros). Measurement is a plain
//! calibrate-then-sample loop reporting median ns/iter and derived
//! throughput — adequate for the relative comparisons the bench suite
//! makes, with none of criterion's statistics.
//!
//! `cargo test` / `--test` runs execute every benchmark exactly once so the
//! suite doubles as a smoke test.

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Work-per-iteration annotation used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes of decimal output per iteration (reported like bytes).
    BytesDecimal(u64),
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("series", 100)` → `series/100`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
    sample_count: u32,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            measurement_time: Duration::from_millis(400),
            sample_count: 12,
            filter: None,
        }
    }
}

impl Criterion {
    /// Honours the arguments cargo passes to bench binaries: `--test`
    /// (run once, no timing), `--bench` (ignored), and a positional filter.
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "-n" | "--noplot" => {}
                _ if arg.starts_with('-') => {}
                _ => c.filter = Some(arg),
            }
        }
        c
    }

    /// Total sampling time per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Criterion {
        self.measurement_time = dur;
        self
    }

    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_count = n.max(2) as u32;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.to_string(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.run_one(&name, None, &mut f);
        self
    }

    fn run_one<F>(&self, full_id: &str, throughput: Option<Throughput>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::TestOnce,
                total: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            println!("test {full_id} ... ok");
            return;
        }
        // Calibrate: find an iteration count that fills one sample slot.
        let sample_budget = self.measurement_time / self.sample_count;
        let mut iters_per_sample = 1u64;
        loop {
            let mut b = Bencher {
                mode: Mode::Measure(iters_per_sample),
                total: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            if b.total >= sample_budget || b.total >= Duration::from_millis(50) {
                break;
            }
            if b.total.is_zero() {
                iters_per_sample = iters_per_sample.saturating_mul(100);
            } else {
                let scale = sample_budget.as_nanos() as f64 / b.total.as_nanos().max(1) as f64;
                let next = ((iters_per_sample as f64) * scale * 1.1).ceil() as u64;
                if next <= iters_per_sample {
                    break;
                }
                iters_per_sample = next.min(iters_per_sample.saturating_mul(1000));
            }
        }
        // Sample.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_count as usize);
        for _ in 0..self.sample_count {
            let mut b = Bencher {
                mode: Mode::Measure(iters_per_sample),
                total: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            per_iter_ns.push(b.total.as_nanos() as f64 / b.iters_done.max(1) as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let best = per_iter_ns[0];
        let worst = per_iter_ns[per_iter_ns.len() - 1];
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  {:>14}", format_rate(n, median, "elem/s")),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!("  {:>14}", format_rate(n, median, "B/s"))
            }
        });
        println!(
            "{full_id:<50} time: [{} {} {}]{}",
            format_ns(best),
            format_ns(median),
            format_ns(worst),
            rate.unwrap_or_default()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_iter: u64, ns_per_iter: f64, unit: &str) -> String {
    let rate = per_iter as f64 / (ns_per_iter / 1_000_000_000.0);
    if rate >= 1_000_000_000.0 {
        format!("{:.2} G{unit}", rate / 1_000_000_000.0)
    } else if rate >= 1_000_000.0 {
        format!("{:.2} M{unit}", rate / 1_000_000.0)
    } else if rate >= 1_000.0 {
        format!("{:.2} K{unit}", rate / 1_000.0)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted and ignored (compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored (compatibility).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op beyond parity with criterion).
    pub fn finish(self) {}
}

enum Mode {
    TestOnce,
    Measure(u64),
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
                self.iters_done += 1;
            }
            Mode::Measure(iters) => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.total += start.elapsed();
                self.iters_done += iters;
            }
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_formatting() {
        assert_eq!(BenchmarkId::new("series", 100).to_string(), "series/100");
        assert_eq!(format_ns(12.3), "12.30 ns");
        assert_eq!(format_ns(4_500.0), "4.50 µs");
        assert!(format_rate(1000, 1000.0, "elem/s").contains("Gelem/s"));
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            mode: Mode::Measure(10),
            total: Duration::ZERO,
            iters_done: 0,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 10);
        assert_eq!(b.iters_done, 10);
    }
}
