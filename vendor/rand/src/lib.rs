//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer ranges, [`SeedableRng::seed_from_u64`],
//! and [`rngs::SmallRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets, so statistical quality is comparable. Streams are deterministic
//! per seed but are **not** guaranteed to match the real crate value for
//! value.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 uniform mantissa bits, same resolution as rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types with a standard uniform-ish distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
///
/// Mirroring the real crate's `SampleUniform`, the [`SampleRange`] impls
/// below are blanket-generic over this trait so type inference can flow
/// from surrounding arithmetic into the range literal (e.g.
/// `rng.gen_range(1..100) + x_u32` infers a `u32` range).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                    // span+1 wraps to 0 only for a full 64-bit domain, which
                    // uniform_u64 reads as "unrestricted" — correct either way.
                    let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                } else {
                    assert!(lo < hi, "empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform value in `0..span` (`span = 0` means the full 2^64 range),
/// via widening multiply with rejection (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as specified by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the vendored build has a single generator quality tier.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(1..100);
            assert!((1..100).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: i64 = rng.gen_range(-50i64..300);
            assert!((-50..300).contains(&x));
            let y: u32 = rng.gen_range(2..=3);
            assert!((2..=3).contains(&y));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
